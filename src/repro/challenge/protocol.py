"""Challenge construction and the submission oracle."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import BudgetExhaustedError, ValidationError
from repro.core.rng import ensure_rng
from repro.datasets.hiring import make_hiring_tables
from repro.dataframe.frame import DataFrame
from repro.errors.labels import inject_label_errors
from repro.errors.noise import inject_feature_noise, inject_outliers
from repro.ml.base import clone
from repro.ml.compose import ColumnTransformer, Pipeline
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import accuracy_score
from repro.ml.preprocessing import SimpleImputer, StandardScaler
from repro.text.vectorize import SentenceEmbedder


@dataclass
class Challenge:
    """The attendee-visible bundle plus the hidden evaluation state."""

    train_df: DataFrame          # dirty training data (visible)
    valid_df: DataFrame          # validation data (visible)
    oracle: "ChallengeOracle"    # budgeted submission endpoint (visible)
    n_errors: int                # disclosed error count, not locations


def _default_encoder() -> ColumnTransformer:
    return ColumnTransformer([
        ("text", SentenceEmbedder(dim=32), "letter_text"),
        ("num", Pipeline([("imp", SimpleImputer()), ("sc", StandardScaler())]),
         ["years_experience", "employer_rating"]),
    ])


class ChallengeOracle:
    """Budgeted clean-and-evaluate endpoint.

    ``submit(row_ids)`` cleans the requested rows (cumulatively, from the
    hidden ground truth), retrains the fixed classifier on the cleaned
    data, and returns accuracy on the *hidden* test set. Distinct rows
    cleaned across all submissions may not exceed the budget.
    """

    def __init__(self, dirty_train: DataFrame, clean_train: DataFrame,
                 test_df: DataFrame, *, model=None, encoder=None,
                 budget: int = 50, label: str = "sentiment"):
        self._current = dirty_train
        self._clean = clean_train
        self._test = test_df
        self._label = label
        self.model = model or LogisticRegression(max_iter=100)
        self._encoder_prototype = encoder or _default_encoder()
        self.budget = budget
        self._cleaned: set[int] = set()
        self.history: list[dict] = []
        self.baseline_score = self._evaluate()

    @property
    def cleaned_count(self) -> int:
        return len(self._cleaned)

    @property
    def remaining_budget(self) -> int:
        return self.budget - self.cleaned_count

    def _evaluate(self) -> float:
        encoder = clone(self._encoder_prototype)
        X = encoder.fit_transform(self._current.drop(self._label))
        y = np.array(self._current[self._label].to_list())
        model = clone(self.model)
        model.fit(X, y)
        X_test = encoder.transform(self._test.drop(self._label))
        y_test = np.array(self._test[self._label].to_list())
        return float(accuracy_score(y_test, model.predict(X_test)))

    def submit(self, row_ids, *, participant: str = "anonymous") -> float:
        """Clean rows, re-evaluate on the hidden test set, record history.

        Raises :class:`BudgetExhaustedError` when the submission would
        exceed the budget; the submission is then NOT applied.
        """
        row_ids = [int(r) for r in np.atleast_1d(row_ids)]
        known = set(self._current.row_ids.tolist())
        unknown = [r for r in row_ids if r not in known]
        if unknown:
            raise ValidationError(f"unknown row ids: {unknown[:5]}")
        new = set(row_ids) - self._cleaned
        if self.cleaned_count + len(new) > self.budget:
            raise BudgetExhaustedError(
                f"submission adds {len(new)} rows; only "
                f"{self.remaining_budget} budget left"
            )
        positions = self._clean.positions_of(row_ids)
        for column in self._current.columns:
            clean_values = [self._clean[column].get(int(p)) for p in positions]
            self._current = self._current.set_values(row_ids, column, clean_values)
        self._cleaned |= new
        score = self._evaluate()
        self.history.append({
            "participant": participant,
            "cleaned_total": self.cleaned_count,
            "score": score,
        })
        return score


def make_challenge(*, n: int = 300, budget: int = 50, seed: int = 42,
                   label_error_fraction: float = 0.12,
                   noise_fraction: float = 0.08) -> Challenge:
    """Build a fresh challenge instance.

    Hidden errors: label flips on a fraction of rows plus gaussian noise
    and outliers on the numeric features. The clean copy, test split and
    error locations stay inside the oracle.
    """
    rng = ensure_rng(seed)
    letters, _, _ = make_hiring_tables(n, seed=int(rng.integers(0, 2**31)))
    train_clean, valid_df, test_df = letters.split([0.6, 0.2, 0.2],
                                                   seed=int(rng.integers(0, 2**31)))
    dirty, report = inject_label_errors(
        train_clean, column="sentiment", fraction=label_error_fraction,
        seed=int(rng.integers(0, 2**31)))
    dirty, noise_report = inject_feature_noise(
        dirty, column="employer_rating", fraction=noise_fraction, scale=3.0,
        seed=int(rng.integers(0, 2**31)))
    dirty, outlier_report = inject_outliers(
        dirty, column="years_experience", fraction=noise_fraction / 2,
        seed=int(rng.integers(0, 2**31)))
    report.extend(noise_report).extend(outlier_report)

    oracle = ChallengeOracle(dirty, train_clean, test_df, budget=budget)
    return Challenge(train_df=dirty, valid_df=valid_df, oracle=oracle,
                     n_errors=len(report.row_ids()))
