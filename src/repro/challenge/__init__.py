"""The data-debugging challenge (Section 3.2 of the paper).

Attendees receive a dirty training set with *unknown* errors, a fixed
classifier, a validation set, and a budgeted cleaning oracle that reports
held-out test quality after each submission. A leaderboard ranks
strategies. This subpackage reproduces the full protocol in-process.
"""

from repro.challenge.leaderboard import Leaderboard
from repro.challenge.protocol import ChallengeOracle, make_challenge

__all__ = ["make_challenge", "ChallengeOracle", "Leaderboard"]
