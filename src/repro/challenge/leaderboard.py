"""The live leaderboard of the data-debugging challenge."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Entry:
    """One scored submission: who, hidden-test score, rows cleaned."""

    participant: str
    score: float
    cleaned: int


@dataclass
class Leaderboard:
    """Ranks submissions by score (ties broken by fewer rows cleaned)."""

    baseline: float = 0.0
    entries: list[Entry] = field(default_factory=list)

    def record(self, participant: str, score: float, cleaned: int) -> None:
        self.entries.append(Entry(participant, float(score), int(cleaned)))

    def standings(self) -> list[Entry]:
        """Best entry per participant, ranked."""
        best: dict[str, Entry] = {}
        for entry in self.entries:
            incumbent = best.get(entry.participant)
            if incumbent is None or (entry.score, -entry.cleaned) > \
                    (incumbent.score, -incumbent.cleaned):
                best[entry.participant] = entry
        return sorted(best.values(), key=lambda e: (-e.score, e.cleaned))

    def winner(self) -> Entry | None:
        standings = self.standings()
        return standings[0] if standings else None

    def render(self) -> str:
        lines = [f"{'rank':<5}{'participant':<20}{'score':<10}{'cleaned':<8}",
                 "-" * 43]
        for rank, entry in enumerate(self.standings(), start=1):
            marker = " *" if entry.score > self.baseline else ""
            lines.append(
                f"{rank:<5}{entry.participant:<20}{entry.score:<10.4f}"
                f"{entry.cleaned:<8}{marker}"
            )
        lines.append(f"baseline (no cleaning): {self.baseline:.4f}")
        return "\n".join(lines)
