"""Gopher: data-based explanations for fairness debugging (ref [66]).

Gopher explains *why* a model is unfair by finding compact, interpretable
subsets of the training data — described by first-order predicates like
``group = groupB AND education_years <= 12`` — whose removal most reduces
the bias of the retrained model. Each candidate subset is scored by its
*responsibility*: the fraction of the original bias it accounts for,
traded off against how much data must be removed and how much accuracy is
sacrificed.

This implementation enumerates predicates over the categorical columns
and binned numeric columns of a dataframe (conjunctions up to
``max_depth``), retrains per candidate, and returns ranked
:class:`SubsetExplanation` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ValidationError
from repro.dataframe.frame import DataFrame
from repro.ml.base import clone
from repro.ml.metrics import accuracy_score


@dataclass
class SubsetExplanation:
    """One candidate removal set and its effect."""

    predicates: tuple[str, ...]
    n_removed: int
    bias_before: float
    bias_after: float
    accuracy_before: float
    accuracy_after: float

    @property
    def responsibility(self) -> float:
        """Fraction of the original bias removed (can exceed 1 if removal
        overshoots past fairness into the opposite bias)."""
        if self.bias_before == 0:
            return 0.0
        return (self.bias_before - self.bias_after) / self.bias_before

    def describe(self) -> str:
        clause = " AND ".join(self.predicates)
        return (f"remove [{clause}] ({self.n_removed} rows): bias "
                f"{self.bias_before:.3f} -> {self.bias_after:.3f}, accuracy "
                f"{self.accuracy_before:.3f} -> {self.accuracy_after:.3f}")


def _candidate_predicates(frame: DataFrame, exclude: set[str],
                          n_bins: int) -> list[tuple[str, np.ndarray]]:
    """Atomic predicates: equality on categoricals, bin-range on numerics."""
    atoms = []
    for name in frame.columns:
        if name in exclude:
            continue
        col = frame[name]
        if col.dtype.kind in ("U", "O", "b"):
            for value in col.unique():
                mask = np.asarray(col == value)
                atoms.append((f"{name} = {value!r}", mask))
        else:
            values = col.cast(float).to_numpy()
            finite = values[~np.isnan(values)]
            if len(np.unique(finite)) <= 1:
                continue
            edges = np.quantile(finite, np.linspace(0, 1, n_bins + 1))
            for b in range(n_bins):
                lo, hi = edges[b], edges[b + 1]
                if lo == hi:
                    continue
                mask = (values >= lo) & (values <= hi if b == n_bins - 1
                                         else values < hi)
                atoms.append((f"{lo:.3g} <= {name} < {hi:.3g}", mask))
    return atoms


class GopherExplainer:
    """Search for removal-based fairness explanations.

    Parameters
    ----------
    model:
        Unfitted estimator prototype.
    fairness_metric:
        ``metric(y_true, y_pred, groups) -> float`` (0 = fair).
    max_depth:
        Maximum predicate conjunction depth (1 or 2).
    min_support / max_support:
        Bounds on candidate subset size as fractions of the data.
    n_bins:
        Quantile bins used to discretize numeric columns.
    """

    def __init__(self, model, fairness_metric, *, max_depth: int = 2,
                 min_support: float = 0.01, max_support: float = 0.5,
                 n_bins: int = 3):
        if max_depth not in (1, 2):
            raise ValidationError("max_depth must be 1 or 2")
        self.model = model
        self.fairness_metric = fairness_metric
        self.max_depth = max_depth
        self.min_support = min_support
        self.max_support = max_support
        self.n_bins = n_bins

    def explain(self, frame: DataFrame, *, feature_matrix, label_column: str,
                group_column: str, X_valid, y_valid, groups_valid,
                top_k: int = 5) -> list[SubsetExplanation]:
        """Rank removal subsets by fairness improvement.

        Parameters
        ----------
        frame:
            Training dataframe (predicates are mined from its columns).
        feature_matrix:
            Encoded training features aligned with ``frame`` rows.
        label_column / group_column:
            Names of the target and protected-attribute columns.
        X_valid, y_valid, groups_valid:
            Held-out data the bias and accuracy are measured on.
        """
        X = np.asarray(feature_matrix, dtype=float)
        if len(X) != len(frame):
            raise ValidationError("feature_matrix must align with frame rows")
        y = np.array(frame[label_column].to_list())

        base_model = clone(self.model)
        base_model.fit(X, y)
        base_pred = base_model.predict(X_valid)
        bias_before = float(self.fairness_metric(y_valid, base_pred, groups_valid))
        acc_before = accuracy_score(y_valid, base_pred)

        atoms = _candidate_predicates(
            frame, exclude={label_column}, n_bins=self.n_bins)
        candidates: list[tuple[tuple[str, ...], np.ndarray]] = [
            ((desc,), mask) for desc, mask in atoms
        ]
        if self.max_depth == 2:
            for i in range(len(atoms)):
                for j in range(i + 1, len(atoms)):
                    mask = atoms[i][1] & atoms[j][1]
                    candidates.append(((atoms[i][0], atoms[j][0]), mask))

        n = len(frame)
        explanations = []
        for predicates, mask in candidates:
            support = mask.sum() / n
            if not (self.min_support <= support <= self.max_support):
                continue
            keep = ~mask
            y_keep = y[keep]
            if len(np.unique(y_keep)) < 2:
                continue
            candidate_model = clone(self.model)
            candidate_model.fit(X[keep], y_keep)
            pred = candidate_model.predict(X_valid)
            try:
                bias_after = float(self.fairness_metric(y_valid, pred, groups_valid))
            except ValidationError:
                continue
            explanations.append(SubsetExplanation(
                predicates=predicates,
                n_removed=int(mask.sum()),
                bias_before=bias_before,
                bias_after=bias_after,
                accuracy_before=acc_before,
                accuracy_after=accuracy_score(y_valid, pred),
            ))
        explanations.sort(key=lambda e: (e.bias_after, -e.accuracy_after,
                                         e.n_removed))
        return explanations[:top_k]
