"""Group fairness metrics over binary predictions.

All metrics return absolute differences between the two groups, so 0 is
perfectly fair and larger is worse; the ``positive`` label defaults to the
larger class value.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_consistent_length


def _prepare(y_true, y_pred, groups, positive):
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    groups = np.asarray(groups)
    check_consistent_length(y_true, y_pred, groups)
    names = np.unique(groups)
    if len(names) != 2:
        raise ValidationError(
            f"fairness metrics require exactly two groups, got {len(names)}"
        )
    if positive is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
        positive = labels[-1]
    return y_true, y_pred, groups, names, positive


def group_rates(y_true, y_pred, groups, positive=None) -> dict:
    """Per-group confusion statistics.

    Returns ``{group: {"selection_rate", "tpr", "fpr", "ppv", "n"}}``.
    Rates with empty denominators are reported as ``nan``.
    """
    y_true, y_pred, groups, names, positive = _prepare(
        y_true, y_pred, groups, positive)
    out = {}
    for g in names:
        mask = groups == g
        true_pos = (y_true == positive) & mask
        pred_pos = (y_pred == positive) & mask
        tp = int((true_pos & pred_pos).sum())
        selection = pred_pos.sum() / mask.sum() if mask.sum() else np.nan
        tpr = tp / true_pos.sum() if true_pos.sum() else np.nan
        neg = mask & (y_true != positive)
        fpr = (pred_pos & neg).sum() / neg.sum() if neg.sum() else np.nan
        ppv = tp / pred_pos.sum() if pred_pos.sum() else np.nan
        key = g.item() if isinstance(g, np.generic) else g
        out[key] = {"selection_rate": float(selection), "tpr": float(tpr),
                    "fpr": float(fpr), "ppv": float(ppv), "n": int(mask.sum())}
    return out


def demographic_parity_difference(y_pred, groups, positive=None) -> float:
    """|P(pred=+ | A) - P(pred=+ | B)|."""
    dummy = np.asarray(y_pred)  # metric ignores ground truth
    rates = group_rates(dummy, y_pred, groups, positive)
    (ra, rb) = (v["selection_rate"] for v in rates.values())
    return abs(ra - rb)


def equalized_odds_difference(y_true, y_pred, groups, positive=None) -> float:
    """max(|ΔTPR|, |ΔFPR|) across the two groups — the equalized-odds gap."""
    rates = group_rates(y_true, y_pred, groups, positive)
    (a, b) = rates.values()
    tpr_gap = abs(a["tpr"] - b["tpr"])
    fpr_gap = abs(a["fpr"] - b["fpr"])
    gaps = [g for g in (tpr_gap, fpr_gap) if not np.isnan(g)]
    if not gaps:
        raise ValidationError("equalized odds undefined: a group lacks a class")
    return float(max(gaps))


def predictive_parity_difference(y_true, y_pred, groups, positive=None) -> float:
    """|PPV(A) - PPV(B)| — precision gap between groups."""
    rates = group_rates(y_true, y_pred, groups, positive)
    (a, b) = rates.values()
    if np.isnan(a["ppv"]) or np.isnan(b["ppv"]):
        raise ValidationError(
            "predictive parity undefined: a group has no positive predictions"
        )
    return abs(a["ppv"] - b["ppv"])
