"""Fairness measurement and debugging.

Implements the fairness metrics Figure 1 lists among pipeline quality
metrics (demographic parity, equalized odds, predictive parity) and
Gopher-style data-based fairness debugging (Pradhan et al., ref [66]):
finding compact, interpretable subsets of the training data whose removal
most improves a fairness metric, plus label-bias reweighting (ref [36]).
"""

from repro.fairness.cra import certify, demographic_parity_range, selection_rate_range
from repro.fairness.gopher import GopherExplainer, SubsetExplanation
from repro.fairness.label_bias import reweigh_for_parity
from repro.fairness.metrics import (
    demographic_parity_difference,
    equalized_odds_difference,
    group_rates,
    predictive_parity_difference,
)

__all__ = [
    "demographic_parity_difference",
    "equalized_odds_difference",
    "predictive_parity_difference",
    "group_rates",
    "GopherExplainer",
    "SubsetExplanation",
    "reweigh_for_parity",
    "demographic_parity_range",
    "selection_rate_range",
    "certify",
]
