"""Consistent range approximation for fair predictive modeling (ref [94]).

When training/evaluation data suffers *selection bias* — an unknown
number of rows from some subpopulation never made it into the dataset —
point estimates of fairness metrics are untrustworthy. Zhu et al.'s
consistent range approximation instead certifies an *interval* that
contains the metric's value on the unbiased population, for any
assumption-free completion within a missingness budget.

This module implements the counting-level core of that idea for
selection rates and demographic parity: given per-group observed counts
and an upper bound on how many rows of each group were dropped, compute
the tight range of the parity gap over all possible worlds, and certify
fairness ("gap <= threshold in *every* world") or violation
("gap > threshold in every world") when the whole range falls on one
side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ValidationError


@dataclass(frozen=True)
class RateRange:
    """Possible selection-rate interval for one group."""

    lo: float
    hi: float

    def __post_init__(self):
        if not (0.0 <= self.lo <= self.hi <= 1.0):
            raise ValidationError(f"invalid rate range [{self.lo}, {self.hi}]")


def selection_rate_range(n_positive: int, n_observed: int,
                         max_missing: int) -> RateRange:
    """Range of the true selection rate when up to ``max_missing`` rows of
    this group may be unobserved (each could be positive or negative).

    Lower bound: every missing row is negative; upper: every one positive.
    """
    if n_positive < 0 or n_observed < n_positive:
        raise ValidationError("need 0 <= n_positive <= n_observed")
    if max_missing < 0:
        raise ValidationError("max_missing must be non-negative")
    if n_observed + max_missing == 0:
        raise ValidationError("group has no possible members")
    denominator = n_observed + max_missing
    return RateRange(n_positive / denominator,
                     (n_positive + max_missing) / denominator)


def demographic_parity_range(y_pred, groups, *, positive=None,
                             max_missing: dict | None = None) -> dict:
    """Certified range of the demographic-parity gap under selection bias.

    Parameters
    ----------
    y_pred, groups:
        Observed predictions and group memberships (two groups).
    positive:
        The favourable outcome; the larger label by default.
    max_missing:
        ``{group: bound}`` on unobserved rows per group (0 when omitted).

    Returns
    -------
    dict with the per-group ``ranges``, the gap interval ``(gap_lo,
    gap_hi)``, the observed point estimate, and ``certified_fair(t)`` /
    ``certified_unfair(t)`` obtained via :func:`certify`.
    """
    y_pred = np.asarray(y_pred)
    groups = np.asarray(groups)
    names = np.unique(groups)
    if len(names) != 2:
        raise ValidationError("demographic parity needs exactly two groups")
    if positive is None:
        positive = np.unique(y_pred)[-1]
    max_missing = max_missing or {}

    ranges = {}
    for name in names:
        mask = groups == name
        key = name.item() if isinstance(name, np.generic) else name
        ranges[key] = selection_rate_range(
            int(np.sum(y_pred[mask] == positive)), int(mask.sum()),
            int(max_missing.get(key, 0)))

    (range_a, range_b) = ranges.values()
    gap_hi = max(abs(range_a.hi - range_b.lo), abs(range_b.hi - range_a.lo))
    # The minimum achievable |difference| is 0 when the ranges overlap.
    if range_a.hi < range_b.lo:
        gap_lo = range_b.lo - range_a.hi
    elif range_b.hi < range_a.lo:
        gap_lo = range_a.lo - range_b.hi
    else:
        gap_lo = 0.0

    point_a = np.mean(y_pred[groups == names[0]] == positive)
    point_b = np.mean(y_pred[groups == names[1]] == positive)
    return {
        "ranges": ranges,
        "gap_lo": float(gap_lo),
        "gap_hi": float(gap_hi),
        "observed_gap": float(abs(point_a - point_b)),
    }


def certify(range_result: dict, threshold: float) -> str:
    """Classify the fairness question under the range.

    Returns ``"fair"`` (gap <= threshold in every possible world),
    ``"unfair"`` (gap > threshold in every world), or ``"unknown"``
    (worlds disagree — more data or cleaning needed).
    """
    if threshold < 0:
        raise ValidationError("threshold must be non-negative")
    if range_result["gap_hi"] <= threshold:
        return "fair"
    if range_result["gap_lo"] > threshold:
        return "unfair"
    return "unknown"
