"""Label-bias correction via example reweighting (Jiang & Nachum, [36]).

Treats observed labels as a biased corruption of true labels and learns
per-example weights that cancel the bias: iteratively train a weighted
classifier, measure the demographic-parity violation per group, and
multiplicatively boost the weight of positive examples in the
under-selected group (equivalently a coordinate-ascent on the Lagrangian
of the fairness-constrained objective).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_X_y
from repro.ml.base import clone


def reweigh_for_parity(model, X, y, groups, *, positive=None,
                       n_rounds: int = 10, step: float = 1.0) -> dict:
    """Learn fairness-correcting sample weights.

    Parameters
    ----------
    model:
        Unfitted estimator prototype supporting ``fit(X, y,
        sample_weight=...)``.
    groups:
        Protected-attribute vector (two groups).
    n_rounds:
        Reweighting iterations.
    step:
        Multiplier step size on the parity violation.

    Returns
    -------
    dict with ``weights`` (final per-example weights), ``model`` (final
    fitted classifier), and ``violations`` (parity gap per round).
    """
    X, y = check_X_y(X, y)
    groups = np.asarray(groups)
    names = np.unique(groups)
    if len(names) != 2:
        raise ValidationError("reweigh_for_parity requires exactly two groups")
    if positive is None:
        positive = np.unique(y)[-1]

    weights = np.ones(len(y))
    multiplier = 0.0  # Lagrange multiplier on the parity constraint
    violations = []
    fitted = None
    group_b = groups == names[1]
    for _ in range(n_rounds):
        fitted = clone(model)
        fitted.fit(X, y, sample_weight=weights)
        pred = fitted.predict(X)
        rate_a = float(np.mean(pred[~group_b] == positive))
        rate_b = float(np.mean(pred[group_b] == positive))
        violation = rate_a - rate_b
        violations.append(abs(violation))
        multiplier += step * violation
        # Up-weight positives of the under-selected group (and symmetric).
        positives = y == positive
        weights = np.ones(len(y))
        weights[group_b & positives] *= np.exp(multiplier)
        weights[~group_b & positives] *= np.exp(-multiplier)
        weights *= len(y) / weights.sum()
    return {"weights": weights, "model": fitted, "violations": violations}
