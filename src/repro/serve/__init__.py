"""Multi-tenant debugging-as-a-service job tier with anytime results.

The paper frames data-error debugging as an interactive, iterative
session; this package turns the library's blocking importance estimators
into a shared service shaped for that workload. One
:class:`Server` holds one warm :class:`~repro.runtime.Runtime` (worker
pool + fingerprint cache) amortized across every tenant's session, and
composes four pieces:

- :class:`JobQueue` — bounded admission with per-tenant quotas and
  weighted-fair (stride) dispatch; over-limit submissions raise
  :class:`AdmissionError` with a ``retry_after`` hint.
- :class:`LeaseManager` — checkpoint-store-persisted job ownership with
  heartbeat, expiry, and epoch fencing, so any process can adopt a
  crashed worker's job and resume it hex-identically from its
  checkpoint.
- :class:`AnytimeEstimate` — the streaming-results mailbox importance
  jobs publish into: partial estimates with CLT confidence intervals
  that tighten as permutations land, plus the ``stop_when(width)``
  accuracy-budget early stop.
- :class:`Server` — the facade: submit / status / stream / result /
  cancel / resume, per-tenant metrics isolation, per-job runlogs, and
  graceful drain that flushes checkpoints before pool teardown.

Quick start::

    from repro.serve import Server

    with Server("serve-data", workers=4) as server:
        job = server.submit("shapley_mc", make_utility, tenant="alice",
                            params={"n_permutations": 200, "seed": 0})
        server.stop_when(job, width=0.05)   # accuracy budget
        for partial in server.stream(job):
            print(partial.completed, partial.width)
        values = server.result(job)

``python -m repro.serve --config serve.json`` boots the same thing from
a config file (:class:`ServeConfig`).
"""

from repro.serve.anytime import AnytimeEstimate, PartialEstimate
from repro.serve.config import ServeConfig
from repro.serve.jobs import Job, JobSpec, JobState, METHODS
from repro.serve.lease import Lease, LeaseLost, LeaseManager
from repro.serve.queue import AdmissionError, JobQueue
from repro.serve.server import Server
from repro.serve.worker import Worker, run_method

__all__ = [
    "METHODS",
    "AdmissionError",
    "AnytimeEstimate",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobState",
    "Lease",
    "LeaseLost",
    "LeaseManager",
    "PartialEstimate",
    "ServeConfig",
    "Server",
    "Worker",
    "run_method",
]
