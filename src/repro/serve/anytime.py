"""Anytime (streaming) results for importance jobs.

A Monte-Carlo importance job improves monotonically: every folded
permutation tightens the estimate. Serving therefore should not hold the
result hostage until the last sample lands — :class:`AnytimeEstimate` is
the bridge between an estimator loop and a consumer that wants the
*current* answer with honest error bars.

The estimator side is the ``partial=`` hook every importance method
accepts (:func:`repro.importance.base.resolve_partial`): after each
folded work unit the loop calls :meth:`AnytimeEstimate.publish` with the
running values and their CLT standard errors. The consumer side reads
:meth:`latest`, iterates :meth:`stream`, or arms :meth:`stop_when` — the
early-stop predicate that turns a fixed-budget job into an
accuracy-budget one ("stop when every player's 95% confidence interval
is narrower than 0.05").

Both sides may live on different threads; every method is thread-safe.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.core.exceptions import ValidationError

__all__ = ["AnytimeEstimate", "PartialEstimate"]


@dataclass(frozen=True)
class PartialEstimate:
    """One published snapshot of a running importance estimate.

    ``values[i]`` is the current estimate for player ``i`` and
    ``stderr[i]`` its CLT standard error (``inf`` while a player has too
    few samples to estimate spread, ``0`` for exact methods like LOO).
    ``halfwidth`` is the two-sided confidence-interval half-width at the
    estimate's ``confidence`` level: ``values ± halfwidth`` covers the
    true value with that probability, per player, under the CLT
    approximation. ``exact`` marks snapshots from a closed-form dispatch
    (e.g. KNN-Shapley with ``exact=True``): the values are the method's
    exact answer, not a converging sample mean.
    """

    method: str
    completed: int
    total: int
    values: np.ndarray
    stderr: np.ndarray
    halfwidth: np.ndarray
    confidence: float
    seq: int
    done: bool = False
    error: str | None = None
    exact: bool = False

    @property
    def width(self) -> float:
        """The widest player's CI half-width — the figure
        :meth:`AnytimeEstimate.stop_when` compares against."""
        return float(np.max(self.halfwidth)) if len(self.halfwidth) \
            else 0.0

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0


class AnytimeEstimate:
    """Thread-safe mailbox between one estimator loop and its consumers.

    Parameters
    ----------
    every:
        Publish cadence hint in completed work units; the estimator
        loops also use it to bound their batch sizes so partial results
        stay responsive on pooled backends.
    confidence:
        Two-sided confidence level of the published intervals
        (``halfwidth = z * stderr`` with the matching normal quantile).

    Pass an instance as ``partial=`` to any importance estimator; read
    it from anywhere. An armed :meth:`stop_when` (or an explicit
    :meth:`stop`) makes the *next* publish return truthy, which the
    estimator loops treat as "snapshot your checkpoint and return the
    current estimate".
    """

    def __init__(self, *, every: int = 1, confidence: float = 0.95):
        if not 0.0 < confidence < 1.0:
            raise ValidationError("confidence must be in (0, 1)")
        if every < 1:
            raise ValidationError("every must be >= 1")
        self.every = int(every)
        self.confidence = float(confidence)
        self._z = float(norm.ppf(0.5 + confidence / 2.0))
        self._cond = threading.Condition()
        self._seq = 0
        self._latest: PartialEstimate | None = None
        self._stop_width: float | None = None
        self._stop = False
        self._done = False

    # -- estimator side ----------------------------------------------------
    def publish(self, *, method: str, completed: int, total: int,
                values, stderr, exact: bool = False) -> bool:
        """Record one snapshot; ``True`` asks the loop to stop early.

        Called by the estimator after each folded work unit. The arrays
        are copied, so the loop may keep mutating its accumulators.
        ``exact=True`` marks a closed-form result (published once, with
        zero stderr) rather than a converging sample mean.
        """
        values = np.array(values, dtype=float, copy=True)
        stderr = np.array(stderr, dtype=float, copy=True)
        with np.errstate(invalid="ignore"):
            halfwidth = self._z * stderr
        with self._cond:
            self._seq += 1
            snapshot = PartialEstimate(
                method=method, completed=int(completed), total=int(total),
                values=values, stderr=stderr, halfwidth=halfwidth,
                confidence=self.confidence, seq=self._seq, exact=exact)
            self._latest = snapshot
            self._cond.notify_all()
            if self._stop:
                return True
            return (self._stop_width is not None
                    and snapshot.width <= self._stop_width)

    def mark_done(self, values=None) -> None:
        """Estimator finished: republish the latest snapshot with
        ``done=True`` (optionally replacing the values with the final
        ones) and wake every streaming consumer."""
        with self._cond:
            self._done = True
            latest = self._latest
            self._seq += 1
            if latest is None:
                n = 0 if values is None else len(values)
                final = np.zeros(n) if values is None \
                    else np.asarray(values, dtype=float)
                latest = PartialEstimate(
                    method="", completed=0, total=0, values=final,
                    stderr=np.zeros(n), halfwidth=np.zeros(n),
                    confidence=self.confidence, seq=self._seq, done=True)
            else:
                latest = PartialEstimate(
                    method=latest.method, completed=latest.completed,
                    total=latest.total,
                    values=np.asarray(values, dtype=float)
                    if values is not None else latest.values,
                    stderr=latest.stderr, halfwidth=latest.halfwidth,
                    confidence=self.confidence, seq=self._seq, done=True,
                    exact=latest.exact)
            self._latest = latest
            self._cond.notify_all()

    def mark_failed(self, error: BaseException | str) -> None:
        """Estimator died: wake consumers with the error attached."""
        with self._cond:
            self._done = True
            self._seq += 1
            latest = self._latest
            n = len(latest.values) if latest is not None else 0
            self._latest = PartialEstimate(
                method=latest.method if latest else "",
                completed=latest.completed if latest else 0,
                total=latest.total if latest else 0,
                values=latest.values if latest else np.zeros(n),
                stderr=latest.stderr if latest else np.zeros(n),
                halfwidth=latest.halfwidth if latest else np.zeros(n),
                confidence=self.confidence, seq=self._seq, done=True,
                error=str(error),
                exact=latest.exact if latest is not None else False)
            self._cond.notify_all()

    # -- consumer side -----------------------------------------------------
    def latest(self) -> PartialEstimate | None:
        """The newest snapshot, or ``None`` before the first publish."""
        with self._cond:
            return self._latest

    @property
    def done(self) -> bool:
        with self._cond:
            return self._done

    def stop_when(self, width: float) -> None:
        """Arm the accuracy-budget early stop: the estimator stops at
        the first publish whose widest CI half-width is ``<= width``.
        (``inf`` stderr — too few samples — can never satisfy it.)"""
        if width < 0:
            raise ValidationError("width must be >= 0")
        with self._cond:
            self._stop_width = float(width)

    def stop(self) -> None:
        """Ask the estimator to stop at its next publish, whatever the
        current interval width."""
        with self._cond:
            self._stop = True

    def wait(self, *, seq: int = 0, timeout: float | None = None
             ) -> PartialEstimate | None:
        """Block until a snapshot newer than ``seq`` exists (or the
        estimate is done); ``None`` on timeout."""
        with self._cond:
            self._cond.wait_for(
                lambda: self._seq > seq or self._done, timeout=timeout)
            return self._latest if self._seq > seq or self._done else None

    def stream(self, *, timeout: float | None = None):
        """Yield each new snapshot as it is published, ending with the
        ``done=True`` one. ``timeout`` bounds each wait, not the whole
        stream; a wait that times out ends the stream."""
        seen = 0
        while True:
            snapshot = self.wait(seq=seen, timeout=timeout)
            if snapshot is None:
                return
            if snapshot.seq > seen:
                seen = snapshot.seq
                yield snapshot
            if snapshot.done:
                return
