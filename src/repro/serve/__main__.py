"""``python -m repro.serve`` / ``repro-serve`` — run a local server.

Boots a :class:`~repro.serve.Server` from a JSON config file
(:class:`~repro.serve.ServeConfig`) and keeps it in the foreground until
SIGINT/SIGTERM, then drains gracefully (checkpoints flush before the
pool tears down). ``--demo`` additionally submits a small two-tenant
importance workload and prints the anytime estimates as their confidence
intervals tighten — a smoke test and a living example in one.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.serve.config import ServeConfig


def _demo_jobs(server, out) -> None:
    """Submit a small two-tenant workload and print anytime progress."""
    import numpy as np

    from repro.datasets import make_blobs
    from repro.importance import Utility
    from repro.ml import KNeighborsClassifier

    X, y = make_blobs(n_samples=60, n_features=3, seed=0)
    X_train, y_train = X[:40], y[:40]
    X_valid, y_valid = X[40:], y[40:]

    def utility():
        return Utility(KNeighborsClassifier(n_neighbors=3),
                       X_train, y_train, X_valid, y_valid)

    jobs = [
        server.submit("shapley_mc", utility, tenant="alice",
                      params={"n_permutations": 30, "seed": 1}, every=5),
        server.submit("banzhaf", utility, tenant="bob",
                      params={"n_samples": 40, "seed": 2}, every=10),
    ]
    for job_id in jobs:
        for partial in server.stream(job_id, timeout=60.0):
            print(f"[{job_id}] {partial.method} "
                  f"{partial.completed}/{partial.total} "
                  f"max-CI-halfwidth={partial.width:.4f}", file=out)
        values = server.result(job_id, timeout=60.0)
        print(f"[{job_id}] done: mean score {np.mean(values):+.4f}",
              file=out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Run a local repro.serve debugging service.")
    parser.add_argument("--config", help="JSON config file "
                        "(see repro.serve.ServeConfig); defaults apply "
                        "when omitted")
    parser.add_argument("--demo", action="store_true",
                        help="submit a demo workload, print anytime "
                        "estimates, then drain and exit")
    args = parser.parse_args(argv)

    config = ServeConfig.from_file(args.config) if args.config \
        else ServeConfig()
    server = config.build_server()
    print(f"repro.serve listening (in-process): {server!r}",
          file=sys.stderr)

    if args.demo:
        try:
            _demo_jobs(server, sys.stdout)
        finally:
            server.drain(timeout=60.0)
        return 0

    stop = threading.Event()

    def _signalled(signum, frame):
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _signalled)
        except ValueError:
            pass  # not the main thread (embedded use); rely on .drain()
    try:
        while not stop.is_set():
            stop.wait(0.5)
    finally:
        print("draining...", file=sys.stderr)
        server.drain(timeout=60.0, stop_running=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
