"""The :class:`Server` facade — a debugging-as-a-service job tier.

One ``Server`` turns this library's blocking importance estimators into
a multi-tenant service: tenants submit jobs, worker threads run them on
one shared :class:`~repro.runtime.Runtime` (one warm pool, one
fingerprint cache amortized across every session), and consumers read
anytime estimates, stream tightening confidence intervals, or block for
the final scores. The composition rules:

- **Admission and fairness** live in :class:`~repro.serve.JobQueue`
  (bounded queue, per-tenant quotas, stride-scheduled dispatch).
- **Crash safety** lives in the per-job checkpoint store plus the
  :class:`~repro.serve.LeaseManager`: every job always runs with
  ``checkpoint=`` *and* ``resume_from=`` pointed at its own store, so a
  retried or adopted job replays its predecessor's snapshot and
  continues hex-identically — adoption is just resubmitting the same
  ``job_id`` from any process once the dead owner's lease expires.
- **Observability isolation**: each job writes its own RunLog
  (``data_dir/runlogs/<job_id>.jsonl``), each tenant accumulates into
  its own :class:`~repro.observe.MetricsRegistry`, and the server-level
  observer carries only the ``serve.*`` counters and ``job.*`` lifecycle
  events — one tenant's instrumentation never leaks into another's.
- **Graceful drain**: :meth:`drain` stops admission, lets running jobs
  finish (or stops them at the next publish, which snapshots their
  checkpoints), flushes every armed checkpointer via
  :func:`repro.runtime.flush_all`, and only then tears the pool down.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.core.exceptions import ValidationError
from repro.observe.metrics import MetricsRegistry
from repro.observe.observer import Observer, resolve_observer
from repro.observe.runlog import RunLog
from repro.runtime.cache import FingerprintCache
from repro.runtime.checkpoint import flush_all
from repro.runtime.progress import JobCancelled
from repro.runtime.runtime import Runtime
from repro.serve.anytime import AnytimeEstimate
from repro.serve.jobs import Job, JobSpec, JobState
from repro.serve.lease import LeaseLost, LeaseManager, default_owner
from repro.serve.queue import AdmissionError, JobQueue
from repro.serve.worker import Worker, _JobReporter, run_method

__all__ = ["Server"]


class _Tenant:
    """Per-tenant server state: config + isolated metrics registry."""

    __slots__ = ("name", "weight", "metrics")

    def __init__(self, name: str, *, weight: float = 1.0):
        self.name = name
        self.weight = weight
        self.metrics = MetricsRegistry()


class Server:
    """Multi-tenant job tier over one shared Runtime.

    Parameters
    ----------
    data_dir:
        Durable state root: ``checkpoints/<job_id>/`` (estimator
        snapshots), ``leases/<job_id>/`` (ownership records),
        ``runlogs/<job_id>.jsonl`` (per-job provenance). Two server
        processes pointed at the same ``data_dir`` form a (crude)
        cluster: leases arbitrate job ownership between them.
    runtime:
        Shared :class:`~repro.runtime.Runtime` all jobs evaluate
        through; the server builds (and owns) a serial-backend runtime
        with a fresh :class:`~repro.runtime.FingerprintCache` when
        omitted. With the default serial backend, parallelism comes
        from ``workers`` (one estimator loop per worker thread).
    workers:
        Dispatch threads; each runs one job at a time.
    queue_capacity / retry_after:
        Admission bound and base backoff hint (see
        :class:`~repro.serve.JobQueue`).
    tenants:
        Optional mapping ``name -> dict(weight=, max_pending=,
        max_active=)`` registered up front; unknown tenants are
        auto-registered at weight 1 on first submit.
    lease_ttl:
        Seconds before an un-heartbeated lease becomes adoptable.
    default_every / confidence:
        Defaults for each job's :class:`~repro.serve.AnytimeEstimate`
        (publish cadence, CI level).
    observer:
        Server-level observer for ``serve.*`` counters and ``job.*``
        lifecycle events; a private :class:`~repro.observe.Observer` is
        created when omitted.
    owner:
        Lease owner id (for tests/clusters); auto-generated otherwise.
    """

    def __init__(self, data_dir, *, runtime: Runtime | None = None,
                 workers: int = 2, queue_capacity: int = 64,
                 retry_after: float = 1.0, tenants: dict | None = None,
                 lease_ttl: float = 30.0, default_every: int = 1,
                 confidence: float = 0.95, observer=None,
                 owner: str | None = None):
        if workers < 1:
            raise ValidationError("workers must be >= 1")
        self.data_dir = Path(data_dir)
        for sub in ("checkpoints", "leases", "runlogs"):
            (self.data_dir / sub).mkdir(parents=True, exist_ok=True)
        self._owns_runtime = runtime is None
        self.runtime = runtime if runtime is not None else Runtime(
            backend="serial", cache=FingerprintCache())
        self.observer = resolve_observer(observer) if observer is not None \
            else Observer(run_id=f"serve-{default_owner()}")
        self.owner = owner or default_owner()
        self.default_every = default_every
        self.confidence = confidence
        self._queue = JobQueue(queue_capacity, retry_after=retry_after,
                               observer=self.observer)
        self._leases = LeaseManager(self.data_dir / "leases",
                                    owner=self.owner, ttl=lease_ttl,
                                    observer=self.observer)
        self._tenants: dict[str, _Tenant] = {}
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        for name, cfg in (tenants or {}).items():
            self.register_tenant(name, **cfg)
        self._seq = 0
        self._draining = False
        self._stop_event = threading.Event()
        self._workers = [Worker(self, i) for i in range(workers)]
        for worker in self._workers:
            worker.start()

    # -- tenants -----------------------------------------------------------
    def register_tenant(self, name: str, *, weight: float = 1.0,
                        max_pending: int | None = None,
                        max_active: int | None = None) -> None:
        """Register a tenant's fair-share weight and quotas."""
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                self._tenants[name] = _Tenant(name, weight=weight)
            else:
                tenant.weight = weight
        self._queue.configure_tenant(name, weight=weight,
                                     max_pending=max_pending,
                                     max_active=max_active)

    def _tenant(self, name: str) -> _Tenant:
        with self._lock:
            if name not in self._tenants:
                self._tenants[name] = _Tenant(name)
                self._queue.configure_tenant(name)
            return self._tenants[name]

    def tenant_metrics(self, name: str) -> dict:
        """Snapshot of one tenant's isolated metrics registry."""
        return self._tenant(name).metrics.snapshot()

    # -- submission --------------------------------------------------------
    def submit(self, method: str, utility, *, tenant: str = "default",
               params: dict | None = None, priority: int = 0,
               job_id: str | None = None, every: int | None = None,
               confidence: float | None = None,
               stop_width: float | None = None) -> str:
        """Submit one importance job; returns its ``job_id``.

        Raises :class:`~repro.serve.AdmissionError` (with
        ``retry_after``) when the queue or the tenant's quota is full.
        Resubmitting a ``job_id`` whose previous incarnation is terminal
        re-enqueues it — with the same id, method, params, seed and data
        it resumes from its checkpoint, which is also the adoption path
        after a crash. Sampling methods must carry an integer ``seed``
        in ``params`` (every job is checkpointed for lease adoption).
        """
        params = dict(params or {})
        if method != "loo" and "seed" not in params:
            raise ValidationError(
                f"{method} jobs need an integer params['seed']: the "
                "serving tier checkpoints every job for crash adoption, "
                "which requires a regenerable sample stream")
        self._tenant(tenant)
        with self._lock:
            self._seq += 1
            seq = self._seq
            if job_id is None:
                job_id = f"job-{seq:06d}"
            existing = self._jobs.get(job_id)
            if existing is not None and not existing.finished:
                raise ValidationError(
                    f"job {job_id!r} is already {existing.state}; wait "
                    "for it or pick a new id")
        spec = JobSpec(job_id=job_id, tenant=tenant, method=method,
                       utility=utility, params=params, priority=priority)
        anytime = AnytimeEstimate(
            every=every if every is not None else self.default_every,
            confidence=confidence if confidence is not None
            else self.confidence)
        if stop_width is not None:
            anytime.stop_when(stop_width)
        job = Job(spec, anytime=anytime, seq=seq)
        if existing is not None:
            job.attempts = existing.attempts
        try:
            self._queue.push(job)
        except AdmissionError:
            self._queue.reject_observed()
            if self.observer.enabled:
                self.observer.event("job.rejected", job_id=job_id,
                                    tenant=tenant, method=method)
            raise
        with self._lock:
            self._jobs[job_id] = job
        if self.observer.enabled:
            self.observer.count("serve.jobs.submitted")
            self.observer.event("job.submit", job_id=job_id, tenant=tenant,
                                method=method, priority=priority,
                                params=params)
        return job_id

    def resume(self, job_id: str) -> str:
        """Re-enqueue a terminal (failed/cancelled/lease-lost) job under
        the same spec; it resumes from its checkpoint."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ValidationError(f"unknown job {job_id!r}")
        if not job.finished:
            raise ValidationError(f"job {job_id!r} is still {job.state}")
        spec = job.spec
        return self.submit(spec.method, spec.utility, tenant=spec.tenant,
                           params=spec.params, priority=spec.priority,
                           job_id=job_id)

    # -- job lookups -------------------------------------------------------
    def _job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ValidationError(f"unknown job {job_id!r}")
        return job

    def status(self, job_id: str) -> dict:
        """Lifecycle + progress snapshot for one job."""
        return self._job(job_id).status()

    def estimate(self, job_id: str) -> AnytimeEstimate:
        """The job's anytime-estimate handle (latest / stream / stop)."""
        return self._job(job_id).anytime

    def stream(self, job_id: str, *, timeout: float | None = None):
        """Yield partial estimates as they are published (see
        :meth:`AnytimeEstimate.stream <repro.serve.AnytimeEstimate.stream>`)."""
        return self._job(job_id).anytime.stream(timeout=timeout)

    def stop_when(self, job_id: str, width: float) -> None:
        """Arm the accuracy-budget early stop on a job: it stops at the
        first publish whose widest CI half-width is ``<= width``."""
        self._job(job_id).anytime.stop_when(width)

    def result(self, job_id: str, *, timeout: float | None = None):
        """Block for the job's final (or early-stopped) scores.

        Raises on failure or cancellation; ``TimeoutError`` when the
        job is still running after ``timeout``.
        """
        job = self._job(job_id)
        if not job.wait(timeout):
            raise TimeoutError(f"job {job_id!r} still {job.state} after "
                               f"{timeout}s")
        if job.state == JobState.DONE:
            return job.result
        raise ValidationError(
            f"job {job_id!r} finished as {job.state}"
            + (f": {job.error}" if job.error else ""))

    def cancel(self, job_id: str) -> None:
        """Cooperatively cancel: a pending job settles immediately, a
        running one aborts at its next partial publish."""
        job = self._job(job_id)
        if job.finished:
            return
        job.request_cancel()
        if self._queue.remove(job):
            self._settle(job, JobState.CANCELLED, error="cancelled while "
                         "pending", dequeue=False)

    # -- execution (called from Worker threads) ----------------------------
    def _job_observer(self, job: Job) -> Observer:
        path = self.data_dir / "runlogs" / f"{job.spec.job_id}.jsonl"
        return Observer(run_id=job.spec.job_id,
                        runlog=RunLog(path, run_id=job.spec.job_id),
                        metrics=self._tenant(job.spec.tenant).metrics)

    def _execute(self, job: Job, *, worker: str) -> None:
        job_id = job.spec.job_id
        if job.cancel_requested:
            self._settle(job, JobState.CANCELLED,
                         error="cancelled while pending")
            return
        lease = self._leases.acquire(job_id)
        if lease is None:
            # Held by another live owner: park until its lease can have
            # expired, then try again. Not a terminal state. The wait is
            # the lease manager's monotonic observation window, never
            # arithmetic on the record's wall-clock fields.
            held = self._leases.peek(job_id) or {}
            self._queue.task_done(job.spec.tenant)
            self._queue.park(job, delay=self._leases.retry_after(job_id)
                             + 0.01)
            if self.observer.enabled:
                self.observer.event("job.lease_wait", job_id=job_id,
                                    holder=held.get("owner"))
            return
        job.worker = worker
        job.attempts += 1
        job.transition(JobState.RUNNING)
        job_obs = self._job_observer(job)
        started = time.perf_counter()
        if self.observer.enabled:
            self.observer.count("serve.jobs.started")
        for obs in (self.observer, job_obs):
            if obs.enabled:
                obs.event("job.start", job_id=job_id,
                          tenant=job.spec.tenant, method=job.spec.method,
                          attempt=job.attempts, worker=worker,
                          adopted=lease.adopted, epoch=lease.epoch)
        reporter = _JobReporter(job, lease, self._leases,
                                observer=self.observer)
        try:
            utility = job.spec.build_utility()
            if utility.runtime is None:
                utility.runtime = self.runtime  # shared-executor handoff
            store = self.data_dir / "checkpoints" / job_id
            values = run_method(
                job.spec.method, utility, job.spec.params,
                observer=job_obs, checkpoint=store, resume_from=store,
                partial=reporter)
        except JobCancelled as exc:
            self._leases.release(lease, state="cancelled")
            job.anytime.mark_failed(exc)
            self._settle(job, JobState.CANCELLED, error=str(exc),
                         job_obs=job_obs, elapsed=started)
            return
        except LeaseLost as exc:
            # An adopter owns the job now; our copy goes terminal
            # without touching the (no longer ours) lease.
            job.anytime.mark_failed(exc)
            self._settle(job, JobState.LEASE_LOST, error=str(exc),
                         job_obs=job_obs, elapsed=started)
            return
        except Exception as exc:
            self._leases.release(lease, state="failed")
            job.anytime.mark_failed(exc)
            self._settle(job, JobState.FAILED,
                         error=f"{type(exc).__name__}: {exc}",
                         job_obs=job_obs, elapsed=started)
            return
        self._leases.release(lease, state="done")
        job.anytime.mark_done(values)
        self._settle(job, JobState.DONE, result=values, job_obs=job_obs,
                     elapsed=started)

    def _settle(self, job: Job, state: str, *, error: str | None = None,
                result=None, job_obs=None, elapsed=None,
                dequeue: bool = True) -> None:
        seconds = (time.perf_counter() - elapsed) if elapsed is not None \
            else None
        counter = {JobState.DONE: "serve.jobs.completed",
                   JobState.FAILED: "serve.jobs.failed",
                   JobState.CANCELLED: "serve.jobs.cancelled",
                   JobState.LEASE_LOST: "serve.jobs.lease_lost"}[state]
        if self.observer.enabled:
            self.observer.count(counter)
            if seconds is not None:
                self.observer.observe_value("serve.job_seconds", seconds)
        event = {JobState.DONE: "job.done", JobState.FAILED: "job.failed",
                 JobState.CANCELLED: "job.cancelled",
                 JobState.LEASE_LOST: "job.lease_lost"}[state]
        for obs in (self.observer, job_obs):
            if obs is not None and obs.enabled:
                obs.event(event, job_id=job.spec.job_id,
                          tenant=job.spec.tenant, error=error,
                          seconds=seconds)
        tenant = self._tenant(job.spec.tenant)
        tenant.metrics.inc(f"jobs.{state}")
        if seconds is not None:
            tenant.metrics.observe("jobs.seconds", seconds)
        # The terminal transition comes LAST: it releases result()
        # waiters, who may immediately read the metrics written above.
        job.transition(state, error=error, result=result)
        if dequeue:
            self._queue.task_done(job.spec.tenant)

    def _settle_unexpected(self, job: Job, exc: BaseException) -> None:
        job.anytime.mark_failed(exc)
        self._settle(job, JobState.FAILED,
                     error=f"{type(exc).__name__}: {exc}")

    # -- lifecycle ---------------------------------------------------------
    def drain(self, *, timeout: float | None = None,
              stop_running: bool = False) -> bool:
        """Graceful shutdown: admission off → jobs settle → checkpoints
        flush → workers exit → pool teardown (strictly in that order).

        ``stop_running`` asks in-flight jobs to stop at their next
        publish (they snapshot their checkpoints first, so
        :meth:`resume` / adoption completes them later); otherwise they
        run to completion. Returns ``True`` when everything settled
        within ``timeout``.
        """
        self._draining = True
        self._queue.close()
        if stop_running:
            with self._lock:
                jobs = list(self._jobs.values())
            for job in jobs:
                if not job.finished:
                    job.anytime.stop()
        settled = self._queue.wait_idle(timeout)
        # Flush every still-armed checkpointer *before* any teardown:
        # a drain must never lose progress, even when jobs overran the
        # timeout.
        flush_all()
        self._stop_event.set()
        for worker in self._workers:
            worker.join(timeout=5.0)
        if self._owns_runtime:
            self.runtime.close()
        if self.observer.enabled:
            self.observer.event("serve.drained", settled=settled)
        return settled

    def close(self) -> None:
        """Fast shutdown: stop running jobs at their next publish (their
        checkpoints flush first) and tear down."""
        self.drain(timeout=30.0, stop_running=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- introspection -----------------------------------------------------
    @property
    def dispatch_log(self) -> list[str]:
        """Tenant name per dispatch, in order — the fair-share audit
        trail the serve-smoke CI job asserts on."""
        return list(self._queue.dispatch_log)

    def jobs(self) -> list[dict]:
        with self._lock:
            jobs = list(self._jobs.values())
        return [job.status() for job in jobs]

    def stats(self) -> dict:
        """Queue snapshot + runtime stats + server metrics."""
        return {
            "owner": self.owner,
            "queue": self._queue.snapshot(),
            "runtime": self.runtime.stats(),
            "metrics": self.observer.metrics.snapshot()
            if self.observer.enabled else {},
            "jobs": {job["job_id"]: job["state"] for job in self.jobs()},
        }

    def __repr__(self) -> str:
        queue = self._queue.snapshot()
        return (f"Server(owner={self.owner!r}, "
                f"workers={len(self._workers)}, "
                f"pending={queue['pending']}, "
                f"backend={self.runtime.backend!r})")
