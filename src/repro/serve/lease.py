"""Checkpoint-backed job leases: crash-safe ownership with adoption.

A job must run on exactly one worker at a time, yet any worker must be
able to pick it up after its owner dies — without a coordinator. The
lease is the standard answer: a durable record saying "``owner`` holds
``job_id``", renewed by heartbeat, adoptable once it stops being
renewed for a full ``ttl``. It is persisted through the same crash-safe
:class:`~repro.runtime.CheckpointStore` machinery the job checkpoints
use (atomic write + content hash + fall-back-past-corrupt), one store
per job, so a SIGKILLed worker leaves behind exactly two artifacts — a
stale lease and a valid checkpoint — and adoption is: wait out the
lease, re-acquire it at a higher epoch, resume the checkpoint.

Epochs fence stale owners: every acquisition increments ``epoch``, and
every heartbeat verifies the stored record still carries the caller's
``(owner, epoch)`` — a worker that lost its lease to an adopter gets
:class:`LeaseLost` at its next heartbeat instead of silently double
-running the job. (The resumed job is hex-identical either way — the
fence exists to stop wasted work and double accounting, not to protect
correctness of the scores.)

Liveness arithmetic is **monotonic-clock only**. Hosts do not share a
clock, and even one host's wall clock steps under NTP — a forward jump
must not expire a live lease out from under its owner, and a backward
jump must not let a renewal be skipped forever. So:

- the *owner* tracks its renewal deadline on its own
  :func:`time.monotonic` clock (:attr:`Lease.deadline_mono`);
- an *adopter* never trusts the record's wall-clock ``expires_at``.
  It treats a foreign running lease as dead only after observing the
  **same record generation** (``owner``/``epoch``/``renewals``) go
  unrenewed for the record's full ``ttl`` on the adopter's own
  monotonic clock — the coordinator-free equivalent of "the owner
  missed every heartbeat for a whole ttl";
- wall-clock timestamps (``expires_at``, ``acquired_at``) remain in
  the record purely for display and provenance.
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.core.exceptions import ReproError, ValidationError
from repro.observe.observer import resolve_observer
from repro.runtime.checkpoint import CheckpointStore

__all__ = ["Lease", "LeaseLost", "LeaseManager"]

#: Record kind stamped on lease records in their CheckpointStore.
LEASE_KIND = "serve.lease"


class LeaseLost(ReproError, RuntimeError):
    """The caller's lease was superseded (adopted) or released."""


@dataclass
class Lease:
    """One held lease; mutable because heartbeats extend the deadline.

    ``deadline_mono`` (the renewal deadline on the owner's monotonic
    clock) is what liveness decisions read; ``expires_at`` is the
    wall-clock mirror kept for display and provenance.
    """

    job_id: str
    owner: str
    epoch: int
    expires_at: float
    deadline_mono: float = 0.0
    renewals: int = 0
    adopted: bool = False  # acquired over another owner's expired lease

    def remaining(self, now: float | None = None) -> float:
        """Seconds of ttl left, measured on the owner's monotonic clock
        (``now`` is a :func:`time.monotonic` value when given)."""
        return self.deadline_mono - (time.monotonic() if now is None else now)


def default_owner() -> str:
    """A process-unique owner id (host + pid + random suffix)."""
    return (f"{socket.gethostname()}-{os.getpid()}-"
            f"{uuid.uuid4().hex[:8]}")


class LeaseManager:
    """Acquire / heartbeat / release leases under one directory.

    Parameters
    ----------
    root:
        Directory holding one :class:`~repro.runtime.CheckpointStore`
        per job (``root/<job_id>/``).
    owner:
        This process's owner id; auto-generated when omitted. All
        workers of one server share the server's owner id.
    ttl:
        Lease lifetime in seconds; a lease whose record goes unrenewed
        for ``ttl`` (as observed on the adopter's monotonic clock) is
        adoptable by anyone.
    observer:
        Optional observer fed ``serve.lease.*`` counters
        (``acquired`` / ``adopted`` / ``renewed`` / ``lost`` /
        ``released`` / ``held``).
    """

    def __init__(self, root: str | os.PathLike, *, owner: str | None = None,
                 ttl: float = 30.0, observer=None):
        if ttl <= 0:
            raise ValidationError("lease ttl must be > 0")
        self.root = Path(root)
        self.owner = owner or default_owner()
        self.ttl = float(ttl)
        self.observer = resolve_observer(observer)
        # First-observation monotonic timestamps per job, keyed by the
        # record generation ``(owner, epoch, renewals)``. A generation
        # observed unchanged for >= its ttl marks a dead owner.
        self._observed: dict[str, tuple[tuple, float]] = {}

    def _store(self, job_id: str) -> CheckpointStore:
        return CheckpointStore(self.root / job_id, keep=2)

    def peek(self, job_id: str) -> dict | None:
        """The newest lease record's payload, or ``None``."""
        record = self._store(job_id).load_latest(LEASE_KIND)
        return record.payload if record is not None else None

    # -- foreign-lease liveness (monotonic observation) --------------------
    def _foreign_age(self, job_id: str, payload: dict) -> float:
        """Monotonic seconds this exact record generation has been
        observed unchanged by *this* manager (0.0 on first sight)."""
        generation = (payload.get("owner"), int(payload.get("epoch", -1)),
                      int(payload.get("renewals", 0)))
        now = time.monotonic()
        seen = self._observed.get(job_id)
        if seen is None or seen[0] != generation:
            self._observed[job_id] = (generation, now)
            return 0.0
        return now - seen[1]

    def retry_after(self, job_id: str) -> float:
        """Seconds to back off before :meth:`acquire` could succeed.

        ``0`` when the lease is free, ours, or already adoptable;
        otherwise the remaining observation window for the holder's
        record generation. Callers park dispatch for this long instead
        of doing arithmetic on the record's wall-clock fields.
        """
        payload = self.peek(job_id)
        if payload is None or payload.get("state") != "running" \
                or payload.get("owner") == self.owner:
            return 0.0
        ttl = float(payload.get("ttl", self.ttl))
        return max(0.0, ttl - self._foreign_age(job_id, payload))

    # -- acquire -----------------------------------------------------------
    def acquire(self, job_id: str) -> Lease | None:
        """Try to take the lease; ``None`` while another owner holds it.

        A foreign running lease counts as held until this manager has
        watched its record generation go unrenewed for a full ttl on
        the local monotonic clock (see the module docstring); the
        first call therefore only *starts* the observation window.

        Acquisition is write-then-verify: write a record at the next
        epoch, re-read the newest record, and only claim victory if it
        is ours — so when two processes race, exactly one wins (the
        store's sequence numbers order the writes; last write wins and
        the loser observes it).
        """
        store = self._store(job_id)
        record = store.load_latest(LEASE_KIND)
        adopted = False
        epoch = 0
        if record is not None:
            payload = record.payload
            foreign_running = (payload.get("state") == "running"
                               and payload.get("owner") != self.owner)
            if foreign_running:
                ttl = float(payload.get("ttl", self.ttl))
                if self._foreign_age(job_id, payload) < ttl:
                    if self.observer.enabled:
                        self.observer.count("serve.lease.held")
                    return None
            epoch = int(payload.get("epoch", -1)) + 1
            adopted = foreign_running
        now_mono = time.monotonic()
        expires_at = time.time() + self.ttl  # display/provenance only
        store.write(LEASE_KIND, self._payload(job_id, epoch, expires_at,
                                              "running", renewals=0))
        latest = store.load_latest(LEASE_KIND)
        if latest is None or latest.payload.get("owner") != self.owner \
                or int(latest.payload.get("epoch", -1)) != epoch:
            return None  # lost the race to a concurrent acquirer
        self._observed.pop(job_id, None)
        if self.observer.enabled:
            self.observer.count("serve.lease.acquired")
            if adopted:
                self.observer.count("serve.lease.adopted")
        return Lease(job_id=job_id, owner=self.owner, epoch=epoch,
                     expires_at=expires_at,
                     deadline_mono=now_mono + self.ttl, adopted=adopted)

    def _payload(self, job_id: str, epoch: int, expires_at: float,
                 state: str, *, renewals: int = 0) -> dict:
        return {"job_id": job_id, "owner": self.owner, "epoch": epoch,
                "expires_at": expires_at, "state": state,
                "ttl": self.ttl, "renewals": renewals}

    # -- heartbeat / release -----------------------------------------------
    def _verify(self, lease: Lease) -> None:
        latest = self._store(lease.job_id).load_latest(LEASE_KIND)
        if latest is None \
                or latest.payload.get("owner") != lease.owner \
                or int(latest.payload.get("epoch", -1)) != lease.epoch:
            if self.observer.enabled:
                self.observer.count("serve.lease.lost")
            raise LeaseLost(
                f"lease on {lease.job_id!r} (epoch {lease.epoch}) was "
                "superseded — another worker adopted the job")

    def heartbeat(self, lease: Lease) -> Lease:
        """Extend the lease by ``ttl``; :class:`LeaseLost` if superseded.

        Cheap to call eagerly: the record is only rewritten once less
        than half the ttl remains on the owner's monotonic clock.
        """
        now_mono = time.monotonic()
        if lease.remaining(now_mono) > self.ttl / 2:
            return lease
        self._verify(lease)
        lease.deadline_mono = now_mono + self.ttl
        lease.expires_at = time.time() + self.ttl
        lease.renewals += 1
        self._store(lease.job_id).write(
            LEASE_KIND, self._payload(lease.job_id, lease.epoch,
                                      lease.expires_at, "running",
                                      renewals=lease.renewals))
        if self.observer.enabled:
            self.observer.count("serve.lease.renewed")
        return lease

    def release(self, lease: Lease, *, state: str = "done") -> None:
        """Terminate the lease (``state``: ``done``/``failed``/
        ``cancelled``); a superseded lease is left alone."""
        try:
            self._verify(lease)
        except LeaseLost:
            return
        self._store(lease.job_id).write(
            LEASE_KIND, self._payload(lease.job_id, lease.epoch,
                                      time.time(), state,
                                      renewals=lease.renewals))
        if self.observer.enabled:
            self.observer.count("serve.lease.released")
