"""Checkpoint-backed job leases: crash-safe ownership with adoption.

A job must run on exactly one worker at a time, yet any worker must be
able to pick it up after its owner dies — without a coordinator. The
lease is the standard answer: a durable record saying "``owner`` holds
``job_id`` until ``expires_at``", renewed by heartbeat, expired by
wall-clock. It is persisted through the same crash-safe
:class:`~repro.runtime.CheckpointStore` machinery the job checkpoints
use (atomic write + content hash + fall-back-past-corrupt), one store
per job, so a SIGKILLed worker leaves behind exactly two artifacts — a
stale lease and a valid checkpoint — and adoption is: wait out the
lease, re-acquire it at a higher epoch, resume the checkpoint.

Epochs fence stale owners: every acquisition increments ``epoch``, and
every heartbeat verifies the stored record still carries the caller's
``(owner, epoch)`` — a worker that lost its lease to an adopter gets
:class:`LeaseLost` at its next heartbeat instead of silently double
-running the job. (The resumed job is hex-identical either way — the
fence exists to stop wasted work and double accounting, not to protect
correctness of the scores.)
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.core.exceptions import ReproError, ValidationError
from repro.observe.observer import resolve_observer
from repro.runtime.checkpoint import CheckpointStore

__all__ = ["Lease", "LeaseLost", "LeaseManager"]

#: Record kind stamped on lease records in their CheckpointStore.
LEASE_KIND = "serve.lease"


class LeaseLost(ReproError, RuntimeError):
    """The caller's lease was superseded (adopted) or released."""


@dataclass
class Lease:
    """One held lease; mutable because heartbeats extend ``expires_at``."""

    job_id: str
    owner: str
    epoch: int
    expires_at: float
    adopted: bool = False  # acquired over another owner's expired lease

    def remaining(self, now: float | None = None) -> float:
        return self.expires_at - (time.time() if now is None else now)


def default_owner() -> str:
    """A process-unique owner id (host + pid + random suffix)."""
    return (f"{socket.gethostname()}-{os.getpid()}-"
            f"{uuid.uuid4().hex[:8]}")


class LeaseManager:
    """Acquire / heartbeat / release leases under one directory.

    Parameters
    ----------
    root:
        Directory holding one :class:`~repro.runtime.CheckpointStore`
        per job (``root/<job_id>/``).
    owner:
        This process's owner id; auto-generated when omitted. All
        workers of one server share the server's owner id.
    ttl:
        Lease lifetime in seconds; a lease not heartbeated within
        ``ttl`` is adoptable by anyone.
    observer:
        Optional observer fed ``serve.lease.*`` counters
        (``acquired`` / ``adopted`` / ``renewed`` / ``lost`` /
        ``released`` / ``held``).
    """

    def __init__(self, root: str | os.PathLike, *, owner: str | None = None,
                 ttl: float = 30.0, observer=None):
        if ttl <= 0:
            raise ValidationError("lease ttl must be > 0")
        self.root = Path(root)
        self.owner = owner or default_owner()
        self.ttl = float(ttl)
        self.observer = resolve_observer(observer)

    def _store(self, job_id: str) -> CheckpointStore:
        return CheckpointStore(self.root / job_id, keep=2)

    def peek(self, job_id: str) -> dict | None:
        """The newest lease record's payload, or ``None``."""
        record = self._store(job_id).load_latest(LEASE_KIND)
        return record.payload if record is not None else None

    # -- acquire -----------------------------------------------------------
    def acquire(self, job_id: str) -> Lease | None:
        """Try to take the lease; ``None`` while another owner holds it.

        Acquisition is write-then-verify: write a record at the next
        epoch, re-read the newest record, and only claim victory if it
        is ours — so when two processes race, exactly one wins (the
        store's sequence numbers order the writes; last write wins and
        the loser observes it).
        """
        store = self._store(job_id)
        now = time.time()
        record = store.load_latest(LEASE_KIND)
        adopted = False
        epoch = 0
        if record is not None:
            payload = record.payload
            held = (payload.get("state") == "running"
                    and payload.get("expires_at", 0.0) > now
                    and payload.get("owner") != self.owner)
            if held:
                if self.observer.enabled:
                    self.observer.count("serve.lease.held")
                return None
            epoch = int(payload.get("epoch", -1)) + 1
            adopted = (payload.get("state") == "running"
                       and payload.get("owner") != self.owner)
        expires_at = now + self.ttl
        store.write(LEASE_KIND, self._payload(job_id, epoch, expires_at,
                                              "running"))
        latest = store.load_latest(LEASE_KIND)
        if latest is None or latest.payload.get("owner") != self.owner \
                or int(latest.payload.get("epoch", -1)) != epoch:
            return None  # lost the race to a concurrent acquirer
        if self.observer.enabled:
            self.observer.count("serve.lease.acquired")
            if adopted:
                self.observer.count("serve.lease.adopted")
        return Lease(job_id=job_id, owner=self.owner, epoch=epoch,
                     expires_at=expires_at, adopted=adopted)

    def _payload(self, job_id: str, epoch: int, expires_at: float,
                 state: str) -> dict:
        return {"job_id": job_id, "owner": self.owner, "epoch": epoch,
                "expires_at": expires_at, "state": state,
                "ttl": self.ttl}

    # -- heartbeat / release -----------------------------------------------
    def _verify(self, lease: Lease) -> None:
        latest = self._store(lease.job_id).load_latest(LEASE_KIND)
        if latest is None \
                or latest.payload.get("owner") != lease.owner \
                or int(latest.payload.get("epoch", -1)) != lease.epoch:
            if self.observer.enabled:
                self.observer.count("serve.lease.lost")
            raise LeaseLost(
                f"lease on {lease.job_id!r} (epoch {lease.epoch}) was "
                "superseded — another worker adopted the job")

    def heartbeat(self, lease: Lease) -> Lease:
        """Extend the lease by ``ttl``; :class:`LeaseLost` if superseded.

        Cheap to call eagerly: the record is only rewritten once less
        than half the ttl remains.
        """
        now = time.time()
        if lease.remaining(now) > self.ttl / 2:
            return lease
        self._verify(lease)
        lease.expires_at = now + self.ttl
        self._store(lease.job_id).write(
            LEASE_KIND, self._payload(lease.job_id, lease.epoch,
                                      lease.expires_at, "running"))
        if self.observer.enabled:
            self.observer.count("serve.lease.renewed")
        return lease

    def release(self, lease: Lease, *, state: str = "done") -> None:
        """Terminate the lease (``state``: ``done``/``failed``/
        ``cancelled``); a superseded lease is left alone."""
        try:
            self._verify(lease)
        except LeaseLost:
            return
        self._store(lease.job_id).write(
            LEASE_KIND, self._payload(lease.job_id, lease.epoch,
                                      time.time(), state))
        if self.observer.enabled:
            self.observer.count("serve.lease.released")
