"""Admission control and weighted-fair scheduling for the job tier.

One process serves many tenants; two failure modes must be designed
away. *Overload*: an unbounded queue converts a burst into unbounded
memory and unbounded latency for everyone — so the queue is bounded,
per-tenant quotas cap how much of it one tenant may occupy, and an
over-limit submission is rejected immediately with a ``retry_after``
hint (:class:`AdmissionError`) rather than silently parked. *Capture*:
FIFO dispatch lets a tenant that submits 100 jobs starve one that
submits 2 — so dispatch order is **stride scheduling**: each tenant
carries a virtual ``pass`` advancing by ``1/weight`` per job dispatched,
and the queue always serves the eligible tenant with the smallest pass.
Over any window, tenant throughput is proportional to weight, to within
one job — the property the serve-smoke CI job asserts.

Within a tenant, higher ``priority`` dispatches first; ties break by
admission order, so scheduling is fully deterministic.
"""

from __future__ import annotations

import heapq
import threading
import time

from repro.core.exceptions import ReproError, ValidationError
from repro.serve.jobs import Job

__all__ = ["AdmissionError", "JobQueue"]


class AdmissionError(ReproError, RuntimeError):
    """Submission rejected by admission control (queue or quota full).

    ``retry_after`` is the server's backoff hint in seconds; resubmit
    after that long. ``reason`` is ``"queue_full"``, ``"tenant_quota"``
    or ``"draining"``.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0,
                 reason: str = "queue_full"):
        super().__init__(message)
        self.retry_after = float(retry_after)
        self.reason = reason


class _TenantLane:
    """One tenant's scheduling state: priority heap + stride pass."""

    __slots__ = ("name", "weight", "max_pending", "max_active", "heap",
                 "pass_", "active", "dispatched")

    def __init__(self, name: str, *, weight: float = 1.0,
                 max_pending: int | None = None,
                 max_active: int | None = None):
        if weight <= 0:
            raise ValidationError("tenant weight must be > 0")
        self.name = name
        self.weight = float(weight)
        self.max_pending = max_pending
        self.max_active = max_active
        self.heap: list[tuple[int, int, Job]] = []  # (-priority, seq, job)
        self.pass_ = 0.0
        self.active = 0      # jobs dispatched but not yet task_done()
        self.dispatched = 0  # lifetime dispatch count (fair-share audit)

    @property
    def stride(self) -> float:
        return 1.0 / self.weight


class JobQueue:
    """Bounded, multi-tenant job queue with stride-scheduled dispatch.

    Parameters
    ----------
    capacity:
        Total pending jobs admitted across all tenants.
    retry_after:
        Base backoff hint stamped on rejections, scaled up as the queue
        fills past capacity.
    observer:
        Optional :class:`repro.observe.Observer` fed the ``serve.queue``
        counters (``admitted`` / ``rejected`` / ``dispatched``) and the
        ``serve.queue_depth`` gauge.

    Tenants are registered with :meth:`configure_tenant` (weight,
    pending/active quotas); unknown tenants are auto-registered at
    weight 1. All methods are thread-safe; :meth:`pop` blocks.
    """

    def __init__(self, capacity: int = 64, *, retry_after: float = 1.0,
                 observer=None):
        if capacity < 1:
            raise ValidationError("capacity must be >= 1")
        self.capacity = capacity
        self.base_retry_after = retry_after
        from repro.observe.observer import resolve_observer
        self.observer = resolve_observer(observer)
        self._cond = threading.Condition()
        self._lanes: dict[str, _TenantLane] = {}
        self._pending = 0
        self._parked: list[Job] = []  # lease-backoff jobs, time-gated
        self._closed = False
        self.dispatch_log: list[str] = []  # tenant per dispatch, in order

    # -- tenants -----------------------------------------------------------
    def configure_tenant(self, name: str, *, weight: float = 1.0,
                         max_pending: int | None = None,
                         max_active: int | None = None) -> None:
        """Register (or reconfigure) a tenant's weight and quotas."""
        with self._cond:
            lane = self._lanes.get(name)
            if lane is None:
                lane = _TenantLane(name, weight=weight,
                                   max_pending=max_pending,
                                   max_active=max_active)
                # A newly-active tenant starts at the current virtual
                # time, not 0 — otherwise it would monopolize dispatch
                # until its pass catches up with the incumbents'.
                lane.pass_ = self._virtual_time()
                self._lanes[name] = lane
            else:
                if weight <= 0:
                    raise ValidationError("tenant weight must be > 0")
                lane.weight = float(weight)
                lane.max_pending = max_pending
                lane.max_active = max_active

    def _lane(self, name: str) -> _TenantLane:
        if name not in self._lanes:
            self.configure_tenant(name)
        return self._lanes[name]

    def _virtual_time(self) -> float:
        busy = [lane.pass_ for lane in self._lanes.values()
                if lane.heap or lane.active]
        return min(busy) if busy else 0.0

    # -- admission ---------------------------------------------------------
    def push(self, job: Job) -> None:
        """Admit one job, or raise :class:`AdmissionError`."""
        with self._cond:
            if self._closed:
                raise AdmissionError("queue is draining; no new jobs",
                                     retry_after=self.base_retry_after,
                                     reason="draining")
            lane = self._lane(job.spec.tenant)
            if self._pending >= self.capacity:
                raise AdmissionError(
                    f"queue full ({self.capacity} pending); retry later",
                    retry_after=self._retry_hint(), reason="queue_full")
            if lane.max_pending is not None \
                    and len(lane.heap) >= lane.max_pending:
                raise AdmissionError(
                    f"tenant {lane.name!r} is at its pending quota "
                    f"({lane.max_pending})",
                    retry_after=self._retry_hint(), reason="tenant_quota")
            heapq.heappush(lane.heap, (-job.spec.priority, job.seq, job))
            self._pending += 1
            if self.observer.enabled:
                self.observer.count("serve.queue.admitted")
                self.observer.gauge("serve.queue_depth", self._pending)
            self._cond.notify()

    def _retry_hint(self) -> float:
        # Fuller queue → longer suggested backoff; crude but monotone.
        fill = self._pending / self.capacity if self.capacity else 1.0
        return self.base_retry_after * max(1.0, 2.0 * fill)

    def reject_observed(self) -> None:
        """Count one rejection (the server calls this so the counter
        lands next to the queue's own)."""
        if self.observer.enabled:
            self.observer.count("serve.queue.rejected")

    # -- lease-backoff parking ---------------------------------------------
    def park(self, job: Job, *, delay: float) -> None:
        """Hold a job out of dispatch for ``delay`` seconds — used when
        its lease is still held by another live worker. The deadline
        lives on the monotonic clock so a wall-clock step can neither
        release a parked job early nor strand it."""
        with self._cond:
            job.not_before = time.monotonic() + max(0.0, delay)
            self._parked.append(job)
            self._cond.notify()

    def _unpark_ready(self, now: float) -> None:
        # caller holds the lock
        ready = [job for job in self._parked if job.not_before <= now]
        if not ready:
            return
        self._parked = [job for job in self._parked
                        if job.not_before > now]
        for job in ready:
            lane = self._lane(job.spec.tenant)
            heapq.heappush(lane.heap, (-job.spec.priority, job.seq, job))
            self._pending += 1

    # -- dispatch ----------------------------------------------------------
    def pop(self, timeout: float | None = None) -> Job | None:
        """Dispatch the next job by stride order; ``None`` on timeout.

        Skips tenants at their ``max_active`` quota and jobs parked for
        lease backoff. Cancelled-while-pending jobs are dropped here
        (returned to the caller, which settles them as cancelled).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                self._unpark_ready(time.monotonic())
                lane = self._pick_lane()
                if lane is not None:
                    _, _, job = heapq.heappop(lane.heap)
                    self._pending -= 1
                    lane.pass_ += lane.stride
                    lane.active += 1
                    lane.dispatched += 1
                    self.dispatch_log.append(lane.name)
                    if self.observer.enabled:
                        self.observer.count("serve.queue.dispatched")
                        self.observer.gauge("serve.queue_depth",
                                            self._pending)
                    return job
                wait = self._next_wait(deadline)
                if wait is not None and wait <= 0:
                    return None
                if not self._cond.wait(timeout=wait):
                    if deadline is not None \
                            and time.monotonic() >= deadline:
                        return None

    def _pick_lane(self) -> _TenantLane | None:
        # caller holds the lock; smallest pass wins, name breaks ties so
        # dispatch order is deterministic given admission order.
        best = None
        for lane in sorted(self._lanes.values(), key=lambda l: l.name):
            if not lane.heap:
                continue
            if lane.max_active is not None \
                    and lane.active >= lane.max_active:
                continue
            if best is None or lane.pass_ < best.pass_:
                best = lane
        return best

    def _next_wait(self, deadline) -> float | None:
        # caller holds the lock; bound the wait by the pop deadline and
        # the earliest parked job's wake time.
        waits = []
        if deadline is not None:
            waits.append(deadline - time.monotonic())
        if self._parked:
            earliest = min(job.not_before for job in self._parked)
            waits.append(max(0.0, earliest - time.monotonic()) + 1e-3)
        return min(waits) if waits else None

    def task_done(self, tenant: str) -> None:
        """Report one dispatched job settled (any terminal state)."""
        with self._cond:
            lane = self._lane(tenant)
            lane.active = max(0, lane.active - 1)
            self._cond.notify_all()

    # -- lifecycle / introspection -----------------------------------------
    def close(self) -> None:
        """Stop admitting; pending jobs still dispatch (drain mode)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def remove(self, job: Job) -> bool:
        """Drop a pending/parked job (cancellation); ``True`` if found."""
        with self._cond:
            for lane in self._lanes.values():
                for i, (_, _, queued) in enumerate(lane.heap):
                    if queued is job:
                        lane.heap.pop(i)
                        heapq.heapify(lane.heap)
                        self._pending -= 1
                        return True
            if job in self._parked:
                self._parked.remove(job)
                return True
        return False

    @property
    def pending(self) -> int:
        with self._cond:
            return self._pending + len(self._parked)

    @property
    def active(self) -> int:
        with self._cond:
            return sum(lane.active for lane in self._lanes.values())

    def idle(self) -> bool:
        with self._cond:
            return (self._pending == 0 and not self._parked
                    and all(lane.active == 0
                            for lane in self._lanes.values()))

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no job is pending, parked, or active."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not (self._pending == 0 and not self._parked
                       and all(lane.active == 0
                               for lane in self._lanes.values())):
                wait = 0.05
                if deadline is not None:
                    wait = min(wait, deadline - time.monotonic())
                    if wait <= 0:
                        return False
                self._cond.wait(timeout=wait)
            return True

    def snapshot(self) -> dict:
        """Per-tenant scheduling state for stats/monitoring."""
        with self._cond:
            return {
                "capacity": self.capacity,
                "pending": self._pending,
                "parked": len(self._parked),
                "closed": self._closed,
                "tenants": {
                    lane.name: {
                        "weight": lane.weight,
                        "pending": len(lane.heap),
                        "active": lane.active,
                        "dispatched": lane.dispatched,
                        "pass": lane.pass_,
                    } for lane in self._lanes.values()
                },
            }
