"""Job model for the serving tier: what a tenant submits, what runs.

A :class:`JobSpec` is the immutable description of one importance run —
tenant, method, parameters, and a way to obtain the
:class:`~repro.importance.Utility` it scores. A :class:`Job` wraps the
spec with everything mutable: lifecycle state, the
:class:`~repro.serve.AnytimeEstimate` consumers read, the final result
or error, and the cooperative cancel flag.

Jobs are identified by a caller-stable ``job_id``: submitting the same
id (same method/params/seed/data) from *any* process resumes the same
logical job — its checkpoint store and lease live under the server's
``data_dir`` keyed by that id, which is what makes crash adoption a
resubmission rather than a special code path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.exceptions import ValidationError
from repro.serve.anytime import AnytimeEstimate

__all__ = ["Job", "JobSpec", "JobState", "METHODS"]

#: Importance methods the serving tier knows how to run.
METHODS = ("shapley_mc", "banzhaf", "beta_shapley", "loo")


class JobState:
    """String constants for the job lifecycle (kept as plain strings so
    they serialize into runlog events and status dicts unchanged)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    LEASE_LOST = "lease_lost"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED, LEASE_LOST})


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one importance job.

    ``utility`` is either a built :class:`~repro.importance.Utility` or
    a zero-argument callable returning one (a *factory*). Prefer the
    factory form: each run gets a private utility (its ``calls``
    accounting is per-job, and two concurrent jobs never share mutable
    state), and an adopting process can rebuild it from scratch.
    ``params`` are passed to the estimator verbatim (``n_permutations``,
    ``seed``, ``alpha``...); sampling methods need an integer ``seed``
    because every job is checkpointed for lease adoption.
    """

    job_id: str
    tenant: str
    method: str
    utility: object
    params: dict = field(default_factory=dict)
    priority: int = 0

    def __post_init__(self):
        if self.method not in METHODS:
            raise ValidationError(
                f"method must be one of {METHODS} — got {self.method!r}")
        if not self.job_id:
            raise ValidationError("job_id must be a non-empty string")

    def build_utility(self):
        """The job's Utility: call the factory, or use the instance."""
        utility = self.utility
        return utility() if callable(utility) else utility


class Job:
    """One submitted job's mutable runtime state (thread-safe)."""

    def __init__(self, spec: JobSpec, *, anytime: AnytimeEstimate,
                 seq: int = 0):
        self.spec = spec
        self.anytime = anytime
        self.seq = seq  # admission order; the queue's FIFO tiebreaker
        self.not_before = 0.0  # earliest dispatch (monotonic; lease backoff)
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._state = JobState.PENDING
        self.result = None
        self.error: str | None = None
        self.worker: str | None = None
        self.attempts = 0

    # -- state machine -----------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def transition(self, state: str, *, error: str | None = None,
                   result=None) -> None:
        with self._lock:
            self._state = state
            if error is not None:
                self.error = error
            if result is not None:
                self.result = result
        if state in JobState.TERMINAL:
            self._done.set()

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    # -- cancellation ------------------------------------------------------
    def request_cancel(self) -> None:
        """Cooperative cancel: a pending job is dropped at dispatch; a
        running one aborts at its next partial publish."""
        self.anytime.stop()  # wake any consumer-side waiters promptly
        with self._lock:
            self._cancel = True

    @property
    def cancel_requested(self) -> bool:
        with self._lock:
            return getattr(self, "_cancel", False)

    def status(self) -> dict:
        """JSON-able snapshot for :meth:`repro.serve.Server.status`."""
        latest = self.anytime.latest()
        with self._lock:
            return {
                "job_id": self.spec.job_id,
                "tenant": self.spec.tenant,
                "method": self.spec.method,
                "priority": self.spec.priority,
                "state": self._state,
                "error": self.error,
                "worker": self.worker,
                "attempts": self.attempts,
                "completed": latest.completed if latest else 0,
                "total": latest.total if latest else None,
                "ci_width": latest.width if latest else None,
            }

    def __repr__(self) -> str:
        return (f"Job({self.spec.job_id!r}, tenant={self.spec.tenant!r}, "
                f"method={self.spec.method!r}, state={self.state!r})")
