"""Worker threads: dispatch loop + the estimator runners.

A worker pops jobs off the :class:`~repro.serve.JobQueue` in stride
order, takes the job's lease, and runs the matching importance estimator
with the job's checkpoint store wired for both writing *and* resuming —
so a fresh job starts clean (empty store), a retried or adopted job
replays its predecessor's snapshot, and both paths are the same code.

The glue between the estimator loop and the serving tier is
:class:`_JobReporter`, the ``partial=`` hook installed on every job: at
each publish it heartbeats the lease (fencing against adoption),
enforces cooperative cancellation, forwards the snapshot to the job's
:class:`~repro.serve.AnytimeEstimate`, and feeds the observer counters.
Estimators are blocking, CPU-bound loops, so workers are plain threads —
parallelism across jobs comes from the thread count, parallelism within
a job from the shared Runtime's executor.
"""

from __future__ import annotations

import threading

from repro.core.exceptions import ValidationError
from repro.importance.banzhaf import DataBanzhaf
from repro.importance.beta_shapley import BetaShapley
from repro.importance.loo import leave_one_out
from repro.importance.shapley_mc import MonteCarloShapley
from repro.runtime.progress import JobCancelled

__all__ = ["Worker", "run_method"]


def run_method(method: str, utility, params: dict, *, observer=None,
               checkpoint=None, resume_from=None, partial=None):
    """Run one importance method with serving hooks attached.

    ``params`` go to the estimator verbatim; ``checkpoint`` /
    ``resume_from`` / ``partial`` / ``observer`` are the serving tier's
    standard wiring (always the job's own store for both checkpoint
    directions). Returns the score array.
    """
    common = dict(observer=observer, checkpoint=checkpoint,
                  resume_from=resume_from, partial=partial)
    if method == "shapley_mc":
        return MonteCarloShapley(**params, **common).score(utility)
    if method == "banzhaf":
        return DataBanzhaf(**params, **common).score(utility)
    if method == "beta_shapley":
        return BetaShapley(**params, **common).score(utility)
    if method == "loo":
        return leave_one_out(utility, **params, **common)
    raise ValidationError(f"unknown importance method {method!r}")


class _JobReporter:
    """The ``partial=`` hook one running job installs: lease heartbeat,
    cancellation, anytime forwarding, and publish accounting."""

    def __init__(self, job, lease, lease_manager, *, observer=None,
                 every: int | None = None):
        self.job = job
        self.lease = lease
        self.leases = lease_manager
        self.observer = observer
        self.anytime = job.anytime
        # Estimator loops read .every to bound their batch sizes.
        self.every = every if every is not None else self.anytime.every

    def publish(self, **fields) -> bool:
        if self.job.cancel_requested:
            raise JobCancelled(
                f"job {self.job.spec.job_id!r} cancelled by caller")
        # Heartbeat before publishing: a superseded owner must stop
        # *before* exposing results it no longer owns.
        self.leases.heartbeat(self.lease)
        stop = self.anytime.publish(**fields)
        if self.observer is not None and self.observer.enabled:
            self.observer.count("serve.partials")
            if fields.get("exact"):
                # Closed-form dispatch (e.g. KNN-Shapley exact=True):
                # the job's one published snapshot is the final answer.
                self.observer.count("serve.exact_results")
        return stop


class Worker(threading.Thread):
    """One dispatch thread of a :class:`~repro.serve.Server`."""

    def __init__(self, server, index: int):
        super().__init__(name=f"repro-serve-worker-{index}", daemon=True)
        self.server = server
        self.index = index

    def run(self) -> None:
        server = self.server
        while True:
            if server._stop_event.is_set():
                return
            job = server._queue.pop(timeout=0.1)
            if job is None:
                if server._draining and server._queue.idle():
                    return
                continue
            try:
                server._execute(job, worker=self.name)
            except Exception as exc:  # defensive: a worker never dies
                try:
                    server._settle_unexpected(job, exc)
                except Exception:
                    pass
