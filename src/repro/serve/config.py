"""Declarative server configuration (the ``repro-serve`` entry point).

A service should be bootable without writing code: a JSON file names the
data directory, backend, worker count, queue bounds, and tenants, and
``python -m repro.serve --config serve.json`` builds the matching
:class:`~repro.serve.Server`. The schema is the constructor surface of
:class:`ServeConfig` — anything omitted takes the library default.

Example ``serve.json``::

    {
      "data_dir": "serve-data",
      "backend": "thread",
      "workers": 4,
      "queue_capacity": 128,
      "lease_ttl": 15.0,
      "tenants": {
        "alice": {"weight": 3.0, "max_pending": 32},
        "bob":   {"weight": 1.0}
      }
    }
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.exceptions import ValidationError

__all__ = ["ServeConfig"]


@dataclass
class ServeConfig:
    """Everything needed to build a :class:`~repro.serve.Server`.

    ``backend`` / ``max_workers`` / ``cache`` describe the shared
    :class:`~repro.runtime.Runtime` the server builds; the remaining
    fields pass through to the server constructor.
    """

    data_dir: str = "serve-data"
    backend: str = "serial"
    max_workers: int | None = None
    cache: bool = True
    workers: int = 2
    queue_capacity: int = 64
    retry_after: float = 1.0
    lease_ttl: float = 30.0
    default_every: int = 1
    confidence: float = 0.95
    tenants: dict = field(default_factory=dict)

    _FIELDS = ("data_dir", "backend", "max_workers", "cache", "workers",
               "queue_capacity", "retry_after", "lease_ttl",
               "default_every", "confidence", "tenants")

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "ServeConfig":
        """Load a JSON config; unknown keys are rejected loudly."""
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise ValidationError(f"cannot read config {path}: {exc}")
        except ValueError as exc:
            raise ValidationError(f"config {path} is not valid JSON: {exc}")
        if not isinstance(raw, dict):
            raise ValidationError(
                f"config {path} must be a JSON object, got "
                f"{type(raw).__name__}")
        unknown = sorted(set(raw) - set(cls._FIELDS))
        if unknown:
            raise ValidationError(
                f"config {path} has unknown keys {unknown}; allowed: "
                f"{sorted(cls._FIELDS)}")
        return cls(**raw)

    def build_server(self, *, observer=None):
        """Construct the configured :class:`~repro.serve.Server` (and
        the shared Runtime it evaluates through)."""
        from repro.runtime.cache import FingerprintCache
        from repro.runtime.runtime import Runtime
        from repro.serve.server import Server

        runtime = Runtime(backend=self.backend,
                          max_workers=self.max_workers,
                          cache=FingerprintCache() if self.cache else None)
        server = Server(self.data_dir, runtime=runtime,
                        workers=self.workers,
                        queue_capacity=self.queue_capacity,
                        retry_after=self.retry_after,
                        lease_ttl=self.lease_ttl,
                        default_every=self.default_every,
                        confidence=self.confidence, tenants=self.tenants,
                        observer=observer)
        # The server built the runtime's config, so it owns the pool.
        server._owns_runtime = True
        return server
