"""Datascope: Shapley importance over ML pipelines (paper ref [39]).

Importance methods score *encoded training rows*, but practitioners must
fix *source tables*. Datascope closes the gap: compute exact KNN-Shapley
values on the pipeline output, then aggregate each score back onto the
source rows that produced it, using the pipeline's why-provenance and the
linearity of the Shapley value (the value of a group of players in a
replicated game is the sum of member values; for the 1-to-many map from a
source row to its derived training rows this yields the source row's
value under the "pipeline game" of Datascope's additive-utility model).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.dataframe.frame import DataFrame
from repro.importance.knn_shapley import knn_shapley
from repro.ml.base import clone
from repro.ml.metrics import accuracy_score
from repro.pipelines.engine import PipelineResult


def datascope_importance(result: PipelineResult, *, source: str,
                         X_valid, y_valid, k: int = 5) -> dict[int, float]:
    """Importance of every *source row* of ``source``.

    Parameters
    ----------
    result:
        A pipeline run executed with ``provenance=True``.
    source:
        Which source table to attribute importance to.
    X_valid, y_valid:
        Encoded validation features/labels (use
        ``result.encode_like_training`` on a validation frame).
    k:
        Neighborhood size of the KNN proxy.

    Returns
    -------
    dict
        ``{source_row_id: importance}``; source rows filtered out by the
        pipeline (no surviving derived rows) are absent. Lower = more
        harmful, as everywhere in :mod:`repro.importance`.
    """
    if result.provenance is None:
        raise ValidationError("run the pipeline with provenance=True first")
    if result.X is None or result.y is None:
        raise ValidationError("pipeline must end in an encode node")
    if source not in result.provenance.sources():
        raise ValidationError(
            f"unknown source {source!r}; have {result.provenance.sources()}"
        )
    row_values = knn_shapley(result.X, result.y, np.asarray(X_valid),
                             np.asarray(y_valid), k=k)
    groups = result.provenance.group_matrix(source)
    return {rid: float(row_values[positions].sum())
            for rid, positions in groups.items()}


def rank_source_rows(importances: dict[int, float], k: int | None = None) -> list[int]:
    """Source row ids sorted most-harmful first (ascending value)."""
    ranked = sorted(importances, key=lambda rid: (importances[rid], rid))
    return ranked if k is None else ranked[:k]


def _walk_source_permutation_task(shared, task):
    """Walk one *source-row* permutation: each step adds a player's
    derived output rows to the training mask and re-evaluates. Steps are
    arbitrary coalitions (many encoded rows join at once), so this uses
    the core's single-coalition path — which still hits the incremental
    kernel's precomputed state when the model has one."""
    core, positions = shared
    permutation, truncation_tol, full_value, null_value = task
    marginals = np.zeros(len(permutation))
    previous = null_value
    trainings = 0
    kernel_steps = 0
    fallback_retrains = 0
    mask = np.zeros(len(core.y_train), dtype=bool)
    for pos, player in enumerate(permutation):
        mask[positions[int(player)]] = True
        value, trained, used_kernel = core.evaluate(np.flatnonzero(mask))
        trainings += trained
        if used_kernel:
            kernel_steps += 1
        else:
            fallback_retrains += trained
        marginals[pos] = value - previous
        previous = value
        if truncation_tol > 0 and abs(full_value - value) < truncation_tol:
            break
    return marginals, trainings, kernel_steps, fallback_retrains


class SourceRowUtility:
    """Coalition utility whose *players are source rows* of one pipeline
    input.

    For the true (non-proxy) Datascope game: a coalition S of source rows
    induces the training set consisting of exactly the encoded output
    rows whose witnesses for this source lie inside S (removing a source
    row removes all rows derived from it — Datascope's additive model,
    which holds because the feature encoder is row-local). The payoff is
    the downstream model's validation metric.

    Use with :class:`repro.importance.MonteCarloShapley` or
    :class:`repro.importance.DataBanzhaf` when the KNN proxy's inductive
    bias is a concern (the A1 ablation quantifies when that is). Pass
    ``runtime=`` to parallelize and memoize exactly as with
    :class:`~repro.importance.Utility` — the batch APIs below translate
    player coalitions into encoded-row coalitions and delegate.
    """

    def __init__(self, result: PipelineResult, *, source: str, model,
                 X_valid, y_valid, metric=accuracy_score, runtime=None):
        if result.provenance is None:
            raise ValidationError("run the pipeline with provenance=True")
        if result.X is None:
            raise ValidationError("pipeline must end in an encode node")
        groups = result.provenance.group_matrix(source)
        self.source_row_ids = sorted(groups)
        self._positions = [groups[rid] for rid in self.source_row_ids]
        from repro.importance.base import Utility

        self._utility = Utility(model, result.X, result.y,
                                np.asarray(X_valid), np.asarray(y_valid),
                                metric=metric, runtime=runtime)

    @property
    def n_players(self) -> int:
        return len(self.source_row_ids)

    @property
    def calls(self) -> int:
        return self._utility.calls

    @property
    def runtime(self):
        return self._utility.runtime

    def null_value(self) -> float:
        return self._utility.null_value()

    def full_value(self) -> float:
        return self(np.arange(self.n_players))

    def _rows_for(self, player_indices: np.ndarray) -> np.ndarray:
        if len(player_indices) == 0:
            return np.array([], dtype=int)
        rows = np.concatenate([self._positions[int(p)]
                               for p in player_indices])
        return np.unique(rows)

    def __call__(self, player_indices) -> float:
        player_indices = np.asarray(player_indices, dtype=int)
        if len(player_indices) == 0:
            return self._utility.null_value()
        return self._utility(self._rows_for(player_indices))

    def evaluate_many(self, coalitions, *,
                      stage: str = "datascope.batch") -> np.ndarray:
        """Batch evaluation of player coalitions through the inner
        utility's runtime (caching included)."""
        row_subsets = [self._rows_for(np.asarray(c, dtype=int))
                       for c in coalitions]
        return self._utility.evaluate_many(row_subsets, stage=stage)

    def walk_permutations(self, permutations, *, truncation_tol: float = 0.0,
                          full_value: float | None = None,
                          stage: str = "datascope.walks") -> list[np.ndarray]:
        """Player-permutation prefix walks, parallelized per permutation."""
        if truncation_tol > 0 and full_value is None:
            full_value = self.full_value()
        null_value = self.null_value()
        tasks = [(np.asarray(p, dtype=int), float(truncation_tol),
                  0.0 if full_value is None else float(full_value),
                  null_value)
                 for p in permutations]
        shared = (self._utility._core, self._positions)
        if self.runtime is not None and len(tasks) > 1:
            results = self.runtime.map(_walk_source_permutation_task, tasks,
                                       shared=shared, stage=stage)
        else:
            results = [_walk_source_permutation_task(shared, t)
                       for t in tasks]
        marginal_arrays = []
        for marginals, trainings, kernel_steps, fallbacks in results:
            self._utility.calls += trainings
            self._utility.kernel_steps += kernel_steps
            self._utility.fallback_retrains += fallbacks
            marginal_arrays.append(marginals)
        return marginal_arrays

    def values_by_row_id(self, player_values) -> dict[int, float]:
        """Map player-indexed values back to source row ids."""
        return {rid: float(v)
                for rid, v in zip(self.source_row_ids, player_values)}


def remove_and_evaluate(pipeline, sources: dict[str, DataFrame], *,
                        source: str, row_ids, model, valid_frame: DataFrame,
                        train_source: str | None = None,
                        metric=accuracy_score) -> dict[str, float]:
    """Measure the effect of deleting source rows and re-running end-to-end.

    Re-executes the pipeline on ``sources`` with ``row_ids`` removed from
    ``source``, retrains ``model`` on the new output, and reports the
    metric before/after (the Figure 3 "Removal changed accuracy by ..."
    experiment). Validation data flows through the same relational plan:
    ``valid_frame`` is substituted for ``train_source`` (defaults to
    ``source``) and encoded with each run's fitted encoder.

    Returns ``{"before": ..., "after": ..., "delta": ...}``.
    """
    train_source = train_source or source
    valid_sources = dict(sources)
    valid_sources[train_source] = valid_frame

    baseline = pipeline.run(sources, provenance=False)
    X_valid, y_valid = baseline.apply(valid_sources)
    if y_valid is None:
        raise ValidationError("validation frame lost its label in the plan")

    base_model = clone(model)
    base_model.fit(baseline.X, baseline.y)
    before = float(metric(y_valid, base_model.predict(X_valid)))

    patched = dict(sources)
    patched[source] = sources[source].drop_rows(row_ids)
    rerun = pipeline.run(patched, provenance=False)
    X_valid_after, y_valid_after = rerun.apply(valid_sources)

    new_model = clone(model)
    new_model.fit(rerun.X, rerun.y)
    after = float(metric(y_valid_after, new_model.predict(X_valid_after)))
    return {"before": before, "after": after, "delta": after - before}
