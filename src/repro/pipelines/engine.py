"""Pipeline execution with optional provenance tracking.

The executor interprets a plan (a DAG of :class:`~repro.pipelines.
operators.Node`) bottom-up. In provenance mode every intermediate frame is
paired with a :class:`~repro.pipelines.provenance.Provenance` object that
the relational operators thread through (filters subset it, joins combine
witnesses, encode passes it along row-aligned).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import SchemaError, ValidationError
from repro.dataframe.expr import Expr
from repro.dataframe.frame import DataFrame, concat_rows
from repro.pipelines.operators import Node
from repro.pipelines.provenance import Provenance


@dataclass
class PipelineResult:
    """Everything a pipeline run produces.

    Attributes
    ----------
    X, y:
        Feature matrix and label vector (``None`` unless the plan ends in
        an encode node).
    frame:
        The final relational frame (pre-encoding for encode plans).
    provenance:
        Row-aligned witnesses, or ``None`` when provenance was off.
    encoder:
        The fitted feature encoder (for applying to validation data).
    label:
        Name of the label column.
    timings:
        Per-node wall-clock seconds, keyed by node description.
    """

    X: np.ndarray | None
    y: np.ndarray | None
    frame: DataFrame
    provenance: Provenance | None
    encoder: object | None
    label: str | None
    plan: Node | None = None
    timings: dict[str, float] = field(default_factory=dict)

    def encode_like_training(self, frame: DataFrame) -> np.ndarray:
        """Apply the fitted training encoder to a frame that already has
        the encoder's input columns (i.e. post-relational-plan data)."""
        if self.encoder is None:
            raise ValidationError("pipeline had no encode node")
        return self.encoder.transform(frame)

    def apply(self, sources: dict[str, DataFrame]):
        """Run the *fitted* pipeline on new source bindings.

        Re-executes the relational plan on ``sources`` (e.g. validation
        letters joined against the same side tables) and applies the
        already-fitted feature encoder — the standard train/serve split.

        Returns ``(X, y)``; ``y`` is ``None`` when the label column is
        absent from the new data (pure prediction input).
        """
        if self.encoder is None or self.plan is None:
            raise ValidationError("pipeline had no encode node")
        pipeline = DataPipeline(self.plan)
        frames: dict[int, DataFrame] = {}
        provs: dict[int, None] = {}
        for node in self.plan.walk():
            if node.op == "encode":
                break
            frame, _ = pipeline._run_relational(node, sources, frames,
                                                provs, False)
            frames[node.id] = frame
            provs[node.id] = None
        encode_node = next(n for n in self.plan.walk() if n.op == "encode")
        final_frame = frames[encode_node.inputs[0].id]
        X = self.encoder.transform(final_frame)
        y = None
        if self.label in final_frame:
            if final_frame[self.label].null_count() == 0:
                y = np.array(final_frame[self.label].to_list())
        return X, y


class DataPipeline:
    """Executable pipeline over a terminal plan node.

    Parameters
    ----------
    plan:
        The terminal :class:`Node` (usually an ``encode`` node).
    """

    def __init__(self, plan: Node):
        self.plan = plan
        ops = [n.op for n in plan.walk()]
        n_encodes = sum(1 for op in ops if op == "encode")
        if n_encodes > 1:
            raise ValidationError("a plan may contain at most one encode node")
        self.source_names = [
            n.params["name"] for n in plan.walk() if n.op == "source"
        ]
        if len(set(self.source_names)) != len(self.source_names):
            raise ValidationError(f"duplicate source names: {self.source_names}")

    def run(self, sources: dict[str, DataFrame], *,
            provenance: bool = False) -> PipelineResult:
        """Execute the plan against bound source frames."""
        missing = [n for n in self.source_names if n not in sources]
        if missing:
            raise ValidationError(f"unbound sources: {missing}")
        frames: dict[int, DataFrame] = {}
        provs: dict[int, Provenance | None] = {}
        timings: dict[str, float] = {}
        final: PipelineResult | None = None

        for node in self.plan.walk():
            started = time.perf_counter()
            if node.op == "encode":
                final = self._run_encode(node, frames, provs, provenance)
            else:
                frame, prov = self._run_relational(node, sources, frames,
                                                   provs, provenance)
                frames[node.id] = frame
                provs[node.id] = prov
            timings[f"{node.id}:{node.describe()}"] = time.perf_counter() - started

        if final is None:  # purely relational plan
            terminal = self.plan
            final = PipelineResult(
                X=None, y=None, frame=frames[terminal.id],
                provenance=provs[terminal.id], encoder=None, label=None,
            )
        final.timings = timings
        return final

    def trace(self, sources: dict[str, DataFrame]) -> dict[str, DataFrame]:
        """Execute the relational plan and return every intermediate frame
        keyed by ``"<node_id>:<description>"`` — mlinspect-style operator
        introspection for interactive debugging (what does the data look
        like *after* the second join?)."""
        frames: dict[int, DataFrame] = {}
        provs: dict[int, None] = {}
        captured: dict[str, DataFrame] = {}
        for node in self.plan.walk():
            if node.op == "encode":
                continue
            frame, _ = self._run_relational(node, sources, frames, provs,
                                            False)
            frames[node.id] = frame
            provs[node.id] = None
            captured[f"{node.id}:{node.describe()}"] = frame
        return captured

    # ------------------------------------------------------------------
    def _run_relational(self, node: Node, sources, frames, provs,
                        track: bool):
        if node.op == "source":
            frame = sources[node.params["name"]]
            prov = Provenance.for_source(node.params["name"], frame.row_ids) \
                if track else None
            return frame, prov

        upstream = frames[node.inputs[0].id]
        upstream_prov = provs[node.inputs[0].id]

        if node.op == "filter":
            predicate = node.params["predicate"]
            if isinstance(predicate, tuple):
                column, value = predicate
                mask = np.asarray(upstream[column] == value)
            elif isinstance(predicate, Expr):
                mask = predicate.evaluate(upstream)
            else:
                mask = np.array([bool(predicate(r)) for r in upstream.iter_rows()])
            frame = upstream.take(mask)
            prov = upstream_prov.take(mask) if track else None
            return frame, prov

        if node.op == "project":
            return upstream.select(node.params["columns"]), upstream_prov

        if node.op == "drop":
            return upstream.drop(node.params["columns"]), upstream_prov

        if node.op == "map":
            frame = upstream.with_column(node.params["name"], node.params["udf"])
            return frame, upstream_prov

        if node.op == "join":
            right = frames[node.inputs[1].id]
            right_prov = provs[node.inputs[1].id]
            if node.params.get("fuzzy"):
                frame, left_pos, right_pos = upstream.fuzzy_join(
                    right, on=node.params["on"], how=node.params["how"],
                    max_edit_distance=node.params.get("fuzzy_distance", 0),
                    return_indices=True,
                )
            else:
                frame, left_pos, right_pos = upstream.join(
                    right, on=node.params["on"], how=node.params["how"],
                    return_indices=True,
                )
            prov = Provenance.join(upstream_prov, right_prov,
                                   left_pos, right_pos) if track else None
            return frame, prov

        if node.op == "concat":
            right = frames[node.inputs[1].id]
            frame = concat_rows([upstream, right])
            prov = Provenance.concat([upstream_prov, provs[node.inputs[1].id]]) \
                if track else None
            return frame, prov

        raise ValidationError(f"unknown operator {node.op!r}")

    def _run_encode(self, node: Node, frames, provs, track: bool) -> PipelineResult:
        upstream = frames[node.inputs[0].id]
        label = node.params["label"]
        if label not in upstream:
            raise SchemaError(
                f"label column {label!r} missing before encode; "
                f"have {upstream.columns}"
            )
        from repro.ml.base import clone

        encoder = clone(node.params["encoder"])
        features_frame = upstream.drop(label)
        X = np.asarray(encoder.fit_transform(features_frame), dtype=float)
        y = np.array(upstream[label].to_list(), dtype=object)
        if upstream[label].null_count():
            raise ValidationError("label column contains nulls at encode time")
        y = np.array([v for v in y])
        return PipelineResult(
            X=X, y=y, frame=upstream,
            provenance=provs[node.inputs[0].id] if track else None,
            encoder=_EncoderWithLabelDrop(encoder, label), label=label,
            plan=self.plan,
        )


class _EncoderWithLabelDrop:
    """Wraps the fitted encoder so validation frames (which may still carry
    the label column) can be transformed uniformly."""

    def __init__(self, encoder, label: str):
        self._encoder = encoder
        self._label = label

    def transform(self, frame: DataFrame) -> np.ndarray:
        if self._label in frame:
            frame = frame.drop(self._label)
        return np.asarray(self._encoder.transform(frame), dtype=float)
