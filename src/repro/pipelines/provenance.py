"""Why-provenance for pipeline outputs.

Each output row is annotated with a *witness*: for every source table,
the set of source row ids that produced it. In provenance-semiring terms
(Green et al., ref [27]) this is the why-provenance of a
select/project/join/union plan — a monomial of source tuples per output
tuple; since our operators never union duplicate derivations of the same
output row, one monomial per row suffices (no polynomial sums needed).
The design note in DESIGN.md calls this choice out.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError


class Provenance:
    """Row-aligned provenance annotations.

    ``witnesses[i]`` maps source name -> frozenset of source row ids for
    output row ``i``.
    """

    def __init__(self, witnesses: list[dict[str, frozenset]]):
        self.witnesses = witnesses

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_source(cls, name: str, row_ids) -> "Provenance":
        return cls([{name: frozenset([int(rid)])} for rid in row_ids])

    def __len__(self) -> int:
        return len(self.witnesses)

    def take(self, indices) -> "Provenance":
        """Subset/reorder along with a row operation."""
        indices = np.asarray(indices)
        if indices.dtype == bool:
            indices = np.flatnonzero(indices)
        return Provenance([self.witnesses[int(i)] for i in indices])

    @staticmethod
    def join(left: "Provenance", right: "Provenance",
             left_pos, right_pos) -> "Provenance":
        """Combine witnesses through a join.

        ``right_pos`` entries of ``-1`` (unmatched rows of a left join)
        contribute nothing from the right side.
        """
        witnesses = []
        for lp, rp in zip(left_pos, right_pos):
            combined = dict(left.witnesses[int(lp)])
            if rp >= 0:
                for name, ids in right.witnesses[int(rp)].items():
                    combined[name] = combined.get(name, frozenset()) | ids
            witnesses.append(combined)
        return Provenance(witnesses)

    @staticmethod
    def concat(parts: list["Provenance"]) -> "Provenance":
        return Provenance([w for p in parts for w in p.witnesses])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sources(self) -> list[str]:
        names: set[str] = set()
        for w in self.witnesses:
            names.update(w)
        return sorted(names)

    def source_rows(self, source: str) -> set[int]:
        """All source row ids of ``source`` that reach the output."""
        result: set[int] = set()
        for w in self.witnesses:
            result.update(w.get(source, frozenset()))
        return result

    def outputs_of(self, source: str, row_id: int) -> np.ndarray:
        """Output row positions derived from a given source row
        (forward tracing: "where did this record end up?")."""
        return np.array([
            i for i, w in enumerate(self.witnesses)
            if row_id in w.get(source, frozenset())
        ], dtype=np.int64)

    def inputs_of(self, position: int, source: str | None = None):
        """Source rows behind one output row (backward tracing).

        Returns the witness dict, or just one source's id set when
        ``source`` is given.
        """
        if not 0 <= position < len(self.witnesses):
            raise ValidationError(f"position {position} out of range")
        witness = self.witnesses[position]
        return witness if source is None else witness.get(source, frozenset())

    def group_matrix(self, source: str) -> dict[int, np.ndarray]:
        """source row id -> array of output positions it contributes to.

        This is the aggregation map Datascope uses: by Shapley linearity,
        a source row's importance is the sum of the importances of the
        output rows it witnesses.
        """
        groups: dict[int, list[int]] = {}
        for i, w in enumerate(self.witnesses):
            for rid in w.get(source, frozenset()):
                groups.setdefault(rid, []).append(i)
        return {rid: np.array(pos, dtype=np.int64) for rid, pos in groups.items()}
