"""ML pipelines with fine-grained provenance (Section 2.2 of the paper).

A pipeline is a DAG of relational operators (sources, joins, filters,
projections, UDF maps, concat) ending in a feature-encoding node. The
executor can run it plainly or *with provenance*: each output row then
carries, for every source table, the set of source row ids it was derived
from — semiring-style why-provenance (ref [27]) specialized to
select/project/join/union plans.

That provenance is what connects the importance methods of
:mod:`repro.importance` (which score *encoded training rows*) back to the
*source tables* a practitioner can actually fix — the Datascope idea
(ref [39]), exposed here as :func:`datascope_importance`. The module also
ships mlinspect/ArgusEyes-style pipeline inspections (refs [25, 72]) and
what-if re-execution with operator caching (ref [23]).
"""

from repro.pipelines.datascope import (
    SourceRowUtility,
    datascope_importance,
    remove_and_evaluate,
)
from repro.pipelines.engine import DataPipeline, PipelineResult
from repro.pipelines.inspections import (
    DataLeakageInspection,
    DistributionShiftInspection,
    FilterSelectivityInspection,
    InspectionResult,
    JoinCoverageInspection,
    LabelDistributionInspection,
    MissingnessInspection,
    run_inspections,
)
from repro.pipelines.operators import source
from repro.pipelines.plan import show_query_plan, to_networkx
from repro.pipelines.provenance import Provenance
from repro.pipelines.schema import Anomaly, Schema, infer_schema, validate_frame
from repro.pipelines.whatif import WhatIfAnalysis

# Imported last: the debugger's corpus builds on the engine/operators
# modules above, so this keeps the package import acyclic.
from repro.pipelines.debugger import (
    DebugReport,
    PipelineDebugger,
    PipelineVariants,
    load_corpus,
)

__all__ = [
    "PipelineDebugger",
    "PipelineVariants",
    "DebugReport",
    "load_corpus",
    "source",
    "DataPipeline",
    "PipelineResult",
    "Provenance",
    "show_query_plan",
    "to_networkx",
    "datascope_importance",
    "SourceRowUtility",
    "remove_and_evaluate",
    "WhatIfAnalysis",
    "run_inspections",
    "InspectionResult",
    "JoinCoverageInspection",
    "FilterSelectivityInspection",
    "LabelDistributionInspection",
    "MissingnessInspection",
    "DataLeakageInspection",
    "DistributionShiftInspection",
    "Schema",
    "Anomaly",
    "infer_schema",
    "validate_frame",
]
