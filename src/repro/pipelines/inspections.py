"""Pipeline inspections (mlinspect / ArgusEyes style, refs [25, 72]).

Inspections are screens run over a pipeline's source frames and its
encoded output, each returning an :class:`InspectionResult` with a
severity and human-readable findings. They catch the issue classes the
paper lists: distribution problems introduced by joins/filters, missing
data, label skew, and train/validation leakage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import ValidationError
from repro.dataframe.frame import DataFrame
from repro.pipelines.engine import DataPipeline, PipelineResult

SEVERITIES = ("ok", "warning", "error")


@dataclass
class InspectionResult:
    """Outcome of one inspection."""

    name: str
    severity: str
    findings: list[str] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValidationError(f"severity must be one of {SEVERITIES}")

    @property
    def passed(self) -> bool:
        return self.severity == "ok"


class JoinCoverageInspection:
    """Flags joins that silently drop many left-side rows.

    An inner join with low coverage is the classic silent error amplifier:
    rows with key errors (typos, inconsistent casing) vanish without a
    trace, biasing the training set.
    """

    def __init__(self, warn_below: float = 0.95, error_below: float = 0.7):
        self.warn_below = warn_below
        self.error_below = error_below

    def run(self, pipeline: DataPipeline, sources: dict[str, DataFrame],
            result: PipelineResult) -> InspectionResult:
        findings, worst = [], 1.0
        frames: dict[int, DataFrame] = {}
        for node in pipeline.plan.walk():
            if node.op == "source":
                frames[node.id] = sources[node.params["name"]]
            elif node.op == "join":
                left = frames.get(node.inputs[0].id)
                right = frames.get(node.inputs[1].id)
                if left is None or right is None:
                    continue
                if node.params.get("fuzzy"):
                    joined, left_pos, _ = left.fuzzy_join(
                        right, on=node.params["on"], how=node.params["how"],
                        max_edit_distance=node.params.get("fuzzy_distance", 0),
                        return_indices=True)
                else:
                    joined, left_pos, _ = left.join(
                        right, on=node.params["on"], how=node.params["how"],
                        return_indices=True)
                coverage = len(set(left_pos.tolist())) / max(len(left), 1)
                worst = min(worst, coverage)
                if coverage < self.warn_below:
                    findings.append(
                        f"join {node.describe()} keeps only "
                        f"{coverage:.1%} of left rows"
                    )
                frames[node.id] = joined
            elif node.op in ("filter", "map", "project", "drop", "concat"):
                # Track a best-effort frame for downstream joins.
                upstream = frames.get(node.inputs[0].id)
                if upstream is not None and node.op in ("map",):
                    frames[node.id] = upstream.with_column(
                        node.params["name"], node.params["udf"])
                elif upstream is not None and node.op == "filter":
                    predicate = node.params["predicate"]
                    if isinstance(predicate, tuple):
                        frames[node.id] = upstream.take(
                            np.asarray(upstream[predicate[0]] == predicate[1]))
                    else:
                        frames[node.id] = upstream.filter(predicate)
                elif upstream is not None:
                    frames[node.id] = upstream
        severity = "ok"
        if worst < self.error_below:
            severity = "error"
        elif worst < self.warn_below:
            severity = "warning"
        return InspectionResult("join_coverage", severity, findings,
                                {"worst_coverage": worst})


class FilterSelectivityInspection:
    """Flags filters that discard nearly everything (or nothing)."""

    def __init__(self, warn_below: float = 0.05):
        self.warn_below = warn_below

    def run(self, pipeline, sources, result) -> InspectionResult:
        # Selectivity is estimated per filter by replaying the prefix.
        findings = []
        worst = 1.0
        frames: dict[int, DataFrame] = {}
        executor = DataPipeline(pipeline.plan)
        for node in pipeline.plan.walk():
            if node.op == "encode":
                continue
            frame, _ = executor._run_relational(node, sources, frames,
                                                {n: None for n in frames}, False)
            if node.op == "filter":
                upstream_len = len(frames[node.inputs[0].id])
                selectivity = len(frame) / max(upstream_len, 1)
                worst = min(worst, selectivity)
                if selectivity < self.warn_below:
                    findings.append(
                        f"filter {node.describe()} keeps only "
                        f"{selectivity:.1%} of rows"
                    )
            frames[node.id] = frame
        severity = "warning" if findings else "ok"
        return InspectionResult("filter_selectivity", severity, findings,
                                {"worst_selectivity": worst})


class LabelDistributionInspection:
    """Flags severe class imbalance in the encoded training labels."""

    def __init__(self, warn_below: float = 0.2):
        self.warn_below = warn_below

    def run(self, pipeline, sources, result) -> InspectionResult:
        if result.y is None:
            return InspectionResult("label_distribution", "ok",
                                    ["no encode node; skipped"])
        _, counts = np.unique(result.y, return_counts=True)
        minority = counts.min() / counts.sum()
        findings = []
        severity = "ok"
        if minority < self.warn_below:
            severity = "warning"
            findings.append(
                f"minority class holds only {minority:.1%} of training rows"
            )
        return InspectionResult("label_distribution", severity, findings,
                                {"minority_fraction": float(minority)})


class MissingnessInspection:
    """Reports columns with substantial nulls in any source table."""

    def __init__(self, warn_above: float = 0.2):
        self.warn_above = warn_above

    def run(self, pipeline, sources, result) -> InspectionResult:
        findings = []
        worst = 0.0
        for name, frame in sources.items():
            for column, nulls in frame.null_counts().items():
                fraction = nulls / max(len(frame), 1)
                worst = max(worst, fraction)
                if fraction > self.warn_above:
                    findings.append(
                        f"{name}.{column} is {fraction:.1%} null"
                    )
        severity = "warning" if findings else "ok"
        return InspectionResult("missingness", severity, findings,
                                {"worst_null_fraction": worst})


class DataLeakageInspection:
    """Screens for train/validation leakage (ArgusEyes-style, ref [72]).

    Two checks: (1) shared row ids between the pipeline's training output
    provenance and the validation frame — direct overlap; (2) duplicated
    feature vectors between encoded training and validation data — the
    kind of leak a join fan-out or copy-paste split produces.
    """

    def __init__(self, valid_frame: DataFrame, *, train_source: str | None = None):
        self.valid_frame = valid_frame
        self.train_source = train_source

    def run(self, pipeline, sources, result) -> InspectionResult:
        findings = []
        overlap = 0
        if result.provenance is not None:
            train_ids = set()
            for src in result.provenance.sources():
                train_ids |= result.provenance.source_rows(src)
            overlap = len(train_ids & set(self.valid_frame.row_ids.tolist()))
            if overlap:
                findings.append(
                    f"{overlap} validation rows also feed the training output"
                )
        duplicate_vectors = 0
        if result.X is not None and result.encoder is not None:
            train_source = self.train_source or pipeline.source_names[0]
            valid_sources = dict(sources)
            valid_sources[train_source] = self.valid_frame
            X_valid, _ = result.apply(valid_sources)
            train_keys = {tuple(np.round(row, 9)) for row in result.X}
            duplicate_vectors = sum(
                1 for row in X_valid if tuple(np.round(row, 9)) in train_keys
            )
            if duplicate_vectors:
                findings.append(
                    f"{duplicate_vectors} validation feature vectors "
                    "duplicate training vectors"
                )
        severity = "error" if overlap else ("warning" if duplicate_vectors else "ok")
        return InspectionResult("data_leakage", severity, findings,
                                {"row_id_overlap": overlap,
                                 "duplicate_vectors": duplicate_vectors})


class DistributionShiftInspection:
    """Data-distribution debugging (Grafberger et al., ref [24]): compare
    the encoded *training* feature distribution against the encoded
    *validation* distribution and flag features whose means drift by more
    than ``warn_sigma`` training standard deviations — the signature of a
    biased filter/join upstream or a train/serve skew.
    """

    def __init__(self, valid_frame: DataFrame, *, warn_sigma: float = 2.0,
                 train_source: str | None = None):
        self.valid_frame = valid_frame
        self.warn_sigma = warn_sigma
        self.train_source = train_source

    def run(self, pipeline, sources, result) -> InspectionResult:
        if result.X is None or result.encoder is None:
            return InspectionResult("distribution_shift", "ok",
                                    ["no encode node; skipped"])
        train_source = self.train_source or pipeline.source_names[0]
        valid_sources = dict(sources)
        valid_sources[train_source] = self.valid_frame
        X_valid, _ = result.apply(valid_sources)
        train_mean = result.X.mean(axis=0)
        train_std = np.maximum(result.X.std(axis=0), 1e-9)
        drift = np.abs(X_valid.mean(axis=0) - train_mean) / train_std
        worst = float(drift.max())
        shifted = np.flatnonzero(drift > self.warn_sigma)
        findings = [
            f"feature {j} drifts {drift[j]:.1f} sigma between training "
            "and validation" for j in shifted[:5]
        ]
        severity = "warning" if len(shifted) else "ok"
        return InspectionResult("distribution_shift", severity, findings,
                                {"worst_drift_sigma": worst,
                                 "n_shifted_features": int(len(shifted))})


def run_inspections(pipeline: DataPipeline, sources: dict[str, DataFrame],
                    result: PipelineResult,
                    inspections: list) -> list[InspectionResult]:
    """Run a battery of inspections and return all results."""
    return [inspection.run(pipeline, sources, result)
            for inspection in inspections]
