"""What-if analysis over pipelines (Grafberger et al., paper ref [23]).

A what-if analysis re-executes the pipeline under a *data intervention* —
replace a source table, drop rows, patch cells — and reports how the
downstream quality metric moves. Re-execution reuses cached operator
outputs for every subtree whose sources are untouched, which is the
optimization that makes screening many candidate interventions cheap.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.dataframe.frame import DataFrame
from repro.ml.base import clone
from repro.ml.metrics import accuracy_score
from repro.pipelines.engine import DataPipeline, PipelineResult
from repro.pipelines.operators import Node


def _affected_sources(node: Node) -> set[str]:
    return {n.params["name"] for n in node.walk() if n.op == "source"}


class WhatIfAnalysis:
    """Cached what-if executor.

    Parameters
    ----------
    pipeline:
        The pipeline under analysis.
    sources:
        Baseline source tables.
    model:
        Unfitted estimator retrained per scenario.
    valid_frame:
        Relational validation data (encoded with the scenario's encoder).
    metric:
        Quality metric; accuracy by default.
    """

    def __init__(self, pipeline: DataPipeline, sources: dict[str, DataFrame],
                 model, valid_frame: DataFrame, *, train_source: str | None = None,
                 metric=accuracy_score):
        self.pipeline = pipeline
        self.sources = dict(sources)
        self.model = model
        self.valid_frame = valid_frame
        # Validation data replaces this source and flows through the same
        # relational plan before encoding.
        self.train_source = train_source or pipeline.source_names[0]
        self.metric = metric
        self._plan_nodes = list(pipeline.plan.walk())
        self._baseline_frames: dict[int, DataFrame] = {}
        self._baseline_result = self._execute(self.sources, reuse_for=None)
        self.baseline_score = self._score(self._baseline_result)
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    def _execute(self, sources: dict[str, DataFrame],
                 reuse_for: set[str] | None) -> PipelineResult:
        """Run the plan, reusing baseline outputs for subtrees that do not
        touch any source in ``reuse_for``'s complement (i.e. any *changed*
        source). ``reuse_for=None`` disables reuse (baseline run).
        """
        executor = DataPipeline(self.pipeline.plan)
        frames: dict[int, DataFrame] = {}
        provs: dict[int, None] = {}
        final = None
        for node in self._plan_nodes:
            reusable = (
                reuse_for is not None
                and node.op != "encode"
                and node.id in self._baseline_frames
                and not (_affected_sources(node) & reuse_for)
            )
            if reusable:
                frames[node.id] = self._baseline_frames[node.id]
                provs[node.id] = None
                self.cache_hits += 1
                continue
            if node.op == "encode":
                final = executor._run_encode(node, frames, provs, False)
            else:
                frame, _ = executor._run_relational(node, sources, frames,
                                                    provs, False)
                frames[node.id] = frame
                provs[node.id] = None
                if reuse_for is not None:
                    self.cache_misses += 1
        if reuse_for is None:
            self._baseline_frames = frames
        if final is None:
            terminal = self.pipeline.plan
            final = PipelineResult(X=None, y=None, frame=frames[terminal.id],
                                   provenance=None, encoder=None, label=None)
        return final

    def _score(self, result: PipelineResult) -> float:
        if result.X is None:
            raise ValidationError("what-if analysis requires an encode node")
        model = clone(self.model)
        model.fit(result.X, result.y)
        valid_sources = dict(self.sources)
        valid_sources[self.train_source] = self.valid_frame
        X_valid, y_valid = result.apply(valid_sources)
        if y_valid is None:
            raise ValidationError("validation frame lost its label in the plan")
        return float(self.metric(y_valid, model.predict(X_valid)))

    # ------------------------------------------------------------------
    def run_scenario(self, replacements: dict[str, DataFrame]) -> dict:
        """Execute one intervention.

        Parameters
        ----------
        replacements:
            Source name -> replacement frame (other sources keep their
            baseline binding and their cached operator outputs).

        Returns
        -------
        dict with ``score``, ``baseline`` and ``delta``.
        """
        unknown = set(replacements) - set(self.sources)
        if unknown:
            raise ValidationError(f"unknown sources in scenario: {sorted(unknown)}")
        scenario_sources = dict(self.sources)
        scenario_sources.update(replacements)
        result = self._execute(scenario_sources, reuse_for=set(replacements))
        score = self._score(result)
        return {"score": score, "baseline": self.baseline_score,
                "delta": score - self.baseline_score}

    def _check_row_ids(self, source: str, row_ids) -> None:
        frame = self.sources[source]
        ids = np.asarray(np.atleast_1d(row_ids), dtype=np.int64)
        present = np.isin(ids, frame.row_ids)
        if not present.all():
            missing = sorted(int(i) for i in np.unique(ids[~present]))
            raise ValidationError(
                f"scenario names row ids absent from source {source!r}: "
                f"{missing} — a typo'd intervention would otherwise "
                "silently report delta == 0.0 (pass strict=False to drop "
                "the ids that do exist)"
            )

    def drop_rows_scenario(self, source: str, row_ids, *,
                           strict: bool = True) -> dict:
        """Convenience intervention: delete rows from one source.

        Strict by default: a row id that does not exist in the source
        raises :class:`ValidationError` instead of silently no-opping
        (which would report a meaningless ``delta == 0.0``).
        """
        if strict:
            self._check_row_ids(source, row_ids)
        return self.run_scenario(
            {source: self.sources[source].drop_rows(row_ids)}
        )

    def patch_cells_scenario(self, source: str, row_ids, column: str,
                             values, *, strict: bool = True) -> dict:
        """Convenience intervention: overwrite cells in one source.

        Strict by default, like :meth:`drop_rows_scenario`; with
        ``strict=False`` unknown ids are skipped (their values too).
        """
        frame = self.sources[source]
        if strict:
            self._check_row_ids(source, row_ids)
        else:
            ids = np.asarray(np.atleast_1d(row_ids), dtype=np.int64)
            present = np.isin(ids, frame.row_ids)
            if not present.all():
                if not np.isscalar(values) and not isinstance(values, str):
                    values = [v for v, ok in zip(values, present) if ok]
                row_ids = ids[present]
        patched = frame.set_values(row_ids, column, values)
        return self.run_scenario({source: patched})
