"""Query-plan rendering (the tutorial's ``nde.show_query_plan``).

Renders the operator DAG as an indented ASCII tree (leaves = sources,
root = terminal node, mirroring Figure 3's plan sketch) and exports to a
:mod:`networkx` digraph for programmatic analysis.
"""

from __future__ import annotations

import networkx as nx

from repro.pipelines.operators import Node


def show_query_plan(plan: Node) -> str:
    """Pretty-print the plan rooted at ``plan``.

    Shared subtrees (a node feeding several consumers) are printed once in
    full and referenced by id afterwards.
    """
    lines: list[str] = []
    printed: set[int] = set()

    def render(node: Node, depth: int) -> None:
        indent = "  " * depth
        marker = f"[{node.id}] "
        if node.id in printed:
            lines.append(f"{indent}{marker}{node.describe()} (shared, see above)")
            return
        printed.add(node.id)
        lines.append(f"{indent}{marker}{node.describe()}")
        for upstream in node.inputs:
            render(upstream, depth + 1)

    render(plan, 0)
    return "\n".join(lines)


def to_networkx(plan: Node) -> nx.DiGraph:
    """Export the plan as a digraph with edges from inputs to consumers.

    Node attributes: ``op`` (operator kind) and ``label`` (description).
    """
    graph = nx.DiGraph()
    for node in plan.walk():
        graph.add_node(node.id, op=node.op, label=node.describe())
        for upstream in node.inputs:
            graph.add_edge(upstream.id, node.id)
    return graph


def plan_stats(plan: Node) -> dict:
    """Simple structural statistics: operator counts, depth, source list."""
    graph = to_networkx(plan)
    counts: dict[str, int] = {}
    for node in plan.walk():
        counts[node.op] = counts.get(node.op, 0) + 1
    return {
        "n_operators": graph.number_of_nodes(),
        "depth": nx.dag_longest_path_length(graph) if graph.number_of_edges() else 0,
        "operator_counts": counts,
        "sources": [n.params["name"] for n in plan.walk() if n.op == "source"],
    }
