"""Schema inference and validation (TFX data-validation style, ref [64]).

``infer_schema`` learns per-column expectations from a reference frame
(type, null tolerance, numeric range, categorical domain);
``validate_frame`` checks a new frame against them and reports anomalies.
This is the "data validation for machine learning" screen the survey
covers alongside the pipeline inspections — cheap, model-free, and run on
every fresh batch before it enters the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import ValidationError
from repro.dataframe.frame import DataFrame

_MAX_DOMAIN = 50  # columns with more distinct values are not categorical


@dataclass
class ColumnSchema:
    """Learned expectations for one column."""

    name: str
    kind: str                       # "numeric" | "string" | "bool"
    max_null_fraction: float
    low: float | None = None        # numeric range (with slack applied)
    high: float | None = None
    domain: frozenset | None = None  # categorical domain


@dataclass
class Schema:
    """A set of column schemas plus the expected column list."""

    columns: dict[str, ColumnSchema] = field(default_factory=dict)

    def __contains__(self, name: str) -> bool:
        return name in self.columns


def infer_schema(frame: DataFrame, *, null_slack: float = 0.05,
                 range_slack: float = 0.1) -> Schema:
    """Learn a schema from a reference (assumed-good) frame.

    ``null_slack`` is added to each column's observed null fraction;
    ``range_slack`` widens numeric ranges by that fraction of their span.
    """
    schema = Schema()
    for name in frame.columns:
        col = frame[name]
        null_fraction = col.null_count() / max(len(frame), 1)
        if col.dtype.kind in ("f", "i"):
            values = col.cast(float).to_numpy()
            observed = values[~np.isnan(values)]
            span = float(observed.max() - observed.min()) if len(observed) \
                else 0.0
            slack = range_slack * span
            schema.columns[name] = ColumnSchema(
                name=name, kind="numeric",
                max_null_fraction=min(1.0, null_fraction + null_slack),
                low=float(observed.min()) - slack if len(observed) else None,
                high=float(observed.max()) + slack if len(observed) else None,
            )
        elif col.dtype.kind == "b":
            schema.columns[name] = ColumnSchema(
                name=name, kind="bool",
                max_null_fraction=min(1.0, null_fraction + null_slack))
        else:
            distinct = col.unique()
            domain = frozenset(distinct) if len(distinct) <= _MAX_DOMAIN \
                else None
            schema.columns[name] = ColumnSchema(
                name=name, kind="string",
                max_null_fraction=min(1.0, null_fraction + null_slack),
                domain=domain)
    return schema


@dataclass
class Anomaly:
    """One schema violation."""

    column: str
    kind: str      # missing_column / extra_column / type_mismatch /
                   # null_rate / out_of_range / unknown_category
    detail: str


def validate_frame(frame: DataFrame, schema: Schema) -> list[Anomaly]:
    """Check ``frame`` against ``schema``; returns all anomalies found."""
    anomalies: list[Anomaly] = []
    for name, expected in schema.columns.items():
        if name not in frame:
            anomalies.append(Anomaly(name, "missing_column",
                                     "column absent from frame"))
            continue
        col = frame[name]
        actual_kind = ("numeric" if col.dtype.kind in ("f", "i")
                       else "bool" if col.dtype.kind == "b" else "string")
        if actual_kind != expected.kind:
            anomalies.append(Anomaly(
                name, "type_mismatch",
                f"expected {expected.kind}, found {actual_kind}"))
            continue
        null_fraction = col.null_count() / max(len(frame), 1)
        if null_fraction > expected.max_null_fraction + 1e-12:
            anomalies.append(Anomaly(
                name, "null_rate",
                f"{null_fraction:.1%} null exceeds allowed "
                f"{expected.max_null_fraction:.1%}"))
        if expected.kind == "numeric" and expected.low is not None:
            values = col.cast(float).to_numpy()
            observed = values[~np.isnan(values)]
            below = int(np.sum(observed < expected.low))
            above = int(np.sum(observed > expected.high))
            if below or above:
                anomalies.append(Anomaly(
                    name, "out_of_range",
                    f"{below + above} values outside "
                    f"[{expected.low:.4g}, {expected.high:.4g}]"))
        if expected.domain is not None:
            unknown = [v for v in col.unique() if v not in expected.domain]
            if unknown:
                anomalies.append(Anomaly(
                    name, "unknown_category",
                    f"unseen categories: {sorted(map(str, unknown))[:5]}"))
    for name in frame.columns:
        if name not in schema:
            anomalies.append(Anomaly(name, "extra_column",
                                     "column not in schema"))
    return anomalies
