"""Logical pipeline operators and the fluent builder API.

A pipeline plan is built by chaining methods off :func:`source` nodes::

    train = source("train_df")
    jobs = source("jobdetail_df")
    plan = (train.join(jobs, on="job_id")
                 .filter(lambda r: r["sector"] == "healthcare")
                 .map_column("has_twitter", lambda r: r["twitter"] is not None)
                 .encode(feature_encoder, label="sentiment"))

Nodes are immutable descriptions; execution (and provenance tracking)
happens in :class:`repro.pipelines.engine.DataPipeline`.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable

from repro.core.exceptions import ValidationError
from repro.dataframe.expr import Expr

_node_counter = itertools.count()


class Node:
    """Base class for plan nodes.

    Attributes
    ----------
    op:
        Operator kind (``source``, ``join``, ``filter``, ...).
    inputs:
        Upstream nodes.
    params:
        Operator-specific parameters.
    """

    def __init__(self, op: str, inputs: list["Node"], **params):
        self.id = next(_node_counter)
        self.op = op
        self.inputs = inputs
        self.params = params

    # ------------------------------------------------------------------
    # Fluent builder methods (each returns a new downstream node)
    # ------------------------------------------------------------------
    def filter(self, predicate) -> "Node":
        """Keep rows satisfying ``predicate``: a column expression
        (``col("age") > 30`` — the vectorized fast path), a
        ``(column, value)`` equality pair, or a row-dict -> bool UDF
        (the retained row-wise fallback)."""
        return Node("filter", [self], predicate=predicate)

    def project(self, columns: list[str]) -> "Node":
        """Keep only the named columns."""
        return Node("project", [self], columns=list(columns))

    def drop(self, columns) -> "Node":
        """Drop the named columns."""
        if isinstance(columns, str):
            columns = [columns]
        return Node("drop", [self], columns=list(columns))

    def map_column(self, name: str, udf: Callable) -> "Node":
        """Add (or replace) a column computed by a row-dict UDF."""
        return Node("map", [self], name=name, udf=udf)

    def join(self, other: "Node", on, *, how: str = "inner",
             fuzzy: bool = False, fuzzy_distance: int = 0) -> "Node":
        """Relational join with another plan branch.

        ``fuzzy=True`` normalizes string keys; ``fuzzy_distance`` further
        tolerates that many typo edits (unique match only).
        """
        if not isinstance(other, Node):
            raise ValidationError("join requires another plan node")
        return Node("join", [self, other], on=on, how=how, fuzzy=fuzzy,
                    fuzzy_distance=fuzzy_distance)

    def concat(self, other: "Node") -> "Node":
        """Vertical union with another branch of identical schema."""
        if not isinstance(other, Node):
            raise ValidationError("concat requires another plan node")
        return Node("concat", [self, other])

    def encode(self, encoder, *, label: str) -> "Node":
        """Terminal node: run a :class:`repro.ml.ColumnTransformer`-style
        encoder over the frame and pull ``label`` out as the target."""
        return Node("encode", [self], encoder=encoder, label=label)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable operator description."""
        if self.op == "source":
            return f"Source({self.params['name']})"
        if self.op == "filter":
            predicate = self.params["predicate"]
            if isinstance(predicate, tuple):
                return f"Filter({predicate[0]} == {predicate[1]!r})"
            if isinstance(predicate, Expr):
                return f"Filter({predicate.describe()})"
            name = getattr(predicate, "__name__", "udf")
            return f"Filter({name})"
        if self.op == "project":
            return f"Project({', '.join(self.params['columns'])})"
        if self.op == "drop":
            return f"Drop({', '.join(self.params['columns'])})"
        if self.op == "map":
            return f"Map(+{self.params['name']})"
        if self.op == "join":
            kind = "FuzzyJoin" if self.params.get("fuzzy") else "Join"
            return f"{kind}(on={self.params['on']!r}, how={self.params['how']})"
        if self.op == "concat":
            return "Concat"
        if self.op == "encode":
            return f"Encode(label={self.params['label']!r})"
        return self.op

    def __repr__(self) -> str:
        return f"<Node {self.id}: {self.describe()}>"

    def walk(self):
        """Topological iteration (inputs before outputs, deduplicated)."""
        seen: set[int] = set()

        def visit(node: "Node"):
            if node.id in seen:
                return
            for upstream in node.inputs:
                yield from visit(upstream)
            seen.add(node.id)
            yield node

        yield from visit(self)


def source(name: str) -> Node:
    """Create a named source node; the executor binds it to an actual
    :class:`repro.dataframe.DataFrame` at run time."""
    if not name:
        raise ValidationError("source name must be non-empty")
    return Node("source", [], name=name)
