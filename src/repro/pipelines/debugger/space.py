"""Discrete configuration spaces and pairwise covering arrays.

A pipeline's debuggable choices are modelled as ordered
:class:`Factor`\\ s, each with a small named set of *levels* (stage
alternatives, hyperparameter settings, step orderings). A
*configuration* assigns every factor one level name; the cross product
of all levels is the exhaustive grid the debugger must *not* have to
evaluate.

:func:`pairwise_covering_array` generates the screening design: a
deterministic greedy (AETG-style) strength-2 covering array — every
pair of levels from every pair of factors appears in at least one
generated configuration. For the corpus spaces this is 10–20 variants
where the grid has 50–250, which is what makes configuration debugging
cheaper than a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations, product

import numpy as np

from repro.core.exceptions import ValidationError
from repro.runtime.cache import fingerprint

__all__ = ["Factor", "ConfigurationSpace", "pairwise_covering_array"]

#: Factor kinds drive the remediation verb: swap / re-range / reorder.
FACTOR_KINDS = ("stage", "hyperparameter", "order")


@dataclass
class Factor:
    """One discrete configuration dimension.

    Parameters
    ----------
    name:
        Unique factor name (``"model"``, ``"model__n_neighbors"``,
        ``"order"``).
    levels:
        Mapping of level name -> level value. Values are opaque to the
        search; they only need to be picklable (estimators, numbers,
        orderings) so variants can be built inside process workers.
    kind:
        ``"stage"`` | ``"hyperparameter"`` | ``"order"`` — what a
        remediation for this factor proposes.
    """

    name: str
    levels: dict = field(default_factory=dict)
    kind: str = "stage"

    def __post_init__(self):
        if not self.name:
            raise ValidationError("factor name must be non-empty")
        if not self.levels:
            raise ValidationError(f"factor {self.name!r} needs >= 1 level")
        if self.kind not in FACTOR_KINDS:
            raise ValidationError(
                f"factor kind must be one of {FACTOR_KINDS}, "
                f"got {self.kind!r}")
        self.levels = dict(self.levels)

    @property
    def level_names(self) -> list[str]:
        return list(self.levels)

    def __len__(self) -> int:
        return len(self.levels)


class ConfigurationSpace:
    """An ordered set of :class:`Factor`\\ s (duplicate names rejected).

    Configurations are plain ``{factor_name: level_name}`` dicts; the
    space canonicalizes them to hashable keys, enumerates the grid,
    and fingerprints itself for the runtime cache.
    """

    def __init__(self, factors: list[Factor]):
        if not factors:
            raise ValidationError("a configuration space needs >= 1 factor")
        names = [f.name for f in factors]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate factor names in {names}")
        self.factors = list(factors)
        self._by_name = {f.name: f for f in factors}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.factors)

    def __getitem__(self, name: str) -> Factor:
        if name not in self._by_name:
            raise ValidationError(
                f"no factor named {name!r}; have {list(self._by_name)}")
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def factor_names(self) -> list[str]:
        return [f.name for f in self.factors]

    @property
    def grid_size(self) -> int:
        size = 1
        for factor in self.factors:
            size *= len(factor)
        return size

    # ------------------------------------------------------------------
    def validate(self, config: dict) -> dict:
        """Check a configuration assigns every factor a known level."""
        missing = [f.name for f in self.factors if f.name not in config]
        if missing:
            raise ValidationError(f"configuration misses factors {missing}")
        unknown = [k for k in config if k not in self._by_name]
        if unknown:
            raise ValidationError(f"configuration names unknown factors "
                                  f"{unknown}")
        for factor in self.factors:
            if config[factor.name] not in factor.levels:
                raise ValidationError(
                    f"factor {factor.name!r} has no level "
                    f"{config[factor.name]!r}; have {factor.level_names}")
        return config

    def key(self, config: dict) -> tuple:
        """Canonical hashable identity (factor order of the space)."""
        return tuple((f.name, config[f.name]) for f in self.factors)

    def values(self, config: dict) -> dict:
        """Resolve level names to their values."""
        return {f.name: f.levels[config[f.name]] for f in self.factors}

    def enumerate(self):
        """Yield every configuration in deterministic grid order."""
        names = self.factor_names
        level_lists = [self._by_name[n].level_names for n in names]
        for combo in product(*level_lists):
            yield dict(zip(names, combo))

    def fingerprint(self) -> str:
        """Stable identity of the space (names, level names + values)."""
        parts = []
        for factor in self.factors:
            parts.append((factor.name, factor.kind,
                          tuple(factor.level_names),
                          tuple(factor.levels[n]
                                for n in factor.level_names)))
        return fingerprint("pipelines.debugger.space", tuple(parts))


def _all_pairs(space: ConfigurationSpace) -> set:
    pairs = set()
    for (i, a), (j, b) in combinations(enumerate(space.factors), 2):
        for la in a.level_names:
            for lb in b.level_names:
                pairs.add(((i, la), (j, lb)))
    return pairs


def _ordered_pair(i: int, li: str, j: int, lj: str) -> tuple:
    return ((i, li), (j, lj)) if i < j else ((j, lj), (i, li))


def pairwise_covering_array(space: ConfigurationSpace, *, seed: int = 0,
                            candidates_per_row: int = 12) -> list[dict]:
    """A strength-2 covering array over ``space`` (deterministic).

    Greedy AETG-style construction. Each row is the best of
    ``candidates_per_row`` candidates; every candidate is *seeded* with
    one still-uncovered pair (so a row always makes progress — pure
    greedy tie-breaking can otherwise starve corner pairs forever) and
    then filled factor-by-factor in a seeded random order, picking the
    level that covers the most uncovered pairs (ties broken by a seeded
    shuffle). Determinism comes entirely from the seeded generator, so
    every backend and every session screens the identical variant set.

    A single-factor space degenerates to one row per level.
    """
    factors = space.factors
    if len(factors) == 1:
        return [{factors[0].name: level}
                for level in factors[0].level_names]
    rng = np.random.default_rng(seed)
    uncovered = _all_pairs(space)
    rows: list[dict] = []
    while uncovered:
        seeds = sorted(uncovered)
        best_assign = None
        best_gain = -1
        for candidate in range(candidates_per_row):
            (i, li), (j, lj) = seeds[candidate % len(seeds)]
            assign: dict[int, str] = {i: li, j: lj}
            order = [int(k) for k in rng.permutation(len(factors))
                     if int(k) not in assign]
            for idx in order:
                factor = factors[idx]
                levels = factor.level_names
                shuffled = [levels[int(t)]
                            for t in rng.permutation(len(levels))]
                best_level, best_level_gain = None, -1
                for level in shuffled:
                    gain = sum(
                        1 for other, olevel in assign.items()
                        if _ordered_pair(idx, level, other, olevel)
                        in uncovered)
                    if gain > best_level_gain:
                        best_level, best_level_gain = level, gain
                assign[idx] = best_level
            covered = {pair for pair in uncovered
                       if assign[pair[0][0]] == pair[0][1]
                       and assign[pair[1][0]] == pair[1][1]}
            if len(covered) > best_gain:
                best_gain = len(covered)
                best_assign = assign
        rows.append({factors[i].name: level
                     for i, level in sorted(best_assign.items())})
        uncovered -= {pair for pair in uncovered
                      if best_assign[pair[0][0]] == pair[0][1]
                      and best_assign[pair[1][0]] == pair[1][1]}
    return rows
