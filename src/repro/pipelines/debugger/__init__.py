"""Pipeline-*configuration* debugging (BugDoc / Maro style).

The rest of :mod:`repro.pipelines` debugs *data* errors: wrong rows,
dirty cells, skewed joins. This subpackage debugs the *pipeline itself*
— the misconfigured stage, the degenerate hyperparameter, the two steps
wired in the wrong order — the error family of BugDoc ("Algorithms to
Debug Computational Processes") and Maro ("Automatically Debugging
AutoML Pipelines") from the paper's related work.

The model: a pipeline's mutable choices form a discrete
:class:`ConfigurationSpace` (one :class:`Factor` per stage alternative,
hyperparameter range, or step ordering). The
:class:`PipelineDebugger` then

1. *screens* the space with a strength-2 (pairwise) covering array —
   every pair of factor levels appears in at least one evaluated
   variant, at a fraction of the exhaustive grid;
2. *executes* variants as one batch per round on the shared
   :class:`~repro.runtime.Runtime` (fingerprint-cached via
   ``Runtime.map_cached``, so repeated sub-configurations are free and
   verdicts are bit-identical across serial/thread/process backends);
3. *isolates* minimal failure-inducing configuration sets with
   BugDoc-style adaptive group testing (delta debugging each failing
   variant against its nearest passing neighbour, candidates batched
   per round);
4. *proposes* Maro-style remediations — swap the stage, re-range the
   hyperparameter, reorder the steps — ranked by observed score.

:mod:`~repro.pipelines.debugger.corpus` ships ~15 seeded broken
pipelines (leakage, bad imputation order, wrong encoders, degenerate
hyperparameters, broken plans) used as the oracle test-bed and the
``bench_t17`` benchmark.
"""

from repro.pipelines.debugger.corpus import (
    CORPUS_SEED,
    CorpusEntry,
    load_corpus,
)
from repro.pipelines.debugger.debugger import (
    DebugReport,
    PipelineDebugger,
    Remediation,
    RootCause,
    Verdict,
)
from repro.pipelines.debugger.search import minimize_failure
from repro.pipelines.debugger.space import (
    ConfigurationSpace,
    Factor,
    pairwise_covering_array,
)
from repro.pipelines.debugger.variants import (
    FAILED_SCORE,
    PipelineVariants,
    evaluate_ml_variant,
)

__all__ = [
    "CORPUS_SEED",
    "ConfigurationSpace",
    "CorpusEntry",
    "DebugReport",
    "FAILED_SCORE",
    "Factor",
    "PipelineDebugger",
    "PipelineVariants",
    "Remediation",
    "RootCause",
    "Verdict",
    "evaluate_ml_variant",
    "load_corpus",
    "minimize_failure",
    "pairwise_covering_array",
]
