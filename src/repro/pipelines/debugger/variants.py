"""Declarative pipeline-variant builders and the batched evaluator.

:class:`PipelineVariants` turns "this pipeline, but with these choices
open" into a :class:`~repro.pipelines.debugger.space.ConfigurationSpace`
plus a ``build(config)`` that materializes one concrete
:class:`repro.ml.Pipeline` per configuration:

- ``step(name, alternatives)`` — a stage slot; a ``None`` alternative
  means *omit the step* (BugDoc's "is this stage even needed?");
- ``hyper(step, param, levels)`` — a hyperparameter factor named
  ``step__param``, applied only when the chosen alternative actually
  has that parameter;
- ``orderings(levels)`` — named permutations of the step sequence
  (the classic scale-before-impute family of bugs).

:func:`evaluate_ml_variant` is the matching evaluator: a **module-level
function** with the runtime's ``fn(shared, task)`` signature, so it
pickles for the process backend. Estimator levels are cloned before
every fit — levels are shared prototypes and must never accumulate
fitted state. Any exception or non-finite score maps to the
:data:`FAILED_SCORE` sentinel, which keeps crashes and silent NaNs in
the same verdict domain as low scores.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.ml import accuracy_score, clone
from repro.ml.compose import Pipeline
from repro.pipelines.debugger.space import ConfigurationSpace, Factor

__all__ = ["FAILED_SCORE", "PipelineVariants", "evaluate_ml_variant"]

#: Score assigned to variants that crash or score non-finite. Sits below
#: every legitimate metric used here (accuracy in [0, 1], negated errors
#: bounded by the corpus data), so "crashed" always reads as "failed".
FAILED_SCORE = -1.0


class PipelineVariants:
    """A pipeline template with open stage / hyperparameter / order slots."""

    def __init__(self):
        self._steps: list[tuple[str, dict]] = []
        self._hypers: list[tuple[str, str, dict]] = []
        self._orderings: dict | None = None

    # -- declaration -------------------------------------------------------
    def step(self, name: str, alternatives: dict) -> "PipelineVariants":
        """Declare a stage slot. ``alternatives`` maps level name ->
        estimator prototype (or ``None`` to omit the step)."""
        if any(name == existing for existing, _ in self._steps):
            raise ValidationError(f"step {name!r} declared twice")
        if "__" in name:
            raise ValidationError(
                f"step name {name!r} must not contain '__' "
                "(reserved for hyperparameter factors)")
        self._steps.append((name, dict(alternatives)))
        return self

    def hyper(self, step: str, param: str, levels: dict) -> "PipelineVariants":
        """Declare a hyperparameter factor ``step__param``. The level
        value is applied via ``set_params`` when the chosen alternative
        for ``step`` exposes ``param`` — and silently skipped otherwise,
        so one hyper factor can span heterogeneous alternatives."""
        if not any(step == existing for existing, _ in self._steps):
            raise ValidationError(
                f"hyper({step!r}, {param!r}): no such step; declare "
                "step() first")
        self._hypers.append((step, param, dict(levels)))
        return self

    def orderings(self, levels: dict) -> "PipelineVariants":
        """Declare an ``order`` factor. Each level is a sequence of step
        names — a permutation of every declared step."""
        expected = {name for name, _ in self._steps}
        for level, sequence in levels.items():
            if set(sequence) != expected or len(sequence) != len(expected):
                raise ValidationError(
                    f"ordering {level!r} must permute {sorted(expected)}, "
                    f"got {list(sequence)}")
        self._orderings = {level: tuple(seq) for level, seq in levels.items()}
        return self

    # -- materialization ---------------------------------------------------
    def space(self) -> ConfigurationSpace:
        """The configuration space spanned by the declared slots."""
        factors = [Factor(name, alternatives, kind="stage")
                   for name, alternatives in self._steps]
        factors += [Factor(f"{step}__{param}", levels, kind="hyperparameter")
                    for step, param, levels in self._hypers]
        if self._orderings is not None:
            factors.append(Factor("order", self._orderings, kind="order"))
        return ConfigurationSpace(factors)

    def build(self, config: dict) -> Pipeline:
        """One concrete :class:`~repro.ml.Pipeline` for ``config``.

        Estimators are cloned from their prototypes, so building (and
        fitting) a variant never mutates the declared levels.
        """
        space = self.space()
        space.validate(config)
        values = space.values(config)
        chosen: dict[str, object] = {}
        for name, _ in self._steps:
            prototype = values[name]
            if prototype is not None:
                chosen[name] = clone(prototype)
        for step, param, _ in self._hypers:
            value = values[f"{step}__{param}"]
            estimator = chosen.get(step)
            if estimator is not None and param in estimator.get_params():
                estimator.set_params(**{param: clone(value)})
        order = (values["order"] if self._orderings is not None
                 else [name for name, _ in self._steps])
        steps = [(name, chosen[name]) for name in order if name in chosen]
        if not steps:
            raise ValidationError(
                f"configuration {config} omits every step")
        return Pipeline(steps)


def evaluate_ml_variant(shared: dict, config: dict) -> float:
    """Fit-and-score one configuration (runtime ``fn(shared, task)``).

    ``shared`` needs ``variants`` (:class:`PipelineVariants`),
    ``X_train``/``y_train``/``X_valid``/``y_valid`` arrays, and an
    optional ``metric(y_true, y_pred)`` (default accuracy). Crashes and
    non-finite scores collapse to :data:`FAILED_SCORE`.
    """
    metric = shared.get("metric") or accuracy_score
    try:
        model = shared["variants"].build(config)
        model.fit(shared["X_train"], shared["y_train"])
        score = float(metric(shared["y_valid"],
                             model.predict(shared["X_valid"])))
    except Exception:
        return FAILED_SCORE
    if not np.isfinite(score):
        return FAILED_SCORE
    return score
