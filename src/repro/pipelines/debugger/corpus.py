"""A seeded corpus of 16 broken pipeline configurations.

Each :class:`CorpusEntry` is one misconfigured-pipeline story drawn
from the BugDoc/Maro error families — leakage, wrong encoders, bad
step ordering, degenerate hyperparameters, broken relational plans —
packaged as a configuration space, a picklable evaluator + shared
context, a pass/fail threshold, and the ground-truth *culprits*.

A culprit is the full failure-inducing assignment (factor -> level).
The debugger's minimized root causes are judged against it with subset
semantics: every reported cause must be a non-empty subset of some
culprit (for an interaction bug like "kNN *and* no scaler", isolating
either side against the nearest passing neighbour is a correct
BugDoc answer; blaming an innocent factor is not).

Everything here is deterministic (:data:`CORPUS_SEED`) and
module-level (the process backend pickles evaluators by reference),
so corpus verdicts are bit-identical across runtime backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataframe import DataFrame
from repro.datasets import make_blobs
from repro.ml import (
    ColumnTransformer,
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LinearSVC,
    LogisticRegression,
    MinMaxScaler,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
    accuracy_score,
    clone,
)
from repro.ml.preprocessing import FunctionTransformer
from repro.pipelines.debugger.debugger import PipelineDebugger
from repro.pipelines.debugger.space import ConfigurationSpace, Factor
from repro.pipelines.debugger.variants import (
    FAILED_SCORE,
    PipelineVariants,
    evaluate_ml_variant,
)
from repro.pipelines.engine import DataPipeline
from repro.pipelines.operators import source

__all__ = ["CORPUS_SEED", "CorpusEntry", "load_corpus"]

#: Root seed for every dataset and covering array in the corpus.
CORPUS_SEED = 1729

_N_TRAIN = 90
_N_VALID = 60


@dataclass
class CorpusEntry:
    """One broken pipeline: space + evaluator + ground truth."""

    name: str
    description: str
    bug_kind: str              # leakage | encoder | order | hyperparameter |
    #                            plan | model | scaling | imputation
    space: ConfigurationSpace
    evaluator: object          # module-level fn(shared, config) -> float
    shared: dict
    threshold: float
    culprits: list = field(default_factory=list)  # full failing assignments

    def debugger(self, *, runtime=None, observer=None) -> PipelineDebugger:
        """A ready-to-run debugger for this entry."""
        return PipelineDebugger(
            self.space, self.evaluator, shared=self.shared,
            threshold=self.threshold, runtime=runtime, observer=observer,
            seed=CORPUS_SEED, name=f"corpus.{self.name}")

    def cause_is_valid(self, assignment: dict) -> bool:
        """True when ``assignment`` is a non-empty subset of a culprit."""
        items = set(assignment.items())
        return bool(items) and any(
            items <= set(culprit.items()) for culprit in self.culprits)


# --- deterministic datasets ------------------------------------------------

def _split(X, y):
    return {"X_train": X[:_N_TRAIN], "y_train": y[:_N_TRAIN],
            "X_valid": X[_N_TRAIN:_N_TRAIN + _N_VALID],
            "y_valid": y[_N_TRAIN:_N_TRAIN + _N_VALID]}


def _blob_data(seed, *, n_features=4, spread=4.0, std=1.0):
    X, y = make_blobs(_N_TRAIN + _N_VALID, n_features=n_features, centers=2,
                      cluster_std=std, center_spread=spread, seed=seed)
    return _split(X, y)


def _band_data(seed):
    """A two-threshold band: y = (|x0| < 1) on x0 ~ U(-3, 3). One split
    can never beat the ~2/3 majority rate; two splits on x0 solve it
    exactly — the canonical depth-1-versus-depth-2 tree problem (and,
    unlike XOR, one a *greedy* axis-aligned tree actually solves at
    depth >= 2)."""
    rng = np.random.default_rng(seed)
    n = _N_TRAIN + _N_VALID
    x0 = rng.uniform(-3.0, 3.0, n)
    y = (np.abs(x0) < 1.0).astype(int)
    X = np.column_stack([x0, rng.normal(0, 1.0, n)])
    return _split(X, y)


def _ring_data(seed):
    """Radial classes: inner disk vs outer ring. No linear boundary does
    better than chance; neighbourhoods and axis-aligned boxes both work."""
    rng = np.random.default_rng(seed)
    n = _N_TRAIN + _N_VALID
    X = np.column_stack([rng.normal(0, 2.0, n), rng.normal(0, 2.0, n)])
    radius = np.hypot(X[:, 0], X[:, 1])
    y = (radius > np.median(radius)).astype(int)
    return _split(X, y)


def _log_scale_fn(X):
    # np.log of a negative is a silent NaN, not an exception — exactly
    # the failure mode the order bug is about.
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.log(X)


# --- generic plan-entry helpers --------------------------------------------

def _resolve_model(shared: dict, config: dict):
    """Clone the chosen model prototype and apply ``model__*`` hypers."""
    model = clone(shared["models"][config["model"]])
    for factor, level in config.items():
        if not factor.startswith("model__"):
            continue
        param = factor[len("model__"):]
        value = shared["hypers"][factor][level]
        if param in model.get_params():
            model.set_params(**{param: value})
    return model


def _scaler_for(config: dict):
    return {"standard": StandardScaler(),
            "minmax": MinMaxScaler()}[config["scale"]]


def _score_plan(plan, sources, shared, config) -> float:
    """Run a relational plan, fit the configured model, score on the
    held-out frame encoded with the *training* encoder (never filtered
    or joined away — that is the point of several corpus bugs)."""
    try:
        result = DataPipeline(plan).run(sources)
        model = _resolve_model(shared, config)
        model.fit(result.X, result.y)
        X_valid = result.encode_like_training(
            DataFrame(dict(shared["valid_columns"])))
        score = float(accuracy_score(np.asarray(shared["y_valid"]),
                                     model.predict(X_valid)))
    except Exception:
        return FAILED_SCORE
    return score if np.isfinite(score) else FAILED_SCORE


def _keep_every_row(row) -> bool:
    return True


def _f0_above_two(row) -> bool:
    return row["f0"] is not None and row["f0"] > 2.0


# --- plan-entry evaluators (module-level: the process backend pickles
# --- them by reference) ----------------------------------------------------

def evaluate_join_entry(shared: dict, config: dict) -> float:
    train = DataFrame({"key": list(shared["train_keys"]),
                       "f0": np.asarray(shared["train_f0"]),
                       "label": np.asarray(shared["train_labels"])})
    lookup = DataFrame({"key": list(shared["lookup_keys"]),
                        "g0": np.asarray(shared["lookup_g0"]),
                        "g1": np.asarray(shared["lookup_g1"])})
    fuzzy_distance = {"exact": 0, "fuzzy-1": 1}[config["join"]]
    encoder = ColumnTransformer([
        ("num", _scaler_for(config), ["f0", "g0", "g1"])])
    plan = (source("train")
            .join(source("lookup"), on="key", fuzzy=True,
                  fuzzy_distance=fuzzy_distance)
            .encode(encoder, label="label"))
    return _score_plan(plan, {"train": train, "lookup": lookup},
                       shared, config)


def evaluate_filter_entry(shared: dict, config: dict) -> float:
    train = DataFrame({name: np.asarray(values)
                       for name, values in shared["train_columns"]})
    predicate = {"all": _keep_every_row,
                 "tight": _f0_above_two}[config["filter"]]
    encoder = ColumnTransformer([
        ("num", _scaler_for(config), ["f0", "n0", "n1"])])
    plan = (source("train").filter(predicate)
            .encode(encoder, label="label"))
    return _score_plan(plan, {"train": train}, shared, config)


def evaluate_project_entry(shared: dict, config: dict) -> float:
    train = DataFrame({name: np.asarray(values)
                       for name, values in shared["train_columns"]})
    columns = {"signal": ["f0", "f1", "n0", "n1", "label"],
               "noise-only": ["n0", "n1", "label"]}[config["project"]]
    encoder = ColumnTransformer([
        ("num", _scaler_for(config),
         [c for c in columns if c != "label"])])
    plan = (source("train").project(columns)
            .encode(encoder, label="label"))
    return _score_plan(plan, {"train": train}, shared, config)


# --- entry builders --------------------------------------------------------

def _ml_entry(name, description, bug_kind, variants, data, culprits, *,
              threshold=0.7, extra_shared=None) -> CorpusEntry:
    shared = {"variants": variants, **data}
    if extra_shared:
        shared.update(extra_shared)
    return CorpusEntry(
        name=name, description=description, bug_kind=bug_kind,
        space=variants.space(), evaluator=evaluate_ml_variant,
        shared=shared, threshold=threshold, culprits=culprits)


def _knn_all_neighbors() -> CorpusEntry:
    variants = (PipelineVariants()
                .step("scale", {"standard": StandardScaler(),
                                "minmax": MinMaxScaler()})
                .step("model", {"knn": KNeighborsClassifier(),
                                "logistic": LogisticRegression(),
                                "tree": DecisionTreeClassifier()})
                .hyper("model", "n_neighbors",
                       {"k-3": 3, "k-7": 7, "k-all": _N_TRAIN})
                .hyper("model", "max_depth", {"d-4": 4, "d-8": 8})
                .hyper("model", "max_iter", {"i-60": 60, "i-200": 200}))
    return _ml_entry(
        "knn-all-neighbors",
        "n_neighbors == n_train turns kNN into a majority-class oracle",
        "hyperparameter", variants, _blob_data(CORPUS_SEED + 1),
        culprits=[{"model": "knn", "model__n_neighbors": "k-all"}])


def _stumps_on_band() -> CorpusEntry:
    variants = (PipelineVariants()
                .step("scale", {"standard": StandardScaler(),
                                "minmax": MinMaxScaler(), "none": None})
                .step("model", {"tree": DecisionTreeClassifier(),
                                "knn": KNeighborsClassifier()})
                .hyper("model", "max_depth",
                       {"d-1": 1, "d-4": 4, "d-8": 8})
                .hyper("model", "n_neighbors", {"k-3": 3, "k-5": 5})
                .hyper("model", "min_samples_split", {"s-2": 2, "s-6": 6}))
    return _ml_entry(
        "stumps-on-band",
        "max_depth=1 stumps cannot represent a two-threshold band",
        "hyperparameter", variants, _band_data(CORPUS_SEED + 2),
        threshold=0.8,
        culprits=[{"model": "tree", "model__max_depth": "d-1"}])


def _linear_on_rings() -> CorpusEntry:
    variants = (PipelineVariants()
                .step("scale", {"standard": StandardScaler(),
                                "minmax": MinMaxScaler(), "none": None})
                .step("model", {"logistic": LogisticRegression(),
                                "svc": LinearSVC(),
                                "knn": KNeighborsClassifier(),
                                "tree": DecisionTreeClassifier(max_depth=8)})
                .hyper("model", "n_neighbors", {"k-3": 3, "k-7": 7})
                .hyper("model", "max_iter", {"i-60": 60, "i-200": 200})
                .hyper("model", "C", {"c-1": 1.0, "c-10": 10.0}))
    return _ml_entry(
        "linear-on-rings",
        "linear decision boundaries sit at chance on radial classes",
        "model", variants, _ring_data(CORPUS_SEED + 3),
        culprits=[{"model": "logistic"}, {"model": "svc"}])


def _log_after_scale() -> CorpusEntry:
    data = _blob_data(CORPUS_SEED + 4, spread=3.0)
    for key in ("X_train", "X_valid"):
        data[key] = np.exp(data[key] / 2.0) + 0.5  # strictly positive
    variants = (PipelineVariants()
                .step("log", {"on": FunctionTransformer(_log_scale_fn,
                                                        rowwise=True)})
                .step("scale", {"standard": StandardScaler(),
                                "minmax": MinMaxScaler()})
                .step("model", {"logistic": LogisticRegression(),
                                "knn": KNeighborsClassifier(),
                                "tree": DecisionTreeClassifier()})
                .hyper("model", "n_neighbors", {"k-3": 3, "k-5": 5, "k-9": 9})
                .hyper("model", "max_iter", {"i-60": 60, "i-200": 200})
                .orderings({"log-first": ("log", "scale", "model"),
                            "scale-first": ("scale", "log", "model")}))
    return _ml_entry(
        "log-after-scale",
        "standardizing before the log transform feeds log() negatives — "
        "silent NaNs",
        "order", variants, data,
        culprits=[{"order": "scale-first"}])


def _onehot_on_continuous() -> CorpusEntry:
    variants = (PipelineVariants()
                .step("encode", {"onehot": OneHotEncoder(),
                                 "standard": StandardScaler(),
                                 "minmax": MinMaxScaler()})
                .step("model", {"logistic": LogisticRegression(),
                                "knn": KNeighborsClassifier(),
                                "tree": DecisionTreeClassifier()})
                .hyper("model", "n_neighbors", {"k-3": 3, "k-5": 5, "k-9": 9})
                .hyper("model", "max_iter", {"i-60": 60, "i-200": 200}))
    return _ml_entry(
        "onehot-on-continuous",
        "one-hot encoding continuous floats makes every validation row an "
        "all-zero unseen category",
        "encoder", variants, _blob_data(CORPUS_SEED + 5),
        culprits=[{"encode": "onehot"}])


def _dropped_imputer() -> CorpusEntry:
    data = _blob_data(CORPUS_SEED + 6)
    rng = np.random.default_rng(CORPUS_SEED + 6)
    for key in ("X_train", "X_valid"):
        X = data[key].copy()
        mask = rng.random(X.shape) < 0.15
        X[mask] = np.nan
        data[key] = X
    variants = (PipelineVariants()
                .step("impute", {"mean": SimpleImputer(strategy="mean"),
                                 "median": SimpleImputer(strategy="median"),
                                 "none": None})
                .step("scale", {"standard": StandardScaler(),
                                "minmax": MinMaxScaler()})
                .step("model", {"logistic": LogisticRegression(),
                                "knn": KNeighborsClassifier(),
                                "tree": DecisionTreeClassifier()})
                .hyper("model", "n_neighbors", {"k-3": 3, "k-7": 7})
                .hyper("model", "max_iter", {"i-60": 60, "i-200": 200}))
    return _ml_entry(
        "dropped-imputer",
        "removing the imputer lets NaNs reach the estimator",
        "imputation", variants, data,
        culprits=[{"impute": "none"}])


def _drop_leak_column(X):
    return X[:, 1:]


def _leaky_feature() -> CorpusEntry:
    data = _blob_data(CORPUS_SEED + 7, n_features=3, spread=2.0)
    rng = np.random.default_rng(CORPUS_SEED + 7)
    signs_train = np.where(data["y_train"] > 0, 1.0, -1.0)
    leak_train = signs_train * 10.0 + rng.normal(0, 0.5, _N_TRAIN)
    leak_valid = rng.uniform(-25.0, 25.0, _N_VALID)  # noise at serve time
    data["X_train"] = np.column_stack([leak_train, data["X_train"]])
    data["X_valid"] = np.column_stack([leak_valid, data["X_valid"]])
    variants = (PipelineVariants()
                .step("features",
                      {"keep-all": None,
                       "drop-leak": FunctionTransformer(_drop_leak_column,
                                                        rowwise=True)})
                .step("scale", {"standard": StandardScaler(),
                                "minmax": MinMaxScaler()})
                .step("model", {"logistic": LogisticRegression(),
                                "svc": LinearSVC(),
                                "tree": DecisionTreeClassifier(),
                                "gnb": GaussianNB()})
                .hyper("model", "max_iter", {"i-60": 60, "i-200": 200})
                .hyper("model", "max_depth", {"d-4": 4, "d-8": 8}))
    return _ml_entry(
        "leaky-feature",
        "a train-only label proxy dominates fitting and is noise at "
        "validation time",
        "leakage", variants, data,
        culprits=[{"features": "keep-all"}])


def _unscaled_knn() -> CorpusEntry:
    data = _blob_data(CORPUS_SEED + 8, n_features=3, spread=6.0)
    rng = np.random.default_rng(CORPUS_SEED + 8)
    loud = rng.normal(0.0, 800.0, (_N_TRAIN + _N_VALID, 1))  # scale bully
    data["X_train"] = np.hstack([data["X_train"], loud[:_N_TRAIN]])
    data["X_valid"] = np.hstack([data["X_valid"],
                                 loud[_N_TRAIN:_N_TRAIN + _N_VALID]])
    variants = (PipelineVariants()
                .step("scale", {"standard": StandardScaler(),
                                "minmax": MinMaxScaler(), "none": None})
                .step("model", {"knn": KNeighborsClassifier(),
                                "logistic": LogisticRegression(),
                                "tree": DecisionTreeClassifier()})
                .hyper("model", "n_neighbors", {"k-3": 3, "k-5": 5, "k-9": 9})
                .hyper("model", "max_iter", {"i-200": 200, "i-400": 400}))
    return _ml_entry(
        "unscaled-knn",
        "without scaling, one loud noise feature owns the kNN metric",
        "scaling", variants, data,
        culprits=[{"scale": "none", "model": "knn"}])


def _nominal_codes() -> CorpusEntry:
    rng = np.random.default_rng(CORPUS_SEED + 9)
    n = _N_TRAIN + _N_VALID
    code0 = rng.integers(0, 6, n).astype(float)
    code1 = rng.integers(0, 6, n).astype(float)
    noise = rng.normal(0.0, 1.0, n)
    y = (code0 % 2 == 0).astype(int)  # parity: meaningless as an ordinal
    data = _split(np.column_stack([code0, code1, noise]), y)
    variants = (PipelineVariants()
                .step("encode",
                      {"onehot": OneHotEncoder(),
                       "onehot-strict": OneHotEncoder(
                           handle_unknown="error"),
                       "passthrough": None})
                .step("model", {"logistic": LogisticRegression(),
                                "svc": LinearSVC(),
                                "tree": DecisionTreeClassifier(max_depth=8)})
                .hyper("model", "max_iter",
                       {"i-60": 60, "i-120": 120, "i-200": 200})
                .hyper("model", "C", {"c-1": 1.0, "c-10": 10.0})
                .hyper("model", "tol", {"t-4": 1e-4, "t-3": 1e-3}))
    return _ml_entry(
        "nominal-codes",
        "nominal category codes treated as ordinal numbers (and a strict "
        "encoder that crashes on unseen validation values)",
        "encoder", variants, data,
        culprits=[{"encode": "onehot-strict"},
                  {"encode": "passthrough", "model": "logistic"},
                  {"encode": "passthrough", "model": "svc"}])


def _diagonal_classes_gnb() -> CorpusEntry:
    rng = np.random.default_rng(CORPUS_SEED + 10)
    n = _N_TRAIN + _N_VALID
    y = rng.integers(0, 2, n)
    u = rng.normal(0.0, 2.0, n)
    eps = rng.normal(0.0, 0.35, n)
    x0 = u
    x1 = np.where(y == 0, u, -u) + eps  # class = correlation sign
    noise = rng.normal(0.0, 1.0, n)
    data = _split(np.column_stack([x0, x1, noise]), y)
    variants = (PipelineVariants()
                .step("scale", {"standard": StandardScaler(),
                                "minmax": MinMaxScaler(), "none": None})
                .step("model", {"gnb": GaussianNB(),
                                "knn": KNeighborsClassifier(),
                                "tree": DecisionTreeClassifier(max_depth=8)})
                .hyper("model", "n_neighbors", {"k-3": 3, "k-5": 5, "k-9": 9})
                .hyper("model", "var_smoothing",
                       {"v-1e-9": 1e-9, "v-1e-6": 1e-6}))
    return _ml_entry(
        "diagonal-classes-gnb",
        "classes that differ only in feature correlation are invisible to "
        "naive Bayes' independence assumption",
        "model", variants, data,
        culprits=[{"model": "gnb"}])


def _over_regularized_linear() -> CorpusEntry:
    variants = (PipelineVariants()
                .step("scale", {"standard": StandardScaler(),
                                "minmax": MinMaxScaler(), "none": None})
                .step("model", {"logistic": LogisticRegression()})
                .hyper("model", "C",
                       {"c-tiny": 1e-5, "c-1": 1.0, "c-100": 100.0})
                .hyper("model", "max_iter", {"i-100": 100, "i-300": 300})
                .hyper("model", "tol", {"t-4": 1e-4, "t-2": 1e-2})
                .hyper("model", "warm_start", {"cold": False, "warm": True}))
    return _ml_entry(
        "over-regularized-linear",
        "C ~ 1e-5 regularizes every weight to zero — the model predicts "
        "the prior",
        "hyperparameter", variants, _blob_data(CORPUS_SEED + 11),
        culprits=[{"model__C": "c-tiny"}])


def _label_column_leak() -> CorpusEntry:
    data = _blob_data(CORPUS_SEED + 12, n_features=3)
    rng = np.random.default_rng(CORPUS_SEED + 12)
    label_train = data["y_train"].astype(float)
    # unknown at serve time: the column gets backfilled with guesses
    # that are pure coin flips relative to the real label
    label_valid = rng.integers(0, 2, _N_VALID).astype(float)
    data["X_train"] = np.column_stack([label_train, data["X_train"]])
    data["X_valid"] = np.column_stack([label_valid, data["X_valid"]])
    variants = (PipelineVariants()
                .step("features",
                      {"with-label": None,
                       "drop-label": FunctionTransformer(_drop_leak_column,
                                                         rowwise=True)})
                .step("scale", {"standard": StandardScaler(),
                                "minmax": MinMaxScaler()})
                .step("model", {"logistic": LogisticRegression(),
                                "tree": DecisionTreeClassifier(),
                                "gnb": GaussianNB()})
                .hyper("model", "max_iter", {"i-60": 60, "i-200": 200})
                .hyper("model", "max_depth", {"d-4": 4, "d-8": 8})
                .hyper("model", "var_smoothing",
                       {"v-1e-9": 1e-9, "v-1e-6": 1e-6}))
    return _ml_entry(
        "label-column-leak",
        "the label itself rode along as a feature; at validation time the "
        "column is a constant placeholder",
        "leakage", variants, data,
        culprits=[{"features": "with-label"}])


def _join_typo_keys() -> CorpusEntry:
    rng = np.random.default_rng(CORPUS_SEED + 13)
    n = _N_TRAIN
    labels = np.arange(n) % 2
    true_keys = [f"row{i:03d}" for i in range(n)]
    train_keys = [  # class-1 keys carry a one-character typo
        key if label == 0 else "rpw" + key[3:]
        for key, label in zip(true_keys, labels)]
    g0 = np.where(labels == 1, 2.5, -2.5) + rng.normal(0, 0.8, n)
    g1 = np.where(labels == 1, -2.0, 2.0) + rng.normal(0, 0.8, n)
    valid_labels = rng.integers(0, 2, _N_VALID)
    valid_g0 = np.where(valid_labels == 1, 2.5, -2.5) \
        + rng.normal(0, 0.8, _N_VALID)
    valid_g1 = np.where(valid_labels == 1, -2.0, 2.0) \
        + rng.normal(0, 0.8, _N_VALID)
    shared = {
        "train_keys": train_keys,
        "train_f0": rng.normal(0, 1, n),
        "train_labels": labels,
        "lookup_keys": true_keys,
        "lookup_g0": g0, "lookup_g1": g1,
        "valid_columns": [("f0", rng.normal(0, 1, _N_VALID)),
                          ("g0", valid_g0), ("g1", valid_g1)],
        "y_valid": valid_labels,
        "models": {"logistic": LogisticRegression(),
                   "knn": KNeighborsClassifier(),
                   "tree": DecisionTreeClassifier()},
        "hypers": {"model__n_neighbors": {"k-3": 3, "k-5": 5, "k-9": 9},
                   "model__max_iter": {"i-60": 60, "i-200": 200}},
    }
    space = ConfigurationSpace([
        Factor("join", {"exact": "exact", "fuzzy-1": "fuzzy-1"},
               kind="stage"),
        Factor("scale", {"standard": "standard", "minmax": "minmax"},
               kind="stage"),
        Factor("model", dict(shared["models"]), kind="stage"),
        Factor("model__n_neighbors", shared["hypers"]["model__n_neighbors"],
               kind="hyperparameter"),
        Factor("model__max_iter", shared["hypers"]["model__max_iter"],
               kind="hyperparameter"),
    ])
    return CorpusEntry(
        name="join-typo-keys",
        description="an exact join silently drops every typo'd class-1 key; "
                    "training data collapses to one class",
        bug_kind="plan", space=space, evaluator=evaluate_join_entry,
        shared=shared, threshold=0.7,
        culprits=[{"join": "exact"}])


def _filter_starves_class() -> CorpusEntry:
    rng = np.random.default_rng(CORPUS_SEED + 14)
    n = _N_TRAIN + _N_VALID
    y = rng.integers(0, 2, n)
    f0 = np.where(y == 1, 3.0, 0.0) + rng.normal(0, 1.0, n)
    n0 = rng.normal(0, 1.0, n)
    n1 = rng.normal(0, 1.0, n)
    shared = {
        "train_columns": [("f0", f0[:_N_TRAIN]), ("n0", n0[:_N_TRAIN]),
                          ("n1", n1[:_N_TRAIN]), ("label", y[:_N_TRAIN])],
        "valid_columns": [("f0", f0[_N_TRAIN:]), ("n0", n0[_N_TRAIN:]),
                          ("n1", n1[_N_TRAIN:])],
        "y_valid": y[_N_TRAIN:],
        "models": {"logistic": LogisticRegression(),
                   "knn": KNeighborsClassifier(),
                   "tree": DecisionTreeClassifier()},
        "hypers": {"model__n_neighbors": {"k-3": 3, "k-5": 5, "k-9": 9},
                   "model__max_iter": {"i-60": 60, "i-200": 200}},
    }
    space = ConfigurationSpace([
        Factor("filter", {"all": "all", "tight": "tight"}, kind="stage"),
        Factor("scale", {"standard": "standard", "minmax": "minmax"},
               kind="stage"),
        Factor("model", dict(shared["models"]), kind="stage"),
        Factor("model__n_neighbors", shared["hypers"]["model__n_neighbors"],
               kind="hyperparameter"),
        Factor("model__max_iter", shared["hypers"]["model__max_iter"],
               kind="hyperparameter"),
    ])
    return CorpusEntry(
        name="filter-starves-class",
        description="an over-tight row filter keeps almost no class-0 "
                    "training rows",
        bug_kind="plan", space=space, evaluator=evaluate_filter_entry,
        shared=shared, threshold=0.72,
        culprits=[{"filter": "tight"}])


def _project_typo_columns() -> CorpusEntry:
    rng = np.random.default_rng(CORPUS_SEED + 15)
    n = _N_TRAIN + _N_VALID
    y = rng.integers(0, 2, n)
    f0 = np.where(y == 1, 2.2, -2.2) + rng.normal(0, 1.0, n)
    f1 = np.where(y == 1, -1.8, 1.8) + rng.normal(0, 1.0, n)
    n0 = rng.normal(0, 1.0, n)
    n1 = rng.normal(0, 1.0, n)
    shared = {
        "train_columns": [("f0", f0[:_N_TRAIN]), ("f1", f1[:_N_TRAIN]),
                          ("n0", n0[:_N_TRAIN]), ("n1", n1[:_N_TRAIN]),
                          ("label", y[:_N_TRAIN])],
        "valid_columns": [("f0", f0[_N_TRAIN:]), ("f1", f1[_N_TRAIN:]),
                          ("n0", n0[_N_TRAIN:]), ("n1", n1[_N_TRAIN:])],
        "y_valid": y[_N_TRAIN:],
        "models": {"logistic": LogisticRegression(),
                   "knn": KNeighborsClassifier(),
                   "tree": DecisionTreeClassifier()},
        "hypers": {"model__n_neighbors": {"k-3": 3, "k-5": 5, "k-9": 9},
                   "model__max_iter": {"i-60": 60, "i-200": 200}},
    }
    space = ConfigurationSpace([
        Factor("project", {"signal": "signal", "noise-only": "noise-only"},
               kind="stage"),
        Factor("scale", {"standard": "standard", "minmax": "minmax"},
               kind="stage"),
        Factor("model", dict(shared["models"]), kind="stage"),
        Factor("model__n_neighbors", shared["hypers"]["model__n_neighbors"],
               kind="hyperparameter"),
        Factor("model__max_iter", shared["hypers"]["model__max_iter"],
               kind="hyperparameter"),
    ])
    return CorpusEntry(
        name="project-typo-columns",
        description="a typo'd projection keeps only the noise columns",
        bug_kind="plan", space=space, evaluator=evaluate_project_entry,
        shared=shared, threshold=0.7,
        culprits=[{"project": "noise-only"}])


def _sentinel_fill_impute() -> CorpusEntry:
    data = _blob_data(CORPUS_SEED + 16, n_features=2, spread=5.0)
    rng = np.random.default_rng(CORPUS_SEED + 16)
    noise = rng.normal(0, 1.0, (_N_TRAIN + _N_VALID, 1))
    data["X_train"] = np.hstack([data["X_train"], noise[:_N_TRAIN]])
    data["X_valid"] = np.hstack([data["X_valid"],
                                 noise[_N_TRAIN:_N_TRAIN + _N_VALID]])
    for key in ("X_train", "X_valid"):
        X = data[key].copy()
        # each row loses exactly one of its two informative features
        # with probability 0.7 — plenty of signal left for honest fills
        hit = rng.random(len(X)) < 0.7
        which = rng.integers(0, 2, len(X))
        X[hit, which[hit]] = np.nan
        data[key] = X
    variants = (PipelineVariants()
                .step("impute",
                      {"mean": SimpleImputer(strategy="mean"),
                       "median": SimpleImputer(strategy="median"),
                       "sentinel": SimpleImputer(strategy="constant",
                                                 fill_value=-999.0)})
                .step("scale", {"standard": StandardScaler(),
                                "minmax": MinMaxScaler()})
                .step("model", {"logistic": LogisticRegression(),
                                "svc": LinearSVC()})
                .hyper("model", "C", {"c-1": 1.0, "c-10": 10.0})
                .hyper("model", "max_iter", {"i-100": 100, "i-300": 300}))
    return _ml_entry(
        "sentinel-fill-impute",
        "a -999 sentinel fill owns the column statistics, so scaling "
        "crushes the honest values into a hair's width of range",
        "imputation", variants, data,
        culprits=[{"impute": "sentinel"}])


_BUILDERS = [
    _knn_all_neighbors,
    _stumps_on_band,
    _linear_on_rings,
    _log_after_scale,
    _onehot_on_continuous,
    _dropped_imputer,
    _leaky_feature,
    _unscaled_knn,
    _nominal_codes,
    _diagonal_classes_gnb,
    _over_regularized_linear,
    _label_column_leak,
    _join_typo_keys,
    _filter_starves_class,
    _project_typo_columns,
    _sentinel_fill_impute,
]


def load_corpus() -> list[CorpusEntry]:
    """Build every corpus entry (deterministic, ~16 broken pipelines)."""
    return [build() for build in _BUILDERS]
