"""The :class:`PipelineDebugger`: screen, execute, isolate, propose.

One ``run()`` performs the whole BugDoc/Maro loop over a
:class:`~repro.pipelines.debugger.space.ConfigurationSpace`:

1. **screen** — evaluate a strength-2 covering array (every pair of
   factor levels appears at least once) instead of the exhaustive grid;
2. **execute** — each round is one ``Runtime.map_cached`` batch, so
   variants run in parallel, repeats are memoized, and scores are
   bit-identical across serial/thread/process backends;
3. **isolate** — delta-debug every failing screen configuration against
   its nearest passing neighbour down to a minimal failure-inducing
   assignment, then aggregate identical assignments into ranked
   :class:`RootCause`\\ s;
4. **propose** — per root-cause factor, a :class:`Remediation` naming
   the action (swap stage / re-range hyperparameter / reorder steps)
   and the best *observed passing* alternative level.

Counters (``debugger.rounds``, ``debugger.configs_evaluated``,
``debugger.configs_pruned``, ``debugger.cache_hits``) and runlog events
(``debugger.round``, ``debugger.report``) flow through the standard
:mod:`repro.observe` observer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import ValidationError
from repro.observe.observer import resolve_observer
from repro.runtime.cache import fingerprint
from repro.runtime.runtime import Runtime, resolve_runtime
from repro.pipelines.debugger.search import minimize_failure
from repro.pipelines.debugger.space import (
    ConfigurationSpace,
    pairwise_covering_array,
)

__all__ = ["Verdict", "Remediation", "RootCause", "DebugReport",
           "PipelineDebugger"]

#: Factor kind -> the remediation verb (Maro's action vocabulary).
_ACTIONS = {"stage": "swap", "hyperparameter": "re-range",
            "order": "reorder"}


@dataclass
class Verdict:
    """One evaluated configuration: its score and pass/fail verdict."""

    config: dict
    score: float
    failed: bool

    def jsonable(self) -> dict:
        return {"config": dict(self.config), "score": self.score,
                "failed": self.failed}


@dataclass
class Remediation:
    """A proposed fix for one factor of a root cause."""

    factor: str
    kind: str          # stage | hyperparameter | order
    action: str        # swap | re-range | reorder
    from_level: str
    to_level: str | None       # best observed passing alternative
    observed_score: float | None

    def describe(self) -> str:
        if self.to_level is None:
            return (f"{self.action} {self.factor!r} away from "
                    f"{self.from_level!r} (no passing alternative observed)")
        return (f"{self.action} {self.factor!r}: {self.from_level!r} -> "
                f"{self.to_level!r} (observed score "
                f"{self.observed_score:.3f})")

    def jsonable(self) -> dict:
        return {"factor": self.factor, "kind": self.kind,
                "action": self.action, "from_level": self.from_level,
                "to_level": self.to_level,
                "observed_score": self.observed_score}


@dataclass
class RootCause:
    """A minimal failure-inducing assignment plus its evidence."""

    assignment: dict           # factor name -> failing level
    support: int               # failing screen configs minimizing to this
    worst_score: float         # worst supporting score
    remediations: list = field(default_factory=list)

    @property
    def factors(self) -> list:
        return list(self.assignment)

    def describe(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in self.assignment.items())
        return (f"{{{parts}}} (support={self.support}, "
                f"worst score {self.worst_score:.3f})")

    def jsonable(self) -> dict:
        return {"assignment": dict(self.assignment), "support": self.support,
                "worst_score": self.worst_score,
                "remediations": [r.jsonable() for r in self.remediations]}


@dataclass
class DebugReport:
    """Everything one :meth:`PipelineDebugger.run` learned."""

    name: str
    grid_size: int
    threshold: float
    verdicts: list             # screen-round Verdicts
    root_causes: list          # ranked RootCauses
    configs_evaluated: int     # unique configurations actually scored
    rounds: int                # batched evaluation rounds
    all_failing: bool = False  # no passing config found -> nothing isolated

    @property
    def fraction_of_grid(self) -> float:
        return self.configs_evaluated / self.grid_size

    @property
    def stage_sets(self) -> list:
        """The isolated factor set per root cause (ranked)."""
        return [frozenset(cause.assignment) for cause in self.root_causes]

    @property
    def n_failing(self) -> int:
        return sum(1 for v in self.verdicts if v.failed)

    def summary(self) -> str:
        lines = [
            f"debug report: {self.name}",
            f"  grid {self.grid_size} configs; evaluated "
            f"{self.configs_evaluated} ({self.fraction_of_grid:.0%}) "
            f"in {self.rounds} rounds",
            f"  screen: {self.n_failing}/{len(self.verdicts)} variants "
            f"failed (threshold {self.threshold})",
        ]
        if self.all_failing:
            lines.append("  every screened variant failed — no passing "
                         "reference, nothing isolated")
        for rank, cause in enumerate(self.root_causes, start=1):
            lines.append(f"  #{rank} {cause.describe()}")
            for remedy in cause.remediations:
                lines.append(f"      -> {remedy.describe()}")
        if not self.root_causes and not self.all_failing:
            lines.append("  no failing configurations — nothing to debug")
        return "\n".join(lines)

    def jsonable(self) -> dict:
        return {
            "name": self.name,
            "grid_size": self.grid_size,
            "threshold": self.threshold,
            "configs_evaluated": self.configs_evaluated,
            "fraction_of_grid": self.fraction_of_grid,
            "rounds": self.rounds,
            "all_failing": self.all_failing,
            "verdicts": [v.jsonable() for v in self.verdicts],
            "root_causes": [c.jsonable() for c in self.root_causes],
        }


class PipelineDebugger:
    """Configuration-space debugger over a user-supplied evaluator.

    Parameters
    ----------
    space:
        The :class:`ConfigurationSpace` of pipeline choices.
    evaluator:
        ``evaluator(shared, config) -> float`` — a **module-level**
        function (the process backend pickles it). Crashing variants
        should map to a sentinel below ``threshold`` (see
        :data:`~repro.pipelines.debugger.variants.FAILED_SCORE`).
    shared:
        Picklable context broadcast to every evaluation (data arrays,
        a :class:`~repro.pipelines.debugger.variants.PipelineVariants`).
    threshold:
        Scores strictly below this fail.
    runtime:
        A shared :class:`~repro.runtime.Runtime` (or backend name).
        Defaults to a private serial runtime with a fresh
        fingerprint cache, so repeated probes are free.
    observer / seed / name:
        Observability handle; covering-array seed; report label (also
        part of the cache key, so two debuggers with the same space but
        different names do not collide).
    """

    def __init__(self, space: ConfigurationSpace, evaluator, *, shared=None,
                 threshold: float = 0.5, runtime=None, observer=None,
                 seed: int = 0, name: str = "pipeline"):
        if not isinstance(space, ConfigurationSpace):
            raise ValidationError(
                "space must be a ConfigurationSpace, got "
                f"{type(space).__name__}")
        self.space = space
        self.evaluator = evaluator
        self.shared = shared
        self.threshold = float(threshold)
        self.runtime = (resolve_runtime(runtime)
                        or Runtime(backend="serial", cache=True))
        self.observer = resolve_observer(observer)
        self.seed = seed
        self.name = name
        self._space_fp = space.fingerprint()
        self._scores: dict[tuple, float] = {}
        self._rounds = 0

    # ------------------------------------------------------------------
    def is_failure(self, score: float) -> bool:
        return float(score) < self.threshold

    def _cache_key(self, config: dict) -> str:
        return fingerprint("pipelines.debugger", self.name, self._space_fp,
                           self.space.key(config))

    def _evaluate_batch(self, configs: list, phase: str) -> list:
        configs = list(configs)
        self._rounds += 1
        scores = self.runtime.map_cached(
            self.evaluator, configs, key_fn=self._cache_key,
            shared=self.shared, stage=f"debugger.{phase}")
        scores = [float(s) for s in scores]
        fresh = 0
        for config, score in zip(configs, scores):
            key = self.space.key(config)
            if key not in self._scores:
                fresh += 1
            self._scores[key] = score
        if self.observer.enabled:
            self.observer.count("debugger.rounds")
            self.observer.count("debugger.configs_evaluated", fresh)
            self.observer.event("debugger.round", debugger=self.name,
                                phase=phase, round=self._rounds,
                                configs=len(configs), new_configs=fresh)
        return scores

    # ------------------------------------------------------------------
    def _nearest_passing(self, config: dict, passing: list) -> Verdict:
        """Closest passing verdict by Hamming distance over factors
        (ties broken by screening order — deterministic)."""
        names = self.space.factor_names
        best, best_distance = None, None
        for verdict in passing:
            distance = sum(1 for n in names
                           if verdict.config[n] != config[n])
            if best is None or distance < best_distance:
                best, best_distance = verdict, distance
        return best

    def _aggregate(self, minimal: list) -> list:
        """Group identical minimal assignments into ranked RootCauses."""
        order = {name: i for i, name in enumerate(self.space.factor_names)}
        grouped: dict[tuple, dict] = {}
        for assignment, verdict in minimal:
            key = tuple(sorted(assignment.items(),
                               key=lambda kv: order[kv[0]]))
            slot = grouped.setdefault(
                key, {"assignment": dict(key), "support": 0,
                      "worst": float("inf")})
            slot["support"] += 1
            slot["worst"] = min(slot["worst"], verdict.score)
        causes = [RootCause(assignment=slot["assignment"],
                            support=slot["support"],
                            worst_score=slot["worst"])
                  for slot in grouped.values()]
        causes.sort(key=lambda c: (-c.support, c.worst_score,
                                   tuple(order[n] for n in c.assignment)))
        return causes

    def _remediations(self, cause: RootCause) -> list:
        remedies = []
        for factor_name, bad_level in cause.assignment.items():
            factor = self.space[factor_name]
            best_level, best_score = None, None
            for key, score in self._scores.items():
                level = dict(key)[factor_name]
                if level == bad_level or self.is_failure(score):
                    continue
                if best_score is None or score > best_score:
                    best_level, best_score = level, score
            remedies.append(Remediation(
                factor=factor_name, kind=factor.kind,
                action=_ACTIONS[factor.kind], from_level=bad_level,
                to_level=best_level, observed_score=best_score))
        return remedies

    # ------------------------------------------------------------------
    def run(self) -> DebugReport:
        """Screen, isolate, and propose; returns the ranked report."""
        cache = self.runtime.cache
        hits_before = cache.stats.hits if cache is not None else 0
        rows = pairwise_covering_array(self.space, seed=self.seed)
        scores = self._evaluate_batch(rows, "screen")
        verdicts = [Verdict(config=row, score=score,
                            failed=self.is_failure(score))
                    for row, score in zip(rows, scores)]
        failing = [v for v in verdicts if v.failed]
        passing = [v for v in verdicts if not v.failed]

        minimal = []
        for verdict in failing:
            if not passing:
                break
            reference = self._nearest_passing(verdict.config, passing)
            assignment = minimize_failure(
                self.space, verdict.config, reference.config,
                lambda configs: self._evaluate_batch(configs, "minimize"),
                self.is_failure)
            minimal.append((assignment, verdict))

        causes = self._aggregate(minimal)
        for cause in causes:
            cause.remediations = self._remediations(cause)

        report = DebugReport(
            name=self.name, grid_size=self.space.grid_size,
            threshold=self.threshold, verdicts=verdicts, root_causes=causes,
            configs_evaluated=len(self._scores), rounds=self._rounds,
            all_failing=bool(failing) and not passing)
        if self.observer.enabled:
            pruned = max(0, self.space.grid_size - len(self._scores))
            self.observer.count("debugger.configs_pruned", pruned)
            if cache is not None:
                self.observer.count("debugger.cache_hits",
                                    cache.stats.hits - hits_before)
            self.observer.event(
                "debugger.report", debugger=self.name,
                grid_size=report.grid_size,
                configs_evaluated=report.configs_evaluated,
                fraction_of_grid=report.fraction_of_grid,
                rounds=report.rounds, n_failing=report.n_failing,
                n_root_causes=len(report.root_causes),
                all_failing=report.all_failing)
        return report
