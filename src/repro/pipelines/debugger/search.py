"""BugDoc-style adaptive group testing over configuration deltas.

Given one *failing* configuration and one *passing* configuration, the
factors on which they differ form the suspect set. Classic delta
debugging (``ddmin``) shrinks that set to a *minimal failure-inducing*
one: applying just those factors' failing levels onto the passing
configuration still breaks the pipeline, and no proper subset does
(1-minimality).

Each outer iteration proposes every chunk and every chunk-complement at
once, so the debugger evaluates them as one batched
:meth:`~repro.runtime.Runtime.map` round instead of one pipeline run
per probe. All tie-breaks are first-wins over deterministic orderings,
so the minimization is bit-reproducible across backends.
"""

from __future__ import annotations

from repro.core.exceptions import ValidationError

__all__ = ["minimize_failure"]


def _apply(passing: dict, failing: dict, subset) -> dict:
    """The passing configuration with ``subset``'s failing levels applied."""
    config = dict(passing)
    for name in subset:
        config[name] = failing[name]
    return config


def _partition(items: list, n: int) -> list[list]:
    """Split ``items`` into ``n`` contiguous, non-empty chunks."""
    n = min(n, len(items))
    size, extra = divmod(len(items), n)
    chunks, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def minimize_failure(space, failing: dict, passing: dict, evaluate_batch,
                     is_failure) -> dict:
    """Minimal failure-inducing factor assignment (ddmin, batched rounds).

    Parameters
    ----------
    space:
        The :class:`~repro.pipelines.debugger.space.ConfigurationSpace`
        both configurations live in (defines the factor order).
    failing / passing:
        Complete configurations; ``failing`` must actually fail and
        ``passing`` must actually pass under the caller's oracle.
    evaluate_batch:
        ``evaluate_batch(configs) -> list[float]`` — scores a batch of
        configurations (the debugger routes this through
        ``Runtime.map_cached`` so probes are parallel and memoized).
    is_failure:
        ``is_failure(score) -> bool`` verdict for one score.

    Returns
    -------
    dict
        ``{factor_name: failing_level}`` for the minimized set, in the
        space's factor order. Applying it to ``passing`` fails; removing
        any single entry passes (1-minimal).
    """
    space.validate(failing)
    space.validate(passing)
    order = {name: i for i, name in enumerate(space.factor_names)}
    delta = sorted((n for n in space.factor_names
                    if failing[n] != passing[n]), key=order.__getitem__)
    if not delta:
        raise ValidationError(
            "failing and passing configurations are identical — "
            "nothing to minimize")

    current = delta
    n = 2
    while len(current) >= 2:
        chunks = _partition(current, n)
        candidates = list(chunks)
        if len(chunks) > 2:
            for i in range(len(chunks)):
                complement = [x for j, chunk in enumerate(chunks)
                              for x in chunk if j != i]
                candidates.append(complement)
        scores = evaluate_batch(
            [_apply(passing, failing, subset) for subset in candidates])
        reduced = None
        for subset, score in zip(candidates, scores):
            if is_failure(score):
                reduced = subset
                break
        if reduced is not None:
            was_chunk = len(reduced) <= len(current) // n + 1
            current = sorted(reduced, key=order.__getitem__)
            n = 2 if was_chunk else max(n - 1, 2)
        else:
            if n >= len(current):
                break
            n = min(2 * n, len(current))
    return {name: failing[name] for name in current}
