"""Gradient-similarity data values (the TracIn-style member of the
survey's "gradient-based methods" bucket, refs [41, 42]).

Where influence functions weight per-example gradients by the inverse
Hessian, the first-order variant scores each training example by the
plain inner product of its loss gradient with the mean validation-loss
gradient at the fitted parameters::

    value(z) = ∇L(z, θ̂) · mean_val ∇L(z_val, θ̂)

A training step on ``z`` moves θ along ``-∇L(z)``, changing validation
loss by ``≈ -η ∇L(z)·ḡ_val``; a harmful example (one whose step raises
validation loss) therefore has a *negative* inner product, so the raw
product already follows the library's lower-is-more-harmful convention
(it is exactly the influence-function value with the Hessian replaced by
the identity).
No Hessian, no retraining: one gradient pass, robust at any scale, and a
useful cross-check for the curvature-aware influence scores.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_X_y
from repro.ml.linear import LogisticRegression


def gradient_similarity_scores(model: LogisticRegression, X_train, y_train,
                               X_valid, y_valid,
                               normalize: bool = False) -> np.ndarray:
    """First-order gradient-alignment values for a fitted binary model.

    Parameters
    ----------
    model:
        A *fitted* binary :class:`LogisticRegression`.
    normalize:
        Use cosine similarity instead of the raw inner product (removes
        the feature-norm bias that makes large-norm examples look
        important).

    Returns
    -------
    np.ndarray
        One score per training example, lower = more harmful.
    """
    if not isinstance(model, LogisticRegression):
        raise ValidationError(
            "gradient_similarity_scores requires a LogisticRegression")
    if not hasattr(model, "coef_"):
        raise ValidationError("model must be fitted first")
    if len(model.classes_) != 2:
        raise ValidationError("binary models only")
    X_train, y_train = check_X_y(X_train, y_train)
    X_valid, y_valid = check_X_y(X_valid, y_valid)

    w = model.coef_[1] - model.coef_[0]
    b = float(model.intercept_[1] - model.intercept_[0])
    theta = np.concatenate([w, [b]])
    Xa_train = np.column_stack([X_train, np.ones(len(X_train))])
    Xa_valid = np.column_stack([X_valid, np.ones(len(X_valid))])

    t_train = (y_train == model.classes_[1]).astype(float)
    t_valid = (y_valid == model.classes_[1]).astype(float)
    p_train = 1.0 / (1.0 + np.exp(-Xa_train @ theta))
    p_valid = 1.0 / (1.0 + np.exp(-Xa_valid @ theta))

    grad_train = (p_train - t_train)[:, None] * Xa_train
    grad_valid = ((p_valid - t_valid)[:, None] * Xa_valid).mean(axis=0)

    if normalize:
        norms = np.linalg.norm(grad_train, axis=1)
        grad_train = grad_train / np.maximum(norms, 1e-12)[:, None]
        grad_valid = grad_valid / max(np.linalg.norm(grad_valid), 1e-12)
    return grad_train @ grad_valid
