"""Leave-one-out importance — the simplest data value.

``value(i) = u(D) - u(D \\ {i})``: how much validation quality drops when
example ``i`` is removed. Negative values mean the model *improves*
without the point, the signature of a harmful example. Costs one model
training per training point.
"""

from __future__ import annotations

import numpy as np

from repro.importance.base import (
    Utility,
    emit_importance_run,
    hex_floats,
    open_checkpoint_session,
    unhex_floats,
)
from repro.observe.observer import resolve_observer
from repro.runtime.cache import fingerprint


def leave_one_out(utility: Utility, *, observer=None, checkpoint=None,
                  checkpoint_every: int = 25,
                  resume_from=None) -> np.ndarray:
    """Compute LOO values for every player of ``utility``.

    Returns an array of length ``utility.n_players`` following the
    lower-is-more-harmful convention shared by all importance methods.

    The ``n`` drop-one retrainings are independent, so they are submitted
    as one batch through ``utility.runtime`` (inline when absent).
    ``observer`` (a :class:`repro.observe.Observer`) spans the sweep and
    logs a replayable ``importance.run`` event. ``checkpoint`` /
    ``checkpoint_every`` / ``resume_from`` durably snapshot completed
    drop-one evaluations (LOO is deterministic, so no seed is needed);
    a resumed sweep is hex-identical to an uninterrupted one.
    """
    obs = resolve_observer(observer)
    if not obs.enabled:
        return _leave_one_out(utility, observer=obs, checkpoint=checkpoint,
                              checkpoint_every=checkpoint_every,
                              resume_from=resume_from)
    calls_before = utility.calls
    cache = utility.runtime.cache if utility.runtime is not None else None
    with obs.span("leave_one_out", cache=cache, players=utility.n_players):
        values = _leave_one_out(utility, observer=obs, checkpoint=checkpoint,
                                checkpoint_every=checkpoint_every,
                                resume_from=resume_from)
    emit_importance_run(
        obs, method="leave_one_out", params={}, seed=None, utility=utility,
        calls_before=calls_before, values=values)
    return values


def _leave_one_out(utility: Utility, *, observer=None, checkpoint=None,
                   checkpoint_every: int = 25,
                   resume_from=None) -> np.ndarray:
    n = utility.n_players
    everyone = np.arange(n)
    drop_one = [np.delete(everyone, i) for i in range(n)]
    session = open_checkpoint_session(
        utility, checkpoint=checkpoint, resume_from=resume_from,
        every=checkpoint_every, kind="importance.loo",
        identity=fingerprint("checkpoint.loo", utility.base_fingerprint())
        if (checkpoint is not None or resume_from is not None) else "",
        observer=observer)
    if session is None:
        full = utility.full_value()
        return full - utility.evaluate_many(drop_one, stage="leave_one_out")
    try:
        full = None
        values = np.empty(n)
        done = 0
        payload = session.resume()
        if payload is not None:
            full = float.fromhex(payload["full_value"])
            restored = unhex_floats(payload["values"])
            values[:len(restored)] = restored
            done = len(restored)
            session.record_skipped(completed=done, total=n,
                                   method="leave_one_out")
        if full is None:
            full = utility.full_value()
        with session.session(
                lambda: done,
                lambda: {"full_value": full.hex(),
                         "values": hex_floats(values[:done])}):
            while done < n:
                end = min(done + session.every, n)
                values[done:end] = utility.evaluate_many(
                    drop_one[done:end], stage="leave_one_out")
                done = end
                session.maybe_flush(done)
    finally:
        session.close()
    return full - values
