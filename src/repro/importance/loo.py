"""Leave-one-out importance — the simplest data value.

``value(i) = u(D) - u(D \\ {i})``: how much validation quality drops when
example ``i`` is removed. Negative values mean the model *improves*
without the point, the signature of a harmful example. Costs one model
training per training point.
"""

from __future__ import annotations

import numpy as np

from repro.importance.base import Utility, emit_importance_run
from repro.observe.observer import resolve_observer


def leave_one_out(utility: Utility, *, observer=None) -> np.ndarray:
    """Compute LOO values for every player of ``utility``.

    Returns an array of length ``utility.n_players`` following the
    lower-is-more-harmful convention shared by all importance methods.

    The ``n`` drop-one retrainings are independent, so they are submitted
    as one batch through ``utility.runtime`` (inline when absent).
    ``observer`` (a :class:`repro.observe.Observer`) spans the sweep and
    logs a replayable ``importance.run`` event.
    """
    obs = resolve_observer(observer)
    if not obs.enabled:
        return _leave_one_out(utility)
    calls_before = utility.calls
    cache = utility.runtime.cache if utility.runtime is not None else None
    with obs.span("leave_one_out", cache=cache, players=utility.n_players):
        values = _leave_one_out(utility)
    emit_importance_run(
        obs, method="leave_one_out", params={}, seed=None, utility=utility,
        calls_before=calls_before, values=values)
    return values


def _leave_one_out(utility: Utility) -> np.ndarray:
    n = utility.n_players
    full = utility.full_value()
    everyone = np.arange(n)
    drop_one = [np.delete(everyone, i) for i in range(n)]
    return full - utility.evaluate_many(drop_one, stage="leave_one_out")
