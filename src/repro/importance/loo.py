"""Leave-one-out importance — the simplest data value.

``value(i) = u(D) - u(D \\ {i})``: how much validation quality drops when
example ``i`` is removed. Negative values mean the model *improves*
without the point, the signature of a harmful example. Costs one model
training per training point.
"""

from __future__ import annotations

import numpy as np

from repro.importance.base import Utility


def leave_one_out(utility: Utility) -> np.ndarray:
    """Compute LOO values for every player of ``utility``.

    Returns an array of length ``utility.n_players`` following the
    lower-is-more-harmful convention shared by all importance methods.

    The ``n`` drop-one retrainings are independent, so they are submitted
    as one batch through ``utility.runtime`` (inline when absent).
    """
    n = utility.n_players
    full = utility.full_value()
    everyone = np.arange(n)
    drop_one = [np.delete(everyone, i) for i in range(n)]
    return full - utility.evaluate_many(drop_one, stage="leave_one_out")
