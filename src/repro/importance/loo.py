"""Leave-one-out importance — the simplest data value.

``value(i) = u(D) - u(D \\ {i})``: how much validation quality drops when
example ``i`` is removed. Negative values mean the model *improves*
without the point, the signature of a harmful example. Costs one model
training per training point.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.importance.base import (
    Utility,
    emit_importance_run,
    hex_floats,
    open_checkpoint_session,
    partial_every,
    resolve_partial,
    unhex_floats,
)
from repro.observe.observer import resolve_observer
from repro.runtime.cache import fingerprint


def leave_one_out(utility: Utility, *, observer=None, checkpoint=None,
                  checkpoint_every: int = 25, resume_from=None,
                  partial=None) -> np.ndarray:
    """Compute LOO values for every player of ``utility``.

    Returns an array of length ``utility.n_players`` following the
    lower-is-more-harmful convention shared by all importance methods.

    The ``n`` drop-one retrainings are independent, so they are submitted
    as one batch through ``utility.runtime`` (inline when absent).
    ``observer`` (a :class:`repro.observe.Observer`) spans the sweep and
    logs a replayable ``importance.run`` event. ``checkpoint`` /
    ``checkpoint_every`` / ``resume_from`` durably snapshot completed
    drop-one evaluations (LOO is deterministic, so no seed is needed);
    a resumed sweep is hex-identical to an uninterrupted one.

    ``partial`` is the anytime-results hook shared by all importance
    methods (see :func:`repro.importance.base.resolve_partial`). LOO is
    exact, not sampled, so published values carry a standard error of
    ``0`` once computed and ``inf`` while still pending (``NaN`` value);
    returning truthy from ``publish`` stops the sweep with the pending
    tail left as ``NaN`` (snapshotted first when ``checkpoint=`` is
    active, so the job resumes to the exact full-sweep result).
    """
    obs = resolve_observer(observer)
    if not obs.enabled:
        return _leave_one_out(utility, observer=obs, checkpoint=checkpoint,
                              checkpoint_every=checkpoint_every,
                              resume_from=resume_from, partial=partial)
    calls_before = utility.calls
    cache = utility.runtime.cache if utility.runtime is not None else None
    with obs.span("leave_one_out", cache=cache, players=utility.n_players):
        values = _leave_one_out(utility, observer=obs, checkpoint=checkpoint,
                                checkpoint_every=checkpoint_every,
                                resume_from=resume_from, partial=partial)
    emit_importance_run(
        obs, method="leave_one_out", params={}, seed=None, utility=utility,
        calls_before=calls_before, values=values)
    return values


def _leave_one_out(utility: Utility, *, observer=None, checkpoint=None,
                   checkpoint_every: int = 25, resume_from=None,
                   partial=None) -> np.ndarray:
    n = utility.n_players
    partial = resolve_partial(partial)
    everyone = np.arange(n)
    drop_one = [np.delete(everyone, i) for i in range(n)]
    session = open_checkpoint_session(
        utility, checkpoint=checkpoint, resume_from=resume_from,
        every=checkpoint_every, kind="importance.loo",
        identity=fingerprint("checkpoint.loo", utility.base_fingerprint())
        if (checkpoint is not None or resume_from is not None) else "",
        observer=observer)
    if session is None and partial is None:
        full = utility.full_value()
        return full - utility.evaluate_many(drop_one, stage="leave_one_out")

    def publish(full, values, done) -> bool:
        """LOO is exact per player: computed entries have stderr 0, the
        pending tail is NaN with stderr inf."""
        if partial is None or done == 0:
            return False  # nothing computed yet: nothing to publish
        estimate = np.full(n, np.nan)
        estimate[:done] = full - values[:done]
        stderr = np.full(n, np.inf)
        stderr[:done] = 0.0
        return bool(partial.publish(
            method="leave_one_out", completed=done, total=n,
            values=estimate, stderr=stderr))

    try:
        full = None
        values = np.empty(n)
        done = 0
        if session is not None:
            payload = session.resume()
            if payload is not None:
                full = float.fromhex(payload["full_value"])
                restored = unhex_floats(payload["values"])
                values[:len(restored)] = restored
                done = len(restored)
                session.record_skipped(completed=done, total=n,
                                       method="leave_one_out")
        if full is None:
            full = utility.full_value()
        every = session.every if session is not None else n
        if partial is not None:
            every = max(1, min(every, partial_every(partial)))
        guard = session.session(
            lambda: done,
            lambda: {"full_value": full.hex(),
                     "values": hex_floats(values[:done])},
        ) if session is not None else contextlib.nullcontext()
        with guard:
            if publish(full, values, done):  # restored prefix may already
                if session is not None:      # satisfy the stop predicate
                    session.flush()
                result = np.full(n, np.nan)
                result[:done] = full - values[:done]
                return result
            while done < n:
                end = min(done + every, n)
                values[done:end] = utility.evaluate_many(
                    drop_one[done:end], stage="leave_one_out")
                done = end
                if publish(full, values, done):
                    if session is not None:
                        session.flush()
                    if done < n:
                        result = np.full(n, np.nan)
                        result[:done] = full - values[:done]
                        return result
                    break
                if session is not None:
                    session.maybe_flush(done)
    finally:
        if session is not None:
            session.close()
    return full - values
