"""Uncertainty-based label-error scores: confident learning and AUM.

Unlike the game-theoretic values, these methods need no validation set —
they read label noise straight out of the model's own uncertainty:

- **Confident learning** (Northcutt et al., ref [59]) compares each
  example's given label against out-of-sample predicted probabilities and
  per-class confidence thresholds.
- **Area Under the Margin** (Pleiss et al., ref [63]) tracks the logit
  margin of the assigned label across training epochs; mislabeled points
  fight the gradient signal of their (correctly labelled) class peers and
  accumulate low or negative margins.

Both return scores in the library's lower-is-more-harmful convention.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.core.validation import check_X_y
from repro.ml.base import clone
from repro.ml.model_selection import KFold


def out_of_sample_proba(model, X, y, *, cv: int = 5, seed=0) -> np.ndarray:
    """Cross-validated predicted probabilities for every training example.

    Each example's probabilities come from a fold whose training half did
    not contain it, so self-memorization cannot mask label errors.
    """
    X, y = check_X_y(X, y)
    classes = np.unique(y)
    proba = np.zeros((len(X), len(classes)))
    class_index = {c.item() if isinstance(c, np.generic) else c: i
                   for i, c in enumerate(classes.tolist())}
    for train_idx, test_idx in KFold(cv, shuffle=True, seed=seed).split(X):
        fold_model = clone(model)
        fold_model.fit(X[train_idx], y[train_idx])
        fold_proba = fold_model.predict_proba(X[test_idx])
        # Align fold class order with the global order.
        for local_col, cls in enumerate(fold_model.classes_.tolist()):
            proba[test_idx, class_index[cls]] = fold_proba[:, local_col]
    return proba, classes


def confident_learning_scores(model, X, y, *, cv: int = 5, seed=0):
    """Confident-learning label-quality scores and the flagged set.

    Returns ``(scores, flagged_mask)``:

    - ``scores[i]`` — self-confidence margin ``p(given label) - max
      p(other label)``; strongly negative for likely label errors.
    - ``flagged_mask[i]`` — True when the example lands in an off-diagonal
      cell of the confident joint (predicted-with-confidence class differs
      from the given label).
    """
    proba, classes = out_of_sample_proba(model, X, y, cv=cv, seed=seed)
    y = np.asarray(y)
    class_index = {c.item() if isinstance(c, np.generic) else c: i
                   for i, c in enumerate(classes.tolist())}
    given = np.array([class_index[v if not isinstance(v, np.generic) else v.item()]
                      for v in y])

    # Per-class confidence thresholds: mean self-confidence of examples
    # labelled with that class.
    thresholds = np.array([
        proba[given == c, c].mean() if np.any(given == c) else np.inf
        for c in range(len(classes))
    ])

    # Confident joint assignment: the class with the highest probability
    # among those exceeding their threshold.
    exceeds = proba >= thresholds[None, :]
    masked = np.where(exceeds, proba, -np.inf)
    confident_class = np.argmax(masked, axis=1)
    has_confident = np.any(exceeds, axis=1)
    flagged = has_confident & (confident_class != given)

    self_conf = proba[np.arange(len(y)), given]
    other = proba.copy()
    other[np.arange(len(y)), given] = -np.inf
    margin = self_conf - np.max(other, axis=1)
    return margin, flagged


def aum_scores(X, y, *, n_epochs: int = 30, lr: float = 0.5,
               batch_size: int = 32, seed=0) -> np.ndarray:
    """Area Under the Margin via mini-batch SGD logistic training.

    Trains a softmax model from scratch with SGD and records, after every
    epoch, each example's margin ``logit(given) - max logit(other)``. The
    returned score is the margin averaged over epochs — the AUM. Low
    (especially negative) AUM indicates a mislabeled example.
    """
    X, y = check_X_y(X, y)
    if n_epochs < 1:
        raise ValidationError("n_epochs must be >= 1")
    classes, encoded = np.unique(y, return_inverse=True)
    if len(classes) < 2:
        raise ValidationError("need at least two classes")
    rng = ensure_rng(seed)
    n, d = X.shape
    k = len(classes)
    Xa = np.column_stack([X, np.ones(n)])
    W = np.zeros((d + 1, k))
    margins = np.zeros(n)

    for _ in range(n_epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            batch = order[start:start + batch_size]
            logits = Xa[batch] @ W
            logits -= logits.max(axis=1, keepdims=True)
            probs = np.exp(logits)
            probs /= probs.sum(axis=1, keepdims=True)
            target = np.zeros((len(batch), k))
            target[np.arange(len(batch)), encoded[batch]] = 1.0
            grad = Xa[batch].T @ (probs - target) / len(batch)
            W -= lr * grad
        logits = Xa @ W
        assigned = logits[np.arange(n), encoded]
        others = logits.copy()
        others[np.arange(n), encoded] = -np.inf
        margins += assigned - np.max(others, axis=1)
    return margins / n_epochs
