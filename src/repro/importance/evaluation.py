"""Evaluating importance methods as error detectors.

Two views, matching how the paper's hands-on session uses importance:

- **Detection**: rank examples by value ascending; how many of the truly
  corrupted examples appear in the bottom-k? (precision/recall@k)
- **Cleaning curves**: repeatedly clean the bottom-k and retrain; how fast
  does model quality recover compared to random cleaning? (Figure 2's
  0.76 -> 0.79 is one point of such a curve.)
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError


def rank_lowest(values, k: int | None = None) -> np.ndarray:
    """Indices of the lowest-valued (most harmful) examples, ascending.

    Ties are broken by index so rankings are deterministic.
    """
    values = np.asarray(values, dtype=float)
    order = np.lexsort((np.arange(len(values)), values))
    return order if k is None else order[:k]


def detection_recall_at_k(values, corrupted_indices, k: int) -> float:
    """Fraction of corrupted examples found in the bottom-k of ``values``."""
    corrupted = set(int(i) for i in np.atleast_1d(corrupted_indices))
    if not corrupted:
        raise ValidationError("corrupted_indices is empty")
    flagged = set(rank_lowest(values, k).tolist())
    return len(flagged & corrupted) / len(corrupted)


def detection_precision_at_k(values, corrupted_indices, k: int) -> float:
    """Fraction of the bottom-k that is truly corrupted."""
    corrupted = set(int(i) for i in np.atleast_1d(corrupted_indices))
    flagged = set(rank_lowest(values, k).tolist())
    return len(flagged & corrupted) / max(len(flagged), 1)


def cleaning_curve(values, *, clean_step, evaluate, n_rounds: int,
                   batch: int) -> list[float]:
    """Simulate iterative prioritized cleaning.

    Parameters
    ----------
    values:
        Importance scores of the (dirty) training data; cleaned lowest
        first, ``batch`` per round.
    clean_step:
        Callable ``clean_step(indices) -> None`` applying repairs in place
        (e.g. restoring ground-truth labels).
    evaluate:
        Callable ``evaluate() -> float`` retraining and scoring the model
        on the current data state.
    n_rounds:
        Number of cleaning rounds.
    batch:
        Examples cleaned per round.

    Returns
    -------
    list of float
        Quality after 0, 1, ..., n_rounds rounds (length n_rounds + 1).
    """
    if n_rounds < 1 or batch < 1:
        raise ValidationError("n_rounds and batch must be >= 1")
    order = rank_lowest(values)
    curve = [float(evaluate())]
    for round_idx in range(n_rounds):
        chunk = order[round_idx * batch:(round_idx + 1) * batch]
        if len(chunk) == 0:
            curve.append(curve[-1])
            continue
        clean_step(chunk)
        curve.append(float(evaluate()))
    return curve
