"""Evaluating importance methods as error detectors.

Two views, matching how the paper's hands-on session uses importance:

- **Detection**: rank examples by value ascending; how many of the truly
  corrupted examples appear in the bottom-k? (precision/recall@k)
- **Cleaning curves**: repeatedly clean the bottom-k and retrain; how fast
  does model quality recover compared to random cleaning? (Figure 2's
  0.76 -> 0.79 is one point of such a curve.)
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError


def rank_lowest(values, k: int | None = None) -> np.ndarray:
    """Indices of the lowest-valued (most harmful) examples, ascending.

    Ties are broken by index so rankings are deterministic.
    """
    values = np.asarray(values, dtype=float)
    order = np.lexsort((np.arange(len(values)), values))
    return order if k is None else order[:k]


def detection_recall_at_k(values, corrupted_indices, k: int) -> float:
    """Fraction of corrupted examples found in the bottom-k of ``values``."""
    corrupted = set(int(i) for i in np.atleast_1d(corrupted_indices))
    if not corrupted:
        raise ValidationError("corrupted_indices is empty")
    flagged = set(rank_lowest(values, k).tolist())
    return len(flagged & corrupted) / len(corrupted)


def detection_precision_at_k(values, corrupted_indices, k: int) -> float:
    """Fraction of the bottom-k that is truly corrupted."""
    corrupted = set(int(i) for i in np.atleast_1d(corrupted_indices))
    flagged = set(rank_lowest(values, k).tolist())
    return len(flagged & corrupted) / max(len(flagged), 1)


def detection_report(values, corrupted_indices, k: int, *, utility=None,
                     wall_time: float | None = None) -> dict:
    """Detection quality plus the cost that bought it.

    Bundles recall@k / precision@k with the runtime introspection the
    benchmarks print: model trainings consumed (``utility.calls``), the
    fingerprint-cache hit-rate, and wall-time per runtime stage — so a
    method's ranking quality is always read next to its price.

    Parameters
    ----------
    values:
        Importance scores (lower = more harmful).
    corrupted_indices:
        Ground-truth corrupted examples.
    k:
        Cutoff for the detection metrics.
    utility:
        Optional :class:`~repro.importance.Utility` (or any object with
        ``calls`` / ``cache_info``) the scores were computed through.
    wall_time:
        Optional end-to-end seconds measured by the caller.
    """
    report = {
        "k": int(k),
        "recall_at_k": detection_recall_at_k(values, corrupted_indices, k),
        "precision_at_k": detection_precision_at_k(values, corrupted_indices, k),
    }
    if wall_time is not None:
        report["wall_time"] = float(wall_time)
    if utility is not None:
        report["utility_calls"] = int(getattr(utility, "calls", 0))
        info = utility.cache_info() if hasattr(utility, "cache_info") else {}
        kernel_stats = info.get("kernel")
        if kernel_stats is not None and kernel_stats.get("name"):
            report["kernel"] = kernel_stats["name"]
            report["kernel_incremental_steps"] = int(
                kernel_stats["incremental_steps"])
            report["kernel_fallback_retrains"] = int(
                kernel_stats["fallback_retrains"])
        runtime_stats = info.get("runtime")
        if runtime_stats is not None:
            report["backend"] = runtime_stats["backend"]
            cache_stats = runtime_stats.get("cache")
            if cache_stats is not None:
                report["cache_hit_rate"] = cache_stats["hit_rate"]
                report["cache_hits"] = (cache_stats["memory_hits"]
                                        + cache_stats["disk_hits"])
            report["stage_seconds"] = {
                stage: entry["seconds"]
                for stage, entry in runtime_stats["stages"].items()
            }
    return report


def format_report(report: dict) -> str:
    """One-line rendering of a :func:`detection_report` for logs."""
    parts = [f"recall@{report['k']}={report['recall_at_k']:.2f}",
             f"precision@{report['k']}={report['precision_at_k']:.2f}"]
    if "utility_calls" in report:
        parts.append(f"trainings={report['utility_calls']}")
    if "kernel" in report:
        parts.append(f"kernel={report['kernel']}")
    if "cache_hit_rate" in report:
        parts.append(f"cache_hit_rate={report['cache_hit_rate']:.1%}")
    if "wall_time" in report:
        parts.append(f"wall={report['wall_time']:.2f}s")
    if "backend" in report:
        parts.append(f"backend={report['backend']}")
    return "  ".join(parts)


def cleaning_curve(values, *, clean_step, evaluate, n_rounds: int,
                   batch: int) -> list[float]:
    """Simulate iterative prioritized cleaning.

    Parameters
    ----------
    values:
        Importance scores of the (dirty) training data; cleaned lowest
        first, ``batch`` per round.
    clean_step:
        Callable ``clean_step(indices) -> None`` applying repairs in place
        (e.g. restoring ground-truth labels).
    evaluate:
        Callable ``evaluate() -> float`` retraining and scoring the model
        on the current data state.
    n_rounds:
        Number of cleaning rounds.
    batch:
        Examples cleaned per round.

    Returns
    -------
    list of float
        Quality after 0, 1, ..., n_rounds rounds (length n_rounds + 1).
    """
    if n_rounds < 1 or batch < 1:
        raise ValidationError("n_rounds and batch must be >= 1")
    order = rank_lowest(values)
    curve = [float(evaluate())]
    for round_idx in range(n_rounds):
        chunk = order[round_idx * batch:(round_idx + 1) * batch]
        if len(chunk) == 0:
            curve.append(curve[-1])
            continue
        clean_step(chunk)
        curve.append(float(evaluate()))
    return curve
