"""Incremental coalition kernels: O(update) evaluation instead of O(retrain).

Every importance and cleaning method in the library bottoms out in
``Utility.evaluate``, which by default refits the model from scratch for
every coalition — the dominant cost when scaling a data-debugging
session. For some model classes that refit is provably unnecessary: the
fitted state is a simple function of per-example contributions, so the
value of a coalition (or of every prefix of a permutation) can be
maintained incrementally.

A :class:`CoalitionKernel` packages that insight for one ``(model,
X_train, y_train, X_valid, y_valid, metric)`` game:

- :meth:`CoalitionKernel.evaluate` scores one arbitrary coalition from
  state precomputed **once per utility** (no clone, no re-validation).
- :meth:`CoalitionKernel.walk_steps` walks a permutation's prefix chain
  by **incremental insertion**, paying O(update) per step instead of a
  full refit per prefix.
- :meth:`CoalitionKernel.exact_shapley` optionally short-circuits
  permutation sampling entirely with a closed form (k-NN only).

The registry covers the whole ``repro.ml`` model zoo:

- :class:`KNNCoalitionKernel` — precomputed ``n_valid x n_train``
  distance matrix, masked top-k coalition evaluation, O(k·n_valid)
  insertion walks, and the Jia et al. closed-form Shapley recurrence.
- :class:`GaussianNBCoalitionKernel` — per-class running sufficient
  statistics; adding one row to a coalition is an O(d) update.
- :class:`LinearRegressionCoalitionKernel` — maintains the inverse
  regularized Gram matrix via Sherman–Morrison rank-one updates, O(d²)
  per walk step, with randomized direct-solve stability cross-checks.
- :class:`WarmStartLogisticKernel` / :class:`WarmStartLinearSVCKernel` —
  continuation solvers that carry coefficients across prefix steps and
  certify prediction equivalence through a strong-convexity margin
  bound, falling back to bit-identical cold replays otherwise.
- :class:`PipelineCoalitionKernel` — fits coalition-invariant
  preprocessing once and dispatches the inner model's kernel on the
  transformed features.
- ``DecisionTreeClassifier`` / ``RandomForestClassifier`` carry explicit
  **fallback registrations** (:func:`register_fallback`): auto-dispatch
  resolves them to the retrain path *by declaration*, not by silently
  missing the registry.

**Exactness contract.** Kernel walk steps report, per prefix, whether
the value came from incremental state (``kernel.incremental_steps``) or
from a replayed direct solve (``kernel.fallback_retrains``); replayed
steps are bit-identical to the retrain path by construction (they run
the same solver helpers as ``fit``). Incremental steps are bit-identical
for the k-NN and Gaussian-NB kernels; for the linear and warm-start
families they are *certified-exact*: predictions (hence any
label-quantized metric such as accuracy) match the retrain path exactly
whenever the step is taken, and any step that cannot be certified is
demoted to a counted fallback replay. See ``docs/PERFORMANCE.md``.

Dispatch walks the model's MRO (most-derived registration wins), so a
subclass of a registered model inherits its kernel unless it registers a
builder of its own or opts out with :func:`register_fallback`.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.importance.knn_shapley import knn_shapley_core
from repro.ml.compose import Pipeline
from repro.ml.ensemble import RandomForestClassifier
from repro.ml.linear import (
    LinearRegression,
    LinearSVC,
    LogisticRegression,
    _logistic_problem,
    _minimize,
    _ridge_theta,
    _svc_problem,
)
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neighbors import KNeighborsClassifier, pairwise_distances
from repro.ml.tree import DecisionTreeClassifier


class CoalitionKernel:
    """Exact incremental evaluator for one coalition game.

    Subclasses precompute whatever per-game state makes coalition
    evaluation cheap (distance matrices, sufficient statistics, Gram
    inverses) and must honour the exactness contract: values
    bit-identical to cloning and refitting the model on every step they
    report as incremental, ``trained`` flags matching what the retrain
    path would report, and honest ``incremental`` flags so replayed
    solves land in the ``kernel.fallback_retrains`` counter. Kernels must
    be picklable (they ship to process workers once, inside the utility
    core) and treat their state as read-only after construction (thread
    workers share it) — walk state lives in the generator, never on
    ``self``.
    """

    #: Short identifier used in reports and observability counters.
    name = "kernel"

    def evaluate(self, subset: np.ndarray, y_sub: np.ndarray,
                 classes: np.ndarray) -> tuple[float, int, bool]:
        """Value of one coalition with >= 2 classes.

        ``y_sub`` is ``y_train[subset]`` and ``classes`` its sorted
        unique labels (both already computed by the caller). Returns
        ``(value, trained, incremental)``: ``trained`` is 1 iff the
        retrain path would have fit a model for this coalition, and
        ``incremental`` is ``False`` when the kernel answered by
        replaying a full direct solve (honest fallback accounting)
        rather than from incremental state.
        """
        raise NotImplementedError

    def walk_steps(self, permutation: np.ndarray):
        """Yield ``(value, trained, incremental)`` for each prefix of
        ``permutation``, maintaining incremental state between steps.

        Prefix ``p`` covers ``permutation[:p + 1]``; degenerate prefixes
        (single class, ``|S| < k``) must reproduce the retrain path's
        constant-predictor fallbacks exactly.
        """
        raise NotImplementedError

    def exact_shapley(self):
        """Closed-form Shapley values of the kernel's game, or ``None``.

        Kernels with an analytic solution (k-NN) return one value per
        training point computed without any sampling;
        :class:`~repro.importance.MonteCarloShapley` dispatches to this
        when constructed with ``exact=True`` / ``exact="auto"``.
        """
        return None


def _majority_label(classes: np.ndarray, counts: np.ndarray):
    """First-maximum majority label — identical tie-break to
    ``np.unique`` + ``np.argmax`` on the subset's labels."""
    return classes[np.argmax(counts)]


class KNNCoalitionKernel(CoalitionKernel):
    """Exact k-NN coalition kernel over a precomputed distance matrix.

    Fitting :class:`~repro.ml.neighbors.KNeighborsClassifier` only
    stores the coalition's rows; all prediction work happens in
    ``kneighbors``. The kernel therefore precomputes the full
    ``n_valid x n_train`` distance matrix once and evaluates any
    coalition by selecting each validation point's k nearest members —
    no refit, no per-coalition ``pairwise_distances``.

    Permutation walks go further: each validation point keeps a sorted
    list of its k best neighbors *within the current prefix*, and adding
    one training point is a single vectorized insertion (O(k) per
    validation point) — the per-step cost is independent of the prefix
    size. The same distance matrix also feeds
    :meth:`exact_shapley`, the Jia et al. closed-form recurrence
    (O(n log n) per validation point, no sampling at all).
    """

    name = "knn"

    def __init__(self, model: KNeighborsClassifier, X_train, y_train,
                 X_valid, y_valid, metric):
        self.k = int(model.n_neighbors)
        self.distances = pairwise_distances(X_valid, X_train,
                                            metric=model.metric)
        self.classes, self.encoded = np.unique(y_train, return_inverse=True)
        self.y_valid = y_valid
        self.metric = metric

    def evaluate(self, subset, y_sub, classes):
        if self.k > len(subset):
            # The retrain path's fit raises ValidationError here and
            # falls back to the coalition's majority class.
            sub_classes, counts = np.unique(y_sub, return_counts=True)
            constant = np.full(len(self.y_valid),
                               _majority_label(sub_classes, counts))
            return float(self.metric(self.y_valid, constant)), 0, True
        dist = self.distances[:, subset]
        # Stable (distance, position-in-subset) order — exactly
        # KNeighborsClassifier.kneighbors on the coalition's rows.
        order = np.lexsort(
            (np.broadcast_to(np.arange(dist.shape[1]), dist.shape), dist),
            axis=1)[:, : self.k]
        neighbor_codes = self.encoded[subset][order]
        present_codes = np.searchsorted(self.classes, classes)
        votes = (neighbor_codes[:, :, None]
                 == present_codes[None, None, :]).sum(axis=1)
        predictions = classes[np.argmax(votes, axis=1)]
        return float(self.metric(self.y_valid, predictions)), 1, True

    def walk_steps(self, permutation):
        k = self.k
        n_valid = len(self.y_valid)
        # Per-validation-point best-k lists over the current prefix,
        # padded with +inf; `codes` holds the neighbors' encoded labels.
        best_dist = np.full((n_valid, k), np.inf)
        best_code = np.zeros((n_valid, k), dtype=np.intp)
        counts = np.zeros(len(self.classes), dtype=np.intp)
        column = np.arange(k)
        for pos, player in enumerate(permutation):
            d = self.distances[:, player]
            code = self.encoded[player]
            # Stable insertion: after all entries with distance <= d,
            # matching lexsort's position tie-break.
            at = (best_dist <= d[:, None]).sum(axis=1)[:, None]
            inserted = at < k
            rolled_dist = np.empty_like(best_dist)
            rolled_dist[:, 1:] = best_dist[:, :-1]
            rolled_code = np.empty_like(best_code)
            rolled_code[:, 1:] = best_code[:, :-1]
            rolled_dist[:, 0] = np.inf
            rolled_code[:, 0] = 0
            new_dist = np.where(column < at, best_dist,
                                np.where(column == at, d[:, None],
                                         rolled_dist))
            new_code = np.where(column < at, best_code,
                                np.where(column == at, code, rolled_code))
            best_dist = np.where(inserted, new_dist, best_dist)
            best_code = np.where(inserted, new_code, best_code)
            counts[code] += 1

            present = np.flatnonzero(counts)
            if len(present) < 2:
                constant = np.full(n_valid, self.classes[present[0]])
                yield float(self.metric(self.y_valid, constant)), 0, True
            elif pos + 1 < k:
                majority = _majority_label(self.classes[present],
                                           counts[present])
                constant = np.full(n_valid, majority)
                yield float(self.metric(self.y_valid, constant)), 0, True
            else:
                votes = (best_code[:, :, None]
                         == present[None, None, :]).sum(axis=1)
                predictions = self.classes[present[np.argmax(votes, axis=1)]]
                yield float(self.metric(self.y_valid, predictions)), 1, True

    def exact_shapley(self):
        """Closed-form KNN-Shapley values over the precomputed distances
        (Jia et al., paper ref [33]); ``None`` when ``k`` exceeds the
        training-set size (no full-data model exists to anchor them)."""
        if self.k > self.distances.shape[1]:
            return None
        return knn_shapley_core(self.distances,
                                self.classes[self.encoded],
                                self.y_valid, self.k)


class GaussianNBCoalitionKernel(CoalitionKernel):
    """Exact Gaussian naive Bayes kernel via sufficient statistics.

    A fitted :class:`~repro.ml.naive_bayes.GaussianNB` is fully
    determined by per-class ``(count, mean, variance)`` plus the global
    variance-smoothing term. Coalition evaluation replays the fit's own
    arithmetic on the coalition's rows (skipping cloning and input
    re-validation); permutation walks maintain per-class running
    ``(count, sum, sum-of-squares)`` so each prefix step is an O(d)
    update followed by one vectorized scoring pass.
    """

    name = "gaussian_nb"

    def __init__(self, model: GaussianNB, X_train, y_train, X_valid,
                 y_valid, metric):
        self.var_smoothing = float(model.var_smoothing)
        self.X_train = X_train
        self.classes, self.encoded = np.unique(y_train, return_inverse=True)
        self.X_valid = X_valid
        self.y_valid = y_valid
        self.metric = metric

    def evaluate(self, subset, y_sub, classes):
        X_sub = self.X_train[subset]
        _, encoded = np.unique(y_sub, return_inverse=True)
        n_classes, n_features = len(classes), X_sub.shape[1]
        # Verbatim GaussianNB.fit arithmetic — bit-identical parameters.
        theta = np.zeros((n_classes, n_features))
        var = np.zeros((n_classes, n_features))
        prior = np.zeros(n_classes)
        for c in range(n_classes):
            rows = X_sub[encoded == c]
            theta[c] = rows.mean(axis=0)
            var[c] = rows.var(axis=0)
            prior[c] = len(rows) / len(X_sub)
        var += self.var_smoothing * max(X_sub.var(axis=0).max(), 1e-12)
        # Verbatim _joint_log_likelihood arithmetic.
        jll = np.zeros((len(self.X_valid), n_classes))
        for c in range(n_classes):
            log_det = np.sum(np.log(2.0 * np.pi * var[c]))
            quad = np.sum((self.X_valid - theta[c]) ** 2 / var[c], axis=1)
            jll[:, c] = np.log(prior[c] + 1e-12) - 0.5 * (log_det + quad)
        predictions = classes[np.argmax(jll, axis=1)]
        return float(self.metric(self.y_valid, predictions)), 1, True

    def walk_steps(self, permutation):
        n_valid = len(self.y_valid)
        n_classes = len(self.classes)
        n_features = self.X_train.shape[1]
        counts = np.zeros(n_classes)
        sums = np.zeros((n_classes, n_features))
        sumsqs = np.zeros((n_classes, n_features))
        total_sum = np.zeros(n_features)
        total_sumsq = np.zeros(n_features)
        for pos, player in enumerate(permutation):
            x = self.X_train[player]
            code = self.encoded[player]
            x_sq = x * x
            counts[code] += 1
            sums[code] += x
            sumsqs[code] += x_sq
            total_sum += x
            total_sumsq += x_sq

            present = np.flatnonzero(counts)
            if len(present) < 2:
                constant = np.full(n_valid, self.classes[present[0]])
                yield float(self.metric(self.y_valid, constant)), 0, True
                continue
            size = pos + 1
            count = counts[present][:, None]
            theta = sums[present] / count
            var = np.maximum(sumsqs[present] / count - theta * theta, 0.0)
            global_mean = total_sum / size
            global_var = np.maximum(
                total_sumsq / size - global_mean * global_mean, 0.0)
            var = var + self.var_smoothing * max(global_var.max(), 1e-12)
            prior = counts[present] / size
            log_det = np.sum(np.log(2.0 * np.pi * var), axis=1)
            diff = self.X_valid[None, :, :] - theta[:, None, :]
            quad = np.sum(diff * diff / var[:, None, :], axis=2)
            jll = np.log(prior + 1e-12)[:, None] - 0.5 * (log_det[:, None]
                                                          + quad)
            predictions = self.classes[present[np.argmax(jll, axis=0)]]
            yield float(self.metric(self.y_valid, predictions)), 1, True


class LinearRegressionCoalitionKernel(CoalitionKernel):
    """Sherman–Morrison kernel for :class:`~repro.ml.LinearRegression`.

    The fitted model is the normal-equation solve ``(Xa'Xa + reg) theta
    = Xa'y`` over the coalition's (intercept-augmented) rows. Along a
    permutation walk each prefix adds one row ``x``, a rank-one update of
    the Gram matrix — so the kernel maintains ``(Xa'Xa + reg)^{-1}``
    directly via the Sherman–Morrison identity, turning each step into
    O(d²) instead of the retrain path's O(|S|·d²) refit.

    Accounting is honest about floating point: warmup steps (until the
    regularized Gram is invertible and well conditioned), refresh steps,
    and steps whose **randomized stability cross-check** against the
    direct solve deviates by more than ``stability_tol`` are answered by
    replaying :func:`repro.ml.linear._ridge_theta` on the prefix —
    bit-identical to the retrain path and counted in
    ``kernel.fallback_retrains``. Incremental steps solve from the
    maintained inverse; their parameter vectors can differ from the
    direct solve in trailing ulps, which label-quantized metrics (and
    the cross-check tolerance) absorb. Cross-check positions come from a
    seeded RNG, so walks stay deterministic on every backend.
    """

    name = "linear"

    def __init__(self, model: LinearRegression, X_train, y_train, X_valid,
                 y_valid, metric, *, stability_checks: int = 8,
                 stability_tol: float = 1e-6,
                 stability_seed: int = 1299721):
        self.alpha = float(model.alpha)
        self.fit_intercept = bool(model.fit_intercept)
        self.y = np.asarray(y_train, dtype=float)
        self.y_raw = y_train
        if self.fit_intercept:
            self.Xa = np.column_stack([X_train, np.ones(len(X_train))])
        else:
            self.Xa = np.asarray(X_train, dtype=float)
        self.X_valid = X_valid
        self.y_valid = y_valid
        self.metric = metric
        self.stability_checks = int(stability_checks)
        self.stability_tol = float(stability_tol)
        self.stability_seed = int(stability_seed)

    def _predict(self, theta):
        # Replays LinearRegression.predict exactly: X @ coef_ + intercept_.
        if self.fit_intercept:
            return self.X_valid @ theta[:-1] + float(theta[-1])
        return self.X_valid @ theta + 0.0

    def _direct_theta(self, Xa, y):
        return _ridge_theta(Xa, y, self.alpha, self.fit_intercept)

    def evaluate(self, subset, y_sub, classes):
        # A lone coalition has no incremental structure: replay the
        # direct solve (bit-identical, counted as a fallback retrain).
        theta = self._direct_theta(self.Xa[subset], self.y[subset])
        value = float(self.metric(self.y_valid, self._predict(theta)))
        return value, 1, False

    def walk_steps(self, permutation):
        n = len(permutation)
        n_valid = len(self.y_valid)
        D = self.Xa.shape[1]
        Xbuf = np.empty((n, D))
        ybuf = np.empty(n)
        reg = None
        if self.alpha > 0:
            reg = self.alpha * np.eye(D)
            if self.fit_intercept:
                reg[-1, -1] = 0.0
        rng = np.random.default_rng(self.stability_seed + n)
        check_positions: set[int] = set()
        if self.stability_checks > 0 and n > D + 2:
            check_positions = set(
                rng.integers(D + 2, n, size=self.stability_checks).tolist())
        inv = None
        rhs = np.zeros(D)
        distinct: set[float] = set()
        for pos, player in enumerate(permutation):
            x = self.Xa[player]
            yv = self.y[player]
            Xbuf[pos] = x
            ybuf[pos] = yv
            size = pos + 1
            rhs = rhs + yv * x
            distinct.add(float(yv))
            if inv is not None:
                # Sherman–Morrison rank-one insert of row x.
                u = inv @ x
                denom = 1.0 + float(x @ u)
                if denom > 1e-12:
                    inv = inv - np.outer(u, u) / denom
                else:
                    inv = None  # numerically degenerate insert: rebuild
            if len(distinct) < 2:
                # Retrain path: single distinct target -> constant
                # predictor of that value (np.unique fallback).
                constant = np.full(n_valid, self.y_raw[player])
                yield float(self.metric(self.y_valid, constant)), 0, True
                continue
            if inv is not None:
                theta = inv @ rhs
                if pos not in check_positions:
                    value = float(self.metric(self.y_valid,
                                              self._predict(theta)))
                    yield value, 1, True
                    continue
                direct = self._direct_theta(Xbuf[:size], ybuf[:size])
                if np.allclose(theta, direct, rtol=self.stability_tol,
                               atol=self.stability_tol):
                    value = float(self.metric(self.y_valid,
                                              self._predict(theta)))
                    yield value, 1, True
                    continue
                inv = None  # drifted past tolerance: refresh below
            # Warmup / refresh: replay the direct solve on the prefix —
            # bit-identical to the retrain path, counted as a fallback.
            theta = self._direct_theta(Xbuf[:size], ybuf[:size])
            value = float(self.metric(self.y_valid, self._predict(theta)))
            yield value, 1, False
            if inv is None and size > D:
                gram = Xbuf[:size].T @ Xbuf[:size]
                if reg is not None:
                    gram = gram + reg
                try:
                    if np.linalg.cond(gram) < 1e12:
                        inv = np.linalg.inv(gram)
                        rhs = Xbuf[:size].T @ ybuf[:size]
                except np.linalg.LinAlgError:
                    inv = None


class WarmStartLogisticKernel(CoalitionKernel):
    """Warm-start continuation kernel for
    :class:`~repro.ml.LogisticRegression`.

    Each prefix step carries the last solved coefficients forward and
    checks a **margin certificate before running any solver**: one
    gradient evaluation of the new prefix's (strongly convex)
    regularized softmax objective at the carried solution bounds its
    distance from the new true optimum by ``r = (||g|| + sqrt(Dk)·tol)
    / alpha`` (strong-convexity modulus ``alpha = 1 / (C·n)`` on the
    regularized coordinates; the ``tol`` term covers the cold solver's
    own convergence ball). Any validation point whose top-1/top-2 score
    margin exceeds ``2·safety·||x||·r`` keeps its argmax under both the
    carried solution and anything a cold solve could return — so the
    step is answered from the carried coefficients at the cost of one
    gradient pass, and certified steps produce bit-identical values for
    any label-based metric. The gradient norm grows as certified rows
    accumulate, so the certificate eventually fails; those steps — and
    the first non-degenerate prefix, and class-set growth — are replayed
    cold through the same solver helper ``fit`` uses (bit-identical) and
    counted in ``kernel.fallback_retrains``, resetting the continuation.
    The unregularized intercept direction makes the bound heuristic
    there; the ``safety`` factor plus the CI bit-identity gate backstop
    it.
    """

    name = "logistic_warm"

    def __init__(self, model: LogisticRegression, X_train, y_train,
                 X_valid, y_valid, metric, *, safety: float = 4.0):
        self.C = float(model.C)
        self.max_iter = int(model.max_iter)
        self.fit_intercept = bool(model.fit_intercept)
        self.tol = float(model.tol)
        self.safety = float(safety)
        self.X_train = X_train
        self.classes, self.encoded = np.unique(y_train, return_inverse=True)
        self.X_valid = X_valid
        self.y_valid = y_valid
        self.metric = metric
        norms_sq = np.sum(X_valid * X_valid, axis=1)
        self.valid_norms = np.sqrt(norms_sq + 1.0) if self.fit_intercept \
            else np.sqrt(norms_sq)

    def _solve(self, Xa, Y, w0):
        size = len(Xa)
        sample_weight = np.ones(size)
        total_weight = sample_weight.sum()
        alpha = 1.0 / (max(self.C, 1e-12) * total_weight)
        objective = _logistic_problem(Xa, Y, sample_weight, total_weight,
                                      alpha, self.fit_intercept)
        return _minimize(objective, w0, self.max_iter, self.tol), alpha

    def _scores(self, W):
        # Replays LogisticRegression.decision_function exactly.
        if self.fit_intercept:
            return self.X_valid @ W[:-1] + W[-1]
        return self.X_valid @ W + np.zeros(W.shape[1])

    def evaluate(self, subset, y_sub, classes):
        Xp = self.X_train[subset]
        sub_classes, encoded = np.unique(y_sub, return_inverse=True)
        size = len(subset)
        Xa = np.column_stack([Xp, np.ones(size)]) if self.fit_intercept \
            else Xp
        Y = np.zeros((size, len(sub_classes)))
        Y[np.arange(size), encoded] = 1.0
        result, _ = self._solve(Xa, Y, np.zeros(Xa.shape[1]
                                                * len(sub_classes)))
        W = result.x.reshape(Xa.shape[1], len(sub_classes))
        predictions = sub_classes[np.argmax(self._scores(W), axis=1)]
        return float(self.metric(self.y_valid, predictions)), 1, False

    def walk_steps(self, permutation):
        n = len(permutation)
        n_valid = len(self.y_valid)
        d = self.X_train.shape[1]
        D = d + 1 if self.fit_intercept else d
        Xabuf = np.empty((n, D))
        if self.fit_intercept:
            Xabuf[:, -1] = 1.0
        codebuf = np.empty(n, dtype=np.intp)
        counts = np.zeros(len(self.classes), dtype=np.intp)
        W_prev = None
        prev_present = None
        for pos, player in enumerate(permutation):
            Xabuf[pos, :d] = self.X_train[player]
            code = self.encoded[player]
            codebuf[pos] = code
            counts[code] += 1
            size = pos + 1
            present = np.flatnonzero(counts)
            if len(present) < 2:
                constant = np.full(n_valid, self.classes[present[0]])
                yield float(self.metric(self.y_valid, constant)), 0, True
                continue
            Xa = Xabuf[:size]
            k = len(present)
            sub_codes = np.searchsorted(present, codebuf[:size])
            Y = np.zeros((size, k))
            Y[np.arange(size), sub_codes] = 1.0
            sub_classes = self.classes[present]
            if W_prev is not None:
                if len(prev_present) == k and np.array_equal(prev_present,
                                                             present):
                    W_cand = W_prev
                else:
                    # Class set grew: keep the old columns, zero the new
                    # (the fresh class's gradient then sinks the
                    # certificate, forcing the cold replay below).
                    W_cand = np.zeros((D, k))
                    W_cand[:, np.searchsorted(present,
                                              prev_present)] = W_prev
                # Certificate first — one gradient evaluation of the new
                # prefix's objective at the carried solution, no solver.
                alpha = 1.0 / (max(self.C, 1e-12) * size)
                objective = _logistic_problem(Xa, Y, np.ones(size),
                                              float(size), alpha,
                                              self.fit_intercept)
                _, grad = objective(W_cand.ravel())
                g2 = float(np.linalg.norm(grad))
                radius = self.safety * (g2 + np.sqrt(D * k) * self.tol) \
                    / alpha
                scores = self._scores(W_cand)
                part = np.partition(scores, k - 2, axis=1)
                margin = part[:, -1] - part[:, -2]
                if np.all(margin > 2.0 * self.valid_norms * radius):
                    predictions = sub_classes[np.argmax(scores, axis=1)]
                    W_prev, prev_present = W_cand, present
                    yield float(self.metric(self.y_valid,
                                            predictions)), 1, True
                    continue
            # Cold replay: first non-degenerate prefix, or margins too
            # tight for the carried solution's certificate —
            # bit-identical to the retrain path (same solver helper,
            # zero start).
            result, _ = self._solve(Xa, Y, np.zeros(D * k))
            W = result.x.reshape(D, k)
            predictions = sub_classes[np.argmax(self._scores(W), axis=1)]
            W_prev, prev_present = W, present
            yield float(self.metric(self.y_valid, predictions)), 1, False


class WarmStartLinearSVCKernel(CoalitionKernel):
    """Warm-start continuation kernel for :class:`~repro.ml.LinearSVC`.

    Same certificate-first continuation scheme as
    :class:`WarmStartLogisticKernel`, for the binary squared-hinge SVM:
    the L2 term gives strong-convexity modulus 1 on the regularized
    coordinates, so the carried solution lies within ``r = (||g|| +
    sqrt(D)·tol)`` of the new prefix's optimum — ``g`` evaluated at the
    carried coefficients, no solver run — and any validation point with
    ``|decision| > safety·||x||·r`` keeps its sign, hence its predicted
    label, under anything a cold solve could return. Added rows outside
    the carried margin contribute nothing to the gradient, so certified
    stretches are long on separable data; uncertified steps replay the
    cold solve (bit-identical to the retrain path). Prefixes whose class
    count is not exactly 2 replicate the retrain path's
    ``ValidationError`` fallback (coalition-majority constant predictor,
    no training counted).
    """

    name = "linear_svc_warm"

    def __init__(self, model: LinearSVC, X_train, y_train, X_valid,
                 y_valid, metric, *, safety: float = 4.0):
        self.C = float(model.C)
        self.max_iter = int(model.max_iter)
        self.fit_intercept = bool(model.fit_intercept)
        self.tol = float(model.tol)
        self.safety = float(safety)
        self.X_train = X_train
        self.classes, self.encoded = np.unique(y_train, return_inverse=True)
        self.X_valid = X_valid
        self.y_valid = y_valid
        self.metric = metric
        norms_sq = np.sum(X_valid * X_valid, axis=1)
        self.valid_norms = np.sqrt(norms_sq + 1.0) if self.fit_intercept \
            else np.sqrt(norms_sq)

    def _solve(self, Xa, signs, w0):
        sample_weight = np.ones(len(Xa))
        objective = _svc_problem(Xa, signs, sample_weight, self.C,
                                 self.fit_intercept)
        return _minimize(objective, w0, self.max_iter, self.tol)

    def _decision(self, w):
        # Replays LinearSVC.decision_function exactly.
        if self.fit_intercept:
            return self.X_valid @ w[:-1] + float(w[-1])
        return self.X_valid @ w + 0.0

    def _majority_value(self, y_sub):
        sub_classes, counts = np.unique(y_sub, return_counts=True)
        constant = np.full(len(self.y_valid),
                           _majority_label(sub_classes, counts))
        return float(self.metric(self.y_valid, constant))

    def evaluate(self, subset, y_sub, classes):
        if len(classes) != 2:
            # Retrain path: LinearSVC.fit raises (binary only), the
            # utility falls back to the coalition's majority class.
            return self._majority_value(y_sub), 0, True
        Xp = self.X_train[subset]
        _, encoded = np.unique(y_sub, return_inverse=True)
        signs = np.where(encoded == 1, 1.0, -1.0)
        size = len(subset)
        Xa = np.column_stack([Xp, np.ones(size)]) if self.fit_intercept \
            else Xp
        result = self._solve(Xa, signs, np.zeros(Xa.shape[1]))
        decision = self._decision(result.x)
        predictions = classes[(decision > 0).astype(int)]
        return float(self.metric(self.y_valid, predictions)), 1, False

    def walk_steps(self, permutation):
        n = len(permutation)
        n_valid = len(self.y_valid)
        d = self.X_train.shape[1]
        D = d + 1 if self.fit_intercept else d
        Xabuf = np.empty((n, D))
        if self.fit_intercept:
            Xabuf[:, -1] = 1.0
        codebuf = np.empty(n, dtype=np.intp)
        counts = np.zeros(len(self.classes), dtype=np.intp)
        w_prev = None
        prev_present = None
        for pos, player in enumerate(permutation):
            Xabuf[pos, :d] = self.X_train[player]
            code = self.encoded[player]
            codebuf[pos] = code
            counts[code] += 1
            size = pos + 1
            present = np.flatnonzero(counts)
            if len(present) < 2:
                constant = np.full(n_valid, self.classes[present[0]])
                yield float(self.metric(self.y_valid, constant)), 0, True
                continue
            if len(present) != 2:
                # Retrain path: fit raises (binary only) -> majority.
                sub_counts = counts[present]
                constant = np.full(n_valid, _majority_label(
                    self.classes[present], sub_counts))
                yield float(self.metric(self.y_valid, constant)), 0, True
                continue
            Xa = Xabuf[:size]
            sub_codes = np.searchsorted(present, codebuf[:size])
            signs = np.where(sub_codes == 1, 1.0, -1.0)
            sub_classes = self.classes[present]
            if w_prev is not None and np.array_equal(prev_present, present):
                # Certificate first — one gradient evaluation of the new
                # prefix's objective at the carried solution, no solver.
                objective = _svc_problem(Xa, signs, np.ones(size), self.C,
                                         self.fit_intercept)
                _, grad = objective(w_prev)
                g2 = float(np.linalg.norm(grad))
                radius = self.safety * (g2 + np.sqrt(D) * self.tol)
                decision = self._decision(w_prev)
                if np.all(np.abs(decision) > self.valid_norms * radius):
                    predictions = sub_classes[(decision > 0).astype(int)]
                    yield float(self.metric(self.y_valid,
                                            predictions)), 1, True
                    continue
            # Cold replay — bit-identical to the retrain path.
            result = self._solve(Xa, signs, np.zeros(D))
            decision = self._decision(result.x)
            predictions = sub_classes[(decision > 0).astype(int)]
            w_prev, prev_present = result.x, present
            yield float(self.metric(self.y_valid, predictions)), 1, False


class PipelineCoalitionKernel(CoalitionKernel):
    """Kernel for :class:`~repro.ml.Pipeline` utilities whose
    preprocessing is coalition-invariant.

    When every pre-step declares ``coalition_invariant`` (its fitted
    transform is independent of which training rows it saw, and slicing
    commutes with transforming — e.g. a ``rowwise``
    :class:`~repro.ml.FunctionTransformer`), the pipeline's coalition
    game factorizes: transform ``X_train`` / ``X_valid`` **once**, then
    play the inner model's game on the transformed features. This kernel
    wraps whatever kernel the inner model resolves to and delegates
    evaluation, walks, and the closed-form Shapley shortcut to it. The
    builder declines (retrain path) when any pre-step is not invariant
    or the inner model has no kernel.
    """

    def __init__(self, inner: CoalitionKernel):
        self.inner = inner
        self.name = f"pipeline[{inner.name}]"

    def evaluate(self, subset, y_sub, classes):
        return self.inner.evaluate(subset, y_sub, classes)

    def walk_steps(self, permutation):
        return self.inner.walk_steps(permutation)

    def exact_shapley(self):
        return self.inner.exact_shapley()


# ---------------------------------------------------------------------------
# Builders and the dispatch registry
# ---------------------------------------------------------------------------

def _build_knn_kernel(model, X_train, y_train, X_valid, y_valid, metric):
    if model.n_neighbors < 1 or model.metric not in ("euclidean",
                                                     "manhattan", "cosine"):
        return None  # let the retrain path raise/fall back as today
    return KNNCoalitionKernel(model, X_train, y_train, X_valid, y_valid,
                              metric)


def _build_gaussian_nb_kernel(model, X_train, y_train, X_valid, y_valid,
                              metric):
    return GaussianNBCoalitionKernel(model, X_train, y_train, X_valid,
                                     y_valid, metric)


def _build_linear_regression_kernel(model, X_train, y_train, X_valid,
                                    y_valid, metric):
    if model.alpha < 0:
        return None
    return LinearRegressionCoalitionKernel(model, X_train, y_train, X_valid,
                                           y_valid, metric)


def _build_logistic_kernel(model, X_train, y_train, X_valid, y_valid,
                           metric):
    return WarmStartLogisticKernel(model, X_train, y_train, X_valid,
                                   y_valid, metric)


def _build_linear_svc_kernel(model, X_train, y_train, X_valid, y_valid,
                             metric):
    return WarmStartLinearSVCKernel(model, X_train, y_train, X_valid,
                                    y_valid, metric)


def _build_pipeline_kernel(model, X_train, y_train, X_valid, y_valid,
                           metric):
    from repro.ml.base import clone

    for name, step in model.steps[:-1]:
        if not getattr(step, "coalition_invariant", False):
            return None  # subset-dependent preprocessing: retrain path
    Xt_train, Xt_valid = X_train, X_valid
    for name, step in model.steps[:-1]:
        step = clone(step)
        Xt_train = step.fit_transform(Xt_train, y_train)
        Xt_valid = step.transform(Xt_valid)
    inner, _ = resolve_kernel(model.steps[-1][1], Xt_train, y_train,
                              Xt_valid, y_valid, metric)
    if inner is None:
        return None
    return PipelineCoalitionKernel(inner)


#: Builder registry: model class -> builder(model, X_train, y_train,
#: X_valid, y_valid, metric) -> CoalitionKernel | None. Lookup walks the
#: model's MRO; the most-derived registration (builder or fallback) wins.
_KERNEL_BUILDERS: dict[type, object] = {
    KNeighborsClassifier: _build_knn_kernel,
    GaussianNB: _build_gaussian_nb_kernel,
    LinearRegression: _build_linear_regression_kernel,
    LogisticRegression: _build_logistic_kernel,
    LinearSVC: _build_linear_svc_kernel,
    Pipeline: _build_pipeline_kernel,
}

#: Documented fallback registrations: model class -> reason the retrain
#: path is the intended behavior (surfaced by resolve_kernel and the
#: utility's observability plumbing, so auto-dispatch is total).
_KERNEL_FALLBACKS: dict[type, str] = {}


def register_kernel(model_type: type, builder) -> None:
    """Register an incremental kernel builder for a model class.

    ``builder(model, X_train, y_train, X_valid, y_valid, metric)`` must
    return a :class:`CoalitionKernel` honouring the exactness contract,
    or ``None`` to decline (the utility then uses the retrain path).
    Dispatch walks the model's MRO, most-derived class first, so
    subclasses inherit the closest ancestor's registration unless they
    register a builder of their own — or opt out explicitly with
    :func:`register_fallback`.
    """
    if not isinstance(model_type, type):
        raise ValidationError("model_type must be a class")
    if not callable(builder):
        raise ValidationError("builder must be callable")
    _KERNEL_BUILDERS[model_type] = builder


def register_fallback(model_type: type, reason: str) -> None:
    """Declare that a model class intentionally uses the retrain path.

    A fallback registration makes auto-dispatch *total*: every model in
    the zoo resolves to either a kernel or a documented reason, and an
    unregistered class is a visible gap rather than a silent slow path.
    Fallbacks participate in MRO dispatch like builders do, so they also
    let a subclass opt out of an ancestor's kernel.
    """
    if not isinstance(model_type, type):
        raise ValidationError("model_type must be a class")
    if not isinstance(reason, str) or not reason:
        raise ValidationError("reason must be a non-empty string")
    _KERNEL_FALLBACKS[model_type] = reason


register_fallback(
    DecisionTreeClassifier,
    "greedy impurity splits re-rank under any row change; every coalition "
    "needs a fresh tree, so the retrain path is the documented fallback")
register_fallback(
    RandomForestClassifier,
    "bootstrap resampling and greedy splits both depend on the exact row "
    "set; the retrain path is the documented fallback")


def resolve_kernel(model, X_train, y_train, X_valid, y_valid, metric):
    """Resolve ``model``'s incremental kernel by walking its MRO.

    Returns ``(kernel_or_None, info)`` where ``info`` describes how
    dispatch concluded: ``resolution`` is ``"kernel"`` (an incremental
    kernel was built), ``"declined"`` (a registered builder rejected
    these hyperparameters), ``"fallback"`` (the class carries a
    documented :func:`register_fallback` reason), or ``"unregistered"``
    (a registry gap — worth registering one way or the other).
    """
    for cls in type(model).__mro__:
        builder = _KERNEL_BUILDERS.get(cls)
        if builder is not None:
            kernel = builder(model, X_train, y_train, X_valid, y_valid,
                             metric)
            if kernel is not None:
                return kernel, {"resolution": "kernel",
                                "kernel": kernel.name,
                                "registered_for": cls.__name__}
            return None, {"resolution": "declined",
                          "registered_for": cls.__name__,
                          "reason": "builder declined (unsupported "
                                    "hyperparameters for the fast path)"}
        reason = _KERNEL_FALLBACKS.get(cls)
        if reason is not None:
            return None, {"resolution": "fallback",
                          "registered_for": cls.__name__,
                          "reason": reason}
    return None, {"resolution": "unregistered", "registered_for": None,
                  "reason": "no kernel or fallback registered for "
                            f"{type(model).__name__}"}


def build_kernel(model, X_train, y_train, X_valid, y_valid, metric):
    """Build the incremental kernel for ``model``, if any.

    Backwards-compatible wrapper over :func:`resolve_kernel` that drops
    the resolution info. Returns ``None`` when no kernel applies —
    callers then use the retrain path unchanged.
    """
    return resolve_kernel(model, X_train, y_train, X_valid, y_valid,
                          metric)[0]
