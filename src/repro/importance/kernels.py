"""Incremental coalition kernels: O(update) evaluation instead of O(retrain).

Every importance and cleaning method in the library bottoms out in
``Utility.evaluate``, which by default refits the model from scratch for
every coalition — the dominant cost when scaling a data-debugging
session. For some model classes that refit is provably unnecessary: the
fitted state is a simple function of per-example contributions, so the
value of a coalition (or of every prefix of a permutation) can be
maintained incrementally.

A :class:`CoalitionKernel` packages that insight for one ``(model,
X_train, y_train, X_valid, y_valid, metric)`` game:

- :meth:`CoalitionKernel.evaluate` scores one arbitrary coalition from
  state precomputed **once per utility** (no refit, no re-validation).
- :meth:`CoalitionKernel.walk_steps` walks a permutation's prefix chain
  by **incremental insertion**, paying O(update) per step instead of a
  full refit per prefix.

Two exact kernels ship built in:

- :class:`KNNCoalitionKernel` — precomputes the full ``n_valid x
  n_train`` distance matrix, evaluates coalitions by masked top-k
  selection, and walks permutations by inserting one training point at a
  time into per-validation-point sorted neighbor lists (O(k·n_valid) per
  prefix step).
- :class:`GaussianNBCoalitionKernel` — maintains per-class running
  sufficient statistics (count, sum, sum of squares) so adding one row
  to a coalition is an O(d) update.

**Exactness contract.** Kernel scores are bit-identical to the retrain
path: degenerate coalitions (empty / single-class / ``|S| < k``) follow
the same fallbacks, ties are broken by the same stable position order,
and the reported "training" counts match what the retrain path would
have recorded — so FingerprintCache keys, truncation and convergence
behavior, and downstream reports are unchanged. (The one theoretical
caveat: distances sliced from the precomputed matrix can differ from a
per-subset recomputation in the last ulp, which could only matter if two
*distinct* training points were equidistant from a validation point to
within ~2 ulp; *exact* ties — duplicated rows — are resolved identically
by both paths. See ``docs/PERFORMANCE.md``.)

Models without a registered kernel transparently fall back to the
retrain path. Register kernels for new model classes with
:func:`register_kernel`.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neighbors import KNeighborsClassifier, pairwise_distances


class CoalitionKernel:
    """Exact incremental evaluator for one coalition game.

    Subclasses precompute whatever per-game state makes coalition
    evaluation cheap (distance matrices, sufficient statistics) and must
    honour the exactness contract: values bit-identical to cloning and
    refitting the model, and ``trained`` flags matching what the retrain
    path would report. Kernels must be picklable (they ship to process
    workers once, inside the utility core) and treat their state as
    read-only after construction (thread workers share it).
    """

    #: Short identifier used in reports and observability counters.
    name = "kernel"

    def evaluate(self, subset: np.ndarray, y_sub: np.ndarray,
                 classes: np.ndarray) -> tuple[float, int]:
        """Value of one coalition with >= 2 classes.

        ``y_sub`` is ``y_train[subset]`` and ``classes`` its sorted
        unique labels (both already computed by the caller). Returns
        ``(value, trained)`` where ``trained`` is 1 iff the retrain path
        would have fit a model for this coalition.
        """
        raise NotImplementedError

    def walk_steps(self, permutation: np.ndarray):
        """Yield ``(value, trained, True)`` for each prefix of
        ``permutation``, maintaining incremental state between steps.

        Prefix ``p`` covers ``permutation[:p + 1]``; degenerate prefixes
        (single class, ``|S| < k``) must reproduce the retrain path's
        constant-predictor fallbacks exactly.
        """
        raise NotImplementedError


def _majority_label(classes: np.ndarray, counts: np.ndarray):
    """First-maximum majority label — identical tie-break to
    ``np.unique`` + ``np.argmax`` on the subset's labels."""
    return classes[np.argmax(counts)]


class KNNCoalitionKernel(CoalitionKernel):
    """Exact k-NN coalition kernel over a precomputed distance matrix.

    Fitting :class:`~repro.ml.neighbors.KNeighborsClassifier` only
    stores the coalition's rows; all prediction work happens in
    ``kneighbors``. The kernel therefore precomputes the full
    ``n_valid x n_train`` distance matrix once and evaluates any
    coalition by selecting each validation point's k nearest members —
    no refit, no per-coalition ``pairwise_distances``.

    Permutation walks go further: each validation point keeps a sorted
    list of its k best neighbors *within the current prefix*, and adding
    one training point is a single vectorized insertion (O(k) per
    validation point) — the per-step cost is independent of the prefix
    size.
    """

    name = "knn"

    def __init__(self, model: KNeighborsClassifier, X_train, y_train,
                 X_valid, y_valid, metric):
        self.k = int(model.n_neighbors)
        self.distances = pairwise_distances(X_valid, X_train,
                                            metric=model.metric)
        self.classes, self.encoded = np.unique(y_train, return_inverse=True)
        self.y_valid = y_valid
        self.metric = metric

    def evaluate(self, subset, y_sub, classes):
        if self.k > len(subset):
            # The retrain path's fit raises ValidationError here and
            # falls back to the coalition's majority class.
            sub_classes, counts = np.unique(y_sub, return_counts=True)
            constant = np.full(len(self.y_valid),
                               _majority_label(sub_classes, counts))
            return float(self.metric(self.y_valid, constant)), 0
        dist = self.distances[:, subset]
        # Stable (distance, position-in-subset) order — exactly
        # KNeighborsClassifier.kneighbors on the coalition's rows.
        order = np.lexsort(
            (np.broadcast_to(np.arange(dist.shape[1]), dist.shape), dist),
            axis=1)[:, : self.k]
        neighbor_codes = self.encoded[subset][order]
        present_codes = np.searchsorted(self.classes, classes)
        votes = (neighbor_codes[:, :, None]
                 == present_codes[None, None, :]).sum(axis=1)
        predictions = classes[np.argmax(votes, axis=1)]
        return float(self.metric(self.y_valid, predictions)), 1

    def walk_steps(self, permutation):
        k = self.k
        n_valid = len(self.y_valid)
        # Per-validation-point best-k lists over the current prefix,
        # padded with +inf; `codes` holds the neighbors' encoded labels.
        best_dist = np.full((n_valid, k), np.inf)
        best_code = np.zeros((n_valid, k), dtype=np.intp)
        counts = np.zeros(len(self.classes), dtype=np.intp)
        column = np.arange(k)
        for pos, player in enumerate(permutation):
            d = self.distances[:, player]
            code = self.encoded[player]
            # Stable insertion: after all entries with distance <= d,
            # matching lexsort's position tie-break.
            at = (best_dist <= d[:, None]).sum(axis=1)[:, None]
            inserted = at < k
            rolled_dist = np.empty_like(best_dist)
            rolled_dist[:, 1:] = best_dist[:, :-1]
            rolled_code = np.empty_like(best_code)
            rolled_code[:, 1:] = best_code[:, :-1]
            rolled_dist[:, 0] = np.inf
            rolled_code[:, 0] = 0
            new_dist = np.where(column < at, best_dist,
                                np.where(column == at, d[:, None],
                                         rolled_dist))
            new_code = np.where(column < at, best_code,
                                np.where(column == at, code, rolled_code))
            best_dist = np.where(inserted, new_dist, best_dist)
            best_code = np.where(inserted, new_code, best_code)
            counts[code] += 1

            present = np.flatnonzero(counts)
            if len(present) < 2:
                constant = np.full(n_valid, self.classes[present[0]])
                yield float(self.metric(self.y_valid, constant)), 0, True
            elif pos + 1 < k:
                majority = _majority_label(self.classes[present],
                                           counts[present])
                constant = np.full(n_valid, majority)
                yield float(self.metric(self.y_valid, constant)), 0, True
            else:
                votes = (best_code[:, :, None]
                         == present[None, None, :]).sum(axis=1)
                predictions = self.classes[present[np.argmax(votes, axis=1)]]
                yield float(self.metric(self.y_valid, predictions)), 1, True


class GaussianNBCoalitionKernel(CoalitionKernel):
    """Exact Gaussian naive Bayes kernel via sufficient statistics.

    A fitted :class:`~repro.ml.naive_bayes.GaussianNB` is fully
    determined by per-class ``(count, mean, variance)`` plus the global
    variance-smoothing term. Coalition evaluation replays the fit's own
    arithmetic on the coalition's rows (skipping cloning and input
    re-validation); permutation walks maintain per-class running
    ``(count, sum, sum-of-squares)`` so each prefix step is an O(d)
    update followed by one vectorized scoring pass.
    """

    name = "gaussian_nb"

    def __init__(self, model: GaussianNB, X_train, y_train, X_valid,
                 y_valid, metric):
        self.var_smoothing = float(model.var_smoothing)
        self.X_train = X_train
        self.classes, self.encoded = np.unique(y_train, return_inverse=True)
        self.X_valid = X_valid
        self.y_valid = y_valid
        self.metric = metric

    def evaluate(self, subset, y_sub, classes):
        X_sub = self.X_train[subset]
        _, encoded = np.unique(y_sub, return_inverse=True)
        n_classes, n_features = len(classes), X_sub.shape[1]
        # Verbatim GaussianNB.fit arithmetic — bit-identical parameters.
        theta = np.zeros((n_classes, n_features))
        var = np.zeros((n_classes, n_features))
        prior = np.zeros(n_classes)
        for c in range(n_classes):
            rows = X_sub[encoded == c]
            theta[c] = rows.mean(axis=0)
            var[c] = rows.var(axis=0)
            prior[c] = len(rows) / len(X_sub)
        var += self.var_smoothing * max(X_sub.var(axis=0).max(), 1e-12)
        # Verbatim _joint_log_likelihood arithmetic.
        jll = np.zeros((len(self.X_valid), n_classes))
        for c in range(n_classes):
            log_det = np.sum(np.log(2.0 * np.pi * var[c]))
            quad = np.sum((self.X_valid - theta[c]) ** 2 / var[c], axis=1)
            jll[:, c] = np.log(prior[c] + 1e-12) - 0.5 * (log_det + quad)
        predictions = classes[np.argmax(jll, axis=1)]
        return float(self.metric(self.y_valid, predictions)), 1

    def walk_steps(self, permutation):
        n_valid = len(self.y_valid)
        n_classes = len(self.classes)
        n_features = self.X_train.shape[1]
        counts = np.zeros(n_classes)
        sums = np.zeros((n_classes, n_features))
        sumsqs = np.zeros((n_classes, n_features))
        total_sum = np.zeros(n_features)
        total_sumsq = np.zeros(n_features)
        for pos, player in enumerate(permutation):
            x = self.X_train[player]
            code = self.encoded[player]
            x_sq = x * x
            counts[code] += 1
            sums[code] += x
            sumsqs[code] += x_sq
            total_sum += x
            total_sumsq += x_sq

            present = np.flatnonzero(counts)
            if len(present) < 2:
                constant = np.full(n_valid, self.classes[present[0]])
                yield float(self.metric(self.y_valid, constant)), 0, True
                continue
            size = pos + 1
            count = counts[present][:, None]
            theta = sums[present] / count
            var = np.maximum(sumsqs[present] / count - theta * theta, 0.0)
            global_mean = total_sum / size
            global_var = np.maximum(
                total_sumsq / size - global_mean * global_mean, 0.0)
            var = var + self.var_smoothing * max(global_var.max(), 1e-12)
            prior = counts[present] / size
            log_det = np.sum(np.log(2.0 * np.pi * var), axis=1)
            diff = self.X_valid[None, :, :] - theta[:, None, :]
            quad = np.sum(diff * diff / var[:, None, :], axis=2)
            jll = np.log(prior + 1e-12)[:, None] - 0.5 * (log_det[:, None]
                                                          + quad)
            predictions = self.classes[present[np.argmax(jll, axis=0)]]
            yield float(self.metric(self.y_valid, predictions)), 1, True


def _build_knn_kernel(model, X_train, y_train, X_valid, y_valid, metric):
    if model.n_neighbors < 1 or model.metric not in ("euclidean",
                                                     "manhattan", "cosine"):
        return None  # let the retrain path raise/fall back as today
    return KNNCoalitionKernel(model, X_train, y_train, X_valid, y_valid,
                              metric)


def _build_gaussian_nb_kernel(model, X_train, y_train, X_valid, y_valid,
                              metric):
    return GaussianNBCoalitionKernel(model, X_train, y_train, X_valid,
                                     y_valid, metric)


#: Exact-type registry: model class -> builder(model, X_train, y_train,
#: X_valid, y_valid, metric) -> CoalitionKernel | None.
_KERNEL_BUILDERS: dict[type, object] = {
    KNeighborsClassifier: _build_knn_kernel,
    GaussianNB: _build_gaussian_nb_kernel,
}


def register_kernel(model_type: type, builder) -> None:
    """Register an incremental kernel builder for a model class.

    ``builder(model, X_train, y_train, X_valid, y_valid, metric)`` must
    return a :class:`CoalitionKernel` honouring the exactness contract,
    or ``None`` to decline (the utility then uses the retrain path).
    Matching is by exact type — subclasses may override ``predict`` and
    must register themselves explicitly.
    """
    if not isinstance(model_type, type):
        raise ValidationError("model_type must be a class")
    if not callable(builder):
        raise ValidationError("builder must be callable")
    _KERNEL_BUILDERS[model_type] = builder


def build_kernel(model, X_train, y_train, X_valid, y_valid, metric):
    """Build the incremental kernel for ``model``'s exact type, if any.

    Returns ``None`` when no kernel is registered or the registered
    builder declines (unsupported hyperparameters) — callers then use
    the retrain path unchanged.
    """
    builder = _KERNEL_BUILDERS.get(type(model))
    if builder is None:
        return None
    return builder(model, X_train, y_train, X_valid, y_valid, metric)
