"""Data importance for data-error detection (Section 2.1 of the paper).

Every method assigns each training example a *data value*: its estimated
contribution to downstream model quality on a validation set. The shared
convention is **lower value = more harmful**, so mislabeled or corrupted
examples sink to the bottom of the ranking and ``np.argsort(values)[:k]``
yields the top-k cleaning candidates (exactly the usage in Figure 2).

Methods implemented (paper references in brackets):

- :func:`leave_one_out` — the LOO baseline.
- :class:`MonteCarloShapley` — truncated Monte-Carlo Data Shapley [21].
- :func:`knn_shapley` — exact, closed-form Shapley for a k-NN proxy [33].
- :class:`DataBanzhaf` — Banzhaf values via the MSR estimator [80].
- :class:`BetaShapley` — Beta(α, β)-weighted semivalues [43].
- :func:`influence_scores` — influence functions for logistic models [41].
- :func:`confident_learning_scores` — label-noise scores via confident
  learning [59].
- :func:`aum_scores` — area-under-the-margin training dynamics [63].
"""

from repro.importance.banzhaf import DataBanzhaf
from repro.importance.base import Utility
from repro.importance.beta_shapley import BetaShapley
from repro.importance.kernels import (
    CoalitionKernel,
    GaussianNBCoalitionKernel,
    KNNCoalitionKernel,
    LinearRegressionCoalitionKernel,
    PipelineCoalitionKernel,
    WarmStartLinearSVCKernel,
    WarmStartLogisticKernel,
    build_kernel,
    register_fallback,
    register_kernel,
    resolve_kernel,
)
from repro.importance.evaluation import (
    cleaning_curve,
    detection_precision_at_k,
    detection_recall_at_k,
    detection_report,
    format_report,
    rank_lowest,
)
from repro.importance.gradient_similarity import gradient_similarity_scores
from repro.importance.influence import influence_scores
from repro.importance.knn_shapley import knn_shapley, knn_shapley_core
from repro.importance.loo import leave_one_out
from repro.importance.rag import RetrievalAugmentedClassifier, rag_corpus_importance
from repro.importance.shapley_mc import MonteCarloShapley
from repro.importance.uncertainty import aum_scores, confident_learning_scores

__all__ = [
    "Utility",
    "CoalitionKernel",
    "KNNCoalitionKernel",
    "GaussianNBCoalitionKernel",
    "LinearRegressionCoalitionKernel",
    "WarmStartLogisticKernel",
    "WarmStartLinearSVCKernel",
    "PipelineCoalitionKernel",
    "build_kernel",
    "resolve_kernel",
    "register_kernel",
    "register_fallback",
    "leave_one_out",
    "MonteCarloShapley",
    "knn_shapley",
    "knn_shapley_core",
    "DataBanzhaf",
    "BetaShapley",
    "influence_scores",
    "gradient_similarity_scores",
    "RetrievalAugmentedClassifier",
    "rag_corpus_importance",
    "confident_learning_scores",
    "aum_scores",
    "detection_precision_at_k",
    "detection_recall_at_k",
    "detection_report",
    "format_report",
    "cleaning_curve",
    "rank_lowest",
]
