"""Influence functions for logistic regression (Koh & Liang, ref [41]).

The influence of up-weighting training point ``z`` on the validation loss
is the first-order approximation::

    I(z) = - (1/m) Σ_val ∇_θ L(z_val, θ̂)ᵀ  H⁻¹  ∇_θ L(z, θ̂)

where H is the (regularized) Hessian of the training objective at the
fitted parameters. A *positive* I(z) means up-weighting ``z`` increases
validation loss — i.e. the point is harmful. To match the library-wide
lower-is-more-harmful convention, this module returns ``-I(z)``, so
harmful points again receive the lowest scores.

Implemented for binary :class:`repro.ml.LogisticRegression`; the Hessian
of the cross-entropy with L2 regularization is ``Xᵀ diag(p(1-p)) X / n +
λI``, inverted directly (d is small in the tutorial's settings).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_X_y
from repro.ml.linear import LogisticRegression


def _augment(X: np.ndarray) -> np.ndarray:
    return np.column_stack([X, np.ones(len(X))])


def influence_scores(model: LogisticRegression, X_train, y_train,
                     X_valid, y_valid, *, damping: float = 1e-3) -> np.ndarray:
    """Influence-function values for every training example.

    Parameters
    ----------
    model:
        A *fitted* binary :class:`LogisticRegression`.
    damping:
        Extra ridge added to the Hessian before inversion (keeps it
        positive definite when the regularizer is weak).

    Returns
    -------
    np.ndarray
        One score per training point, lower = more harmful.
    """
    if not isinstance(model, LogisticRegression):
        raise ValidationError("influence_scores requires a LogisticRegression")
    if not hasattr(model, "coef_"):
        raise ValidationError("model must be fitted first")
    if len(model.classes_) != 2:
        raise ValidationError("influence_scores supports binary models only")
    X_train, y_train = check_X_y(X_train, y_train)
    X_valid, y_valid = check_X_y(X_valid, y_valid)

    # Binary parameterization: single weight vector w with p = sigmoid(Xw).
    # The fitted softmax model has two symmetric columns; their difference
    # is the equivalent binary weight vector.
    w = (model.coef_[1] - model.coef_[0])
    b = float(model.intercept_[1] - model.intercept_[0])
    theta = np.concatenate([w, [b]])

    Xa_train = _augment(X_train)
    Xa_valid = _augment(X_valid)
    t_train = (y_train == model.classes_[1]).astype(float)
    t_valid = (y_valid == model.classes_[1]).astype(float)

    p_train = 1.0 / (1.0 + np.exp(-Xa_train @ theta))
    p_valid = 1.0 / (1.0 + np.exp(-Xa_valid @ theta))

    n, d = Xa_train.shape
    # Same regularization scale as LogisticRegression.fit: mean loss plus
    # ||w||^2 / (2 C n).
    lam = 1.0 / (max(model.C, 1e-12) * n)
    weights = p_train * (1.0 - p_train)
    hessian = (Xa_train * weights[:, None]).T @ Xa_train / n \
        + (lam + damping) * np.eye(d)

    # Per-point training gradients: (p - t) x  (cross-entropy).
    grad_train = (p_train - t_train)[:, None] * Xa_train
    # Mean validation gradient.
    grad_valid = ((p_valid - t_valid)[:, None] * Xa_valid).mean(axis=0)

    h_inv_v = np.linalg.solve(hessian, grad_valid)
    # Koh & Liang's I(z) = -g_valᵀ H⁻¹ g_z (harmful => I(z) > 0); the data
    # value is -I(z) = g_zᵀ H⁻¹ g_val, negative for harmful points.
    return grad_train @ h_inv_v
