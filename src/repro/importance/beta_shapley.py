"""Beta Shapley semivalues (Kwon & Zou, paper ref [43]).

Beta(α, β) Shapley generalizes the Shapley value by reweighting marginal
contributions by coalition size. Shapley weights all sizes equally;
Beta(α, β) with β > α emphasizes *small* coalitions, where the signal of a
mislabeled point is strongest and the estimator's noise is lowest —
Beta(16, 1) is the paper's recommended noise-reduced default for
mislabeled-data detection. Beta(1, 1) recovers the Shapley value exactly.

Estimation reuses permutation sampling: under a uniform random
permutation each coalition size j ∈ {0..n-1} occurs with probability 1/n,
so weighting the observed marginal at size j by ``n * p(j)`` — where
``p(j)`` is the Beta semivalue's size distribution — yields an unbiased
estimate of the semivalue.
"""

from __future__ import annotations

import contextlib

import numpy as np
from scipy.special import betaln, gammaln

from repro.core.exceptions import ValidationError
from repro.core.rng import spawn_rngs
from repro.importance.base import (
    Utility,
    clt_stderr,
    emit_importance_run,
    hex_floats,
    open_checkpoint_session,
    partial_every,
    require_checkpoint_seed,
    resolve_partial,
    unhex_floats,
)
from repro.observe.observer import resolve_observer
from repro.runtime.cache import fingerprint


def beta_size_weights(n: int, alpha: float, beta: float) -> np.ndarray:
    """The probability that a Beta(α, β) semivalue draws coalition size j.

    Derived from the semivalue representation: the weight of a specific
    coalition S with |S| = j is ``w(j) = Beta(j+β, n-j-1+α) / Beta(α, β)``
    and there are C(n-1, j) such coalitions, so
    ``p(j) ∝ C(n-1, j) * Beta(j+β, n-j-1+α)``. For α = β = 1 this is the
    uniform distribution over sizes (the Shapley value).
    """
    if alpha <= 0 or beta <= 0:
        raise ValidationError("alpha and beta must be positive")
    j = np.arange(n)
    log_binom = gammaln(n) - gammaln(j + 1) - gammaln(n - j)
    log_weight = log_binom + betaln(j + beta, n - 1 - j + alpha) - betaln(alpha, beta)
    weight = np.exp(log_weight - log_weight.max())
    return weight / weight.sum()


class BetaShapley:
    """Permutation-sampling estimator for Beta(α, β) semivalues.

    Parameters
    ----------
    alpha, beta:
        Semivalue shape; ``(1, 1)`` is Shapley, ``(16, 1)`` the
        noise-reduced detection default.
    n_permutations:
        Sampled permutations (each walks the full prefix chain).
    seed:
        RNG seed.
    observer:
        Optional :class:`repro.observe.Observer`: spans :meth:`score`,
        counts permutations walked and utility evaluations, and logs a
        replayable ``importance.run`` event.
    checkpoint / checkpoint_every / resume_from:
        Durable snapshots of completed permutation walks, same contract
        as :class:`~repro.importance.MonteCarloShapley`: requires an
        integer ``seed``, and a resumed run is hex-identical to an
        uninterrupted one on any backend.
    partial:
        Optional anytime-results hook (see
        :func:`repro.importance.base.resolve_partial`): each folded walk
        publishes the running weighted estimate with per-player CLT
        standard errors over the size-weighted marginal samples;
        returning truthy stops early with the current estimate
        (snapshotted first when ``checkpoint=`` is active).
    """

    def __init__(self, alpha: float = 16.0, beta: float = 1.0,
                 n_permutations: int = 100, seed=None, observer=None,
                 checkpoint=None, checkpoint_every: int = 10,
                 resume_from=None, partial=None):
        if n_permutations < 1:
            raise ValidationError("n_permutations must be >= 1")
        self.alpha = alpha
        self.beta = beta
        self.n_permutations = n_permutations
        self.seed = seed
        self.observer = resolve_observer(observer)
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every
        self.resume_from = resume_from
        self.partial = resolve_partial(partial)
        if checkpoint is not None or resume_from is not None:
            require_checkpoint_seed(seed, "beta_shapley")

    def score(self, utility: Utility) -> np.ndarray:
        """Estimate Beta Shapley values for every player of ``utility``.

        Permutations are drawn from per-permutation RNG streams (split
        from the root seed) and their walks submitted as one batch to
        ``utility.runtime``, so results are backend-invariant.
        """
        obs = self.observer
        if not obs.enabled:
            return self._score(utility)
        calls_before = utility.calls
        cache = utility.runtime.cache if utility.runtime is not None else None
        with obs.span("beta_shapley", cache=cache, players=utility.n_players):
            values = self._score(utility)
        obs.count("importance.permutations", self.n_permutations)
        emit_importance_run(
            obs, method="beta_shapley",
            params={"alpha": self.alpha, "beta": self.beta,
                    "n_permutations": self.n_permutations},
            seed=self.seed, utility=utility, calls_before=calls_before,
            values=values)
        return values

    def _identity(self, utility: Utility) -> str:
        return fingerprint("checkpoint.beta_shapley", self.alpha, self.beta,
                           self.n_permutations, int(self.seed),
                           utility.base_fingerprint())

    def _score(self, utility: Utility) -> np.ndarray:
        n = utility.n_players
        partial = self.partial
        # Importance weight: marginal at size j appears w.p. 1/n under
        # permutation sampling but should carry probability p(j).
        size_weight = n * beta_size_weights(n, self.alpha, self.beta)
        permutations = [rng.permutation(n)
                        for rng in spawn_rngs(self.seed, self.n_permutations)]
        session = open_checkpoint_session(
            utility, checkpoint=self.checkpoint,
            resume_from=self.resume_from, every=self.checkpoint_every,
            kind="importance.beta_shapley",
            identity=self._identity(utility)
            if (self.checkpoint is not None or self.resume_from is not None)
            else "", observer=self.observer)

        running = np.zeros(n)
        running_sq = np.zeros(n) if partial is not None else None
        folded = 0

        def fold(permutation, marginals) -> bool:
            """Fold one walk's size-weighted marginals in (walk order, so
            the float sums match a single-pass reduction bitwise), then
            publish; ``True`` when the hook requests an early stop."""
            nonlocal folded
            weighted = size_weight * marginals
            running[permutation] += weighted
            folded += 1
            if partial is None:
                return False
            running_sq[permutation] += weighted * weighted
            return bool(partial.publish(
                method="beta_shapley", completed=folded,
                total=self.n_permutations, values=running / folded,
                stderr=clt_stderr(running, running_sq, folded)))

        try:
            stopped = self._walk(utility, permutations, session, fold)
        finally:
            if session is not None:
                session.close()
        if stopped:
            return running / folded
        return running / self.n_permutations

    def _walk(self, utility, permutations, session, fold) -> bool:
        """Walk and fold permutations in order; one batch normally,
        cadence batches (restored prefix skipped) when checkpointing or
        publishing partials. Returns ``True`` on an anytime early stop
        (flushing a final resumable snapshot first)."""
        if session is None and self.partial is None:
            for permutation, marginals in zip(
                    permutations,
                    utility.walk_permutations(permutations,
                                              stage="beta_shapley")):
                fold(permutation, marginals)
            return False
        every = session.every if session is not None \
            else partial_every(self.partial)
        if self.partial is not None:
            every = min(every, partial_every(self.partial))
        walks: list[np.ndarray] = []
        replayed = 0
        if session is not None:
            payload = session.resume()
            if payload is not None:
                walks = [unhex_floats(m) for m in payload["marginals"]]
                replayed = len(walks)
                session.record_skipped(completed=replayed,
                                       total=self.n_permutations,
                                       method="beta_shapley")
        guard = session.session(
            lambda: len(walks),
            lambda: {"marginals": [hex_floats(m) for m in walks]},
        ) if session is not None else contextlib.nullcontext()
        with guard:
            for i in range(replayed):  # replay through the same folder
                if fold(permutations[i], walks[i]):
                    if session is not None:
                        session.flush()
                    return True
            while len(walks) < self.n_permutations:
                batch = permutations[len(walks):len(walks) + every]
                new_walks = utility.walk_permutations(
                    batch, stage="beta_shapley")
                walks.extend(new_walks)
                stopped = False
                for permutation, marginals in zip(batch, new_walks):
                    if fold(permutation, marginals):
                        stopped = True
                        break
                if stopped:
                    if session is not None:
                        session.flush()
                    return True
                if session is not None:
                    session.maybe_flush(len(walks))
        return False
