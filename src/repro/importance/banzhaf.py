"""Data Banzhaf values (Wang & Jia, paper ref [80]).

The Banzhaf value weights every coalition equally (each other player is
included independently with probability 1/2), which makes it provably the
most *noise-robust* semivalue — rankings survive noisy utility evaluations
better than Shapley's. Estimated with the Maximum-Sample-Reuse (MSR)
estimator: every sampled coalition updates the estimate of *all* players::

    φ_i ≈ mean(u(S) : i ∈ S) - mean(u(S) : i ∉ S)

**Determinism guarantee.** Coalition ``t`` is drawn from its own RNG
stream (split from the root seed via :func:`repro.core.rng.spawn_rngs`)
and evaluated as an independent task through the utility's runtime, so
the estimate depends only on ``(seed, n_samples)`` — not on the backend,
worker count, or completion order.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import spawn_rngs
from repro.importance.base import (
    Utility,
    emit_importance_run,
    hex_floats,
    open_checkpoint_session,
    require_checkpoint_seed,
    unhex_floats,
)
from repro.observe.observer import resolve_observer
from repro.runtime.cache import fingerprint


class DataBanzhaf:
    """MSR estimator for Data Banzhaf values.

    Parameters
    ----------
    n_samples:
        Number of random coalitions to evaluate (each costs one training).
    seed:
        Root RNG seed, split per sampled coalition.
    observer:
        Optional :class:`repro.observe.Observer`: spans :meth:`score`,
        counts coalitions sampled and utility evaluations, and logs a
        replayable ``importance.run`` event.
    checkpoint / checkpoint_every / resume_from:
        Durable checkpointing of completed coalition evaluations (see
        :class:`~repro.importance.MonteCarloShapley` — identical
        semantics with the coalition, not the permutation, as the unit
        of work). Requires an integer ``seed``. With checkpointing the
        coalition batch is split at the cadence, which changes nothing
        about the estimate; ``utility.calls`` can only differ if the
        same coalition is sampled twice *and* every cache layer was
        disabled.
    """

    def __init__(self, n_samples: int = 200, seed=None, observer=None,
                 checkpoint=None, checkpoint_every: int = 25,
                 resume_from=None):
        if n_samples < 2:
            raise ValidationError("n_samples must be >= 2")
        self.n_samples = n_samples
        self.seed = seed
        self.observer = resolve_observer(observer)
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every
        self.resume_from = resume_from
        if checkpoint is not None or resume_from is not None:
            require_checkpoint_seed(seed, "banzhaf")

    def score(self, utility: Utility) -> np.ndarray:
        """Estimate Banzhaf values for every player of ``utility``."""
        obs = self.observer
        if not obs.enabled:
            return self._score(utility)
        calls_before = utility.calls
        cache = utility.runtime.cache if utility.runtime is not None else None
        with obs.span("banzhaf", cache=cache, players=utility.n_players):
            values = self._score(utility)
        obs.count("importance.coalitions", self.n_samples)
        emit_importance_run(
            obs, method="banzhaf", params={"n_samples": self.n_samples},
            seed=self.seed, utility=utility, calls_before=calls_before,
            values=values)
        return values

    def _identity(self, utility: Utility) -> str:
        return fingerprint("checkpoint.banzhaf", self.n_samples,
                           int(self.seed), utility.base_fingerprint())

    def _score(self, utility: Utility) -> np.ndarray:
        n = utility.n_players
        memberships = [rng.uniform(size=n) < 0.5
                       for rng in spawn_rngs(self.seed, self.n_samples)]
        session = open_checkpoint_session(
            utility, checkpoint=self.checkpoint,
            resume_from=self.resume_from, every=self.checkpoint_every,
            kind="importance.banzhaf",
            identity=self._identity(utility)
            if (self.checkpoint is not None or self.resume_from is not None)
            else "", observer=self.observer)
        try:
            values = self._evaluate(utility, memberships, session)
        finally:
            if session is not None:
                session.close()

        sum_in = np.zeros(n)
        count_in = np.zeros(n)
        sum_out = np.zeros(n)
        count_out = np.zeros(n)
        for membership, value in zip(memberships, values):
            sum_in[membership] += value
            count_in[membership] += 1
            sum_out[~membership] += value
            count_out[~membership] += 1

        # Players never sampled on one side get a 0 mean on that side; with
        # n_samples >= ~30 this is vanishingly rare and only dampens the
        # estimate rather than biasing its sign.
        mean_in = np.divide(sum_in, count_in, out=np.zeros(n), where=count_in > 0)
        mean_out = np.divide(sum_out, count_out, out=np.zeros(n), where=count_out > 0)
        return mean_in - mean_out

    def _evaluate(self, utility, memberships, session) -> np.ndarray:
        """Coalition values in sample order; one batch normally, cadence
        slices (restored prefix skipped) when checkpointing."""
        if session is None:
            return utility.evaluate_many(
                [np.flatnonzero(m) for m in memberships], stage="banzhaf")
        values = np.empty(self.n_samples)
        done = 0
        payload = session.resume()
        if payload is not None:
            restored = unhex_floats(payload["values"])
            values[:len(restored)] = restored
            done = len(restored)
            session.record_skipped(completed=done, total=self.n_samples,
                                   method="banzhaf")
        with session.session(lambda: done,
                             lambda: {"values": hex_floats(values[:done])}):
            while done < self.n_samples:
                end = min(done + session.every, self.n_samples)
                chunk = [np.flatnonzero(m) for m in memberships[done:end]]
                values[done:end] = utility.evaluate_many(chunk,
                                                         stage="banzhaf")
                done = end
                session.maybe_flush(done)
        return values
