"""Data Banzhaf values (Wang & Jia, paper ref [80]).

The Banzhaf value weights every coalition equally (each other player is
included independently with probability 1/2), which makes it provably the
most *noise-robust* semivalue — rankings survive noisy utility evaluations
better than Shapley's. Estimated with the Maximum-Sample-Reuse (MSR)
estimator: every sampled coalition updates the estimate of *all* players::

    φ_i ≈ mean(u(S) : i ∈ S) - mean(u(S) : i ∉ S)

**Determinism guarantee.** Coalition ``t`` is drawn from its own RNG
stream (split from the root seed via :func:`repro.core.rng.spawn_rngs`)
and evaluated as an independent task through the utility's runtime, so
the estimate depends only on ``(seed, n_samples)`` — not on the backend,
worker count, or completion order.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import spawn_rngs
from repro.importance.base import (
    Utility,
    emit_importance_run,
    hex_floats,
    open_checkpoint_session,
    partial_every,
    require_checkpoint_seed,
    resolve_partial,
    unhex_floats,
)
from repro.observe.observer import resolve_observer
from repro.runtime.cache import fingerprint


class DataBanzhaf:
    """MSR estimator for Data Banzhaf values.

    Parameters
    ----------
    n_samples:
        Number of random coalitions to evaluate (each costs one training).
    seed:
        Root RNG seed, split per sampled coalition.
    observer:
        Optional :class:`repro.observe.Observer`: spans :meth:`score`,
        counts coalitions sampled and utility evaluations, and logs a
        replayable ``importance.run`` event.
    checkpoint / checkpoint_every / resume_from:
        Durable checkpointing of completed coalition evaluations (see
        :class:`~repro.importance.MonteCarloShapley` — identical
        semantics with the coalition, not the permutation, as the unit
        of work). Requires an integer ``seed``. With checkpointing the
        coalition batch is split at the cadence, which changes nothing
        about the estimate; ``utility.calls`` can only differ if the
        same coalition is sampled twice *and* every cache layer was
        disabled.
    partial:
        Optional anytime-results hook (see
        :func:`repro.importance.base.resolve_partial`): after every
        cadence chunk of coalition values folded into the MSR
        accumulators, ``partial.publish`` receives the running
        ``mean_in - mean_out`` estimate with per-player CLT standard
        errors (in/out variance components combined); returning truthy
        stops early with the current estimate, snapshotting first when
        ``checkpoint=`` is active. The same single-batch caveat as
        checkpointing applies to ``utility.calls``.
    """

    def __init__(self, n_samples: int = 200, seed=None, observer=None,
                 checkpoint=None, checkpoint_every: int = 25,
                 resume_from=None, partial=None):
        if n_samples < 2:
            raise ValidationError("n_samples must be >= 2")
        self.n_samples = n_samples
        self.seed = seed
        self.observer = resolve_observer(observer)
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every
        self.resume_from = resume_from
        self.partial = resolve_partial(partial)
        if checkpoint is not None or resume_from is not None:
            require_checkpoint_seed(seed, "banzhaf")

    def score(self, utility: Utility) -> np.ndarray:
        """Estimate Banzhaf values for every player of ``utility``."""
        obs = self.observer
        if not obs.enabled:
            return self._score(utility)
        calls_before = utility.calls
        cache = utility.runtime.cache if utility.runtime is not None else None
        with obs.span("banzhaf", cache=cache, players=utility.n_players):
            values = self._score(utility)
        obs.count("importance.coalitions", self.n_samples)
        emit_importance_run(
            obs, method="banzhaf", params={"n_samples": self.n_samples},
            seed=self.seed, utility=utility, calls_before=calls_before,
            values=values)
        return values

    def _identity(self, utility: Utility) -> str:
        return fingerprint("checkpoint.banzhaf", self.n_samples,
                           int(self.seed), utility.base_fingerprint())

    def _score(self, utility: Utility) -> np.ndarray:
        n = utility.n_players
        partial = self.partial
        memberships = [rng.uniform(size=n) < 0.5
                       for rng in spawn_rngs(self.seed, self.n_samples)]
        state = _MSRState(n, track_sq=partial is not None)
        session = open_checkpoint_session(
            utility, checkpoint=self.checkpoint,
            resume_from=self.resume_from, every=self.checkpoint_every,
            kind="importance.banzhaf",
            identity=self._identity(utility)
            if (self.checkpoint is not None or self.resume_from is not None)
            else "", observer=self.observer)

        def fold(values, upto: int) -> bool:
            """Fold coalition values [state.folded, upto) into the MSR
            accumulators — in sample order, so the float sums are
            bit-identical to a single-pass reduction — then publish the
            running estimate; ``True`` when the hook requests a stop."""
            for k in range(state.folded, upto):
                state.add(memberships[k], float(values[k]))
            if partial is None or state.folded == 0:
                return False  # nothing folded yet: nothing to publish
            return bool(partial.publish(
                method="banzhaf", completed=state.folded,
                total=self.n_samples, values=state.estimate(),
                stderr=state.stderr()))

        try:
            self._evaluate(utility, memberships, session, fold)
        finally:
            if session is not None:
                session.close()
        return state.estimate()

    def _evaluate(self, utility, memberships, session, fold) -> None:
        """Evaluate coalitions in sample order and fold them in: one
        batch normally, cadence slices (restored prefix skipped) when
        checkpointing or publishing partials."""
        if session is None and self.partial is None:
            values = utility.evaluate_many(
                [np.flatnonzero(m) for m in memberships], stage="banzhaf")
            fold(values, self.n_samples)
            return
        every = session.every if session is not None \
            else partial_every(self.partial)
        if self.partial is not None:
            every = min(every, partial_every(self.partial))
        values = np.empty(self.n_samples)
        done = 0
        if session is not None:
            payload = session.resume()
            if payload is not None:
                restored = unhex_floats(payload["values"])
                values[:len(restored)] = restored
                done = len(restored)
                session.record_skipped(completed=done, total=self.n_samples,
                                       method="banzhaf")
        guard = session.session(
            lambda: done, lambda: {"values": hex_floats(values[:done])},
        ) if session is not None else contextlib.nullcontext()
        with guard:
            if fold(values, done):  # replayed prefix may already satisfy
                if session is not None:  # the stop predicate
                    session.flush()
                return
            while done < self.n_samples:
                end = min(done + every, self.n_samples)
                chunk = [np.flatnonzero(m) for m in memberships[done:end]]
                values[done:end] = utility.evaluate_many(chunk,
                                                         stage="banzhaf")
                done = end
                if fold(values, done):
                    if session is not None:
                        session.flush()
                    return
                if session is not None:
                    session.maybe_flush(done)


class _MSRState:
    """Running Maximum-Sample-Reuse accumulators: per-player in/out sums
    and counts (plus squared sums when a partial hook needs CLT standard
    errors), folded one sampled coalition at a time in sample order."""

    def __init__(self, n: int, *, track_sq: bool = False):
        self.n = n
        self.folded = 0
        self.sum_in = np.zeros(n)
        self.count_in = np.zeros(n)
        self.sum_out = np.zeros(n)
        self.count_out = np.zeros(n)
        self.sq_in = np.zeros(n) if track_sq else None
        self.sq_out = np.zeros(n) if track_sq else None

    def add(self, membership: np.ndarray, value: float) -> None:
        self.sum_in[membership] += value
        self.count_in[membership] += 1
        self.sum_out[~membership] += value
        self.count_out[~membership] += 1
        if self.sq_in is not None:
            self.sq_in[membership] += value * value
            self.sq_out[~membership] += value * value
        self.folded += 1

    def estimate(self) -> np.ndarray:
        # Players never sampled on one side get a 0 mean on that side; with
        # n_samples >= ~30 this is vanishingly rare and only dampens the
        # estimate rather than biasing its sign.
        n = self.n
        mean_in = np.divide(self.sum_in, self.count_in, out=np.zeros(n),
                            where=self.count_in > 0)
        mean_out = np.divide(self.sum_out, self.count_out, out=np.zeros(n),
                             where=self.count_out > 0)
        return mean_in - mean_out

    def _side_var(self, sums, sqs, counts) -> np.ndarray:
        """Unbiased per-player sample variance of one side's values;
        ``inf`` below two samples, where spread is unknowable."""
        out = np.full(self.n, np.inf)
        ok = counts > 1
        mean = np.divide(sums, counts, out=np.zeros(self.n), where=ok)
        var = np.maximum(sqs - counts * mean * mean, 0.0)
        np.divide(var, counts - 1, out=out, where=ok)
        return out

    def stderr(self) -> np.ndarray:
        """CLT standard error of the mean-difference estimate: the in and
        out sides are independent sample means, so their variances add."""
        var_in = self._side_var(self.sum_in, self.sq_in, self.count_in)
        var_out = self._side_var(self.sum_out, self.sq_out, self.count_out)
        with np.errstate(invalid="ignore"):
            return np.sqrt(
                np.divide(var_in, self.count_in,
                          out=np.full(self.n, np.inf),
                          where=self.count_in > 0)
                + np.divide(var_out, self.count_out,
                            out=np.full(self.n, np.inf),
                            where=self.count_out > 0))
