"""Data Banzhaf values (Wang & Jia, paper ref [80]).

The Banzhaf value weights every coalition equally (each other player is
included independently with probability 1/2), which makes it provably the
most *noise-robust* semivalue — rankings survive noisy utility evaluations
better than Shapley's. Estimated with the Maximum-Sample-Reuse (MSR)
estimator: every sampled coalition updates the estimate of *all* players::

    φ_i ≈ mean(u(S) : i ∈ S) - mean(u(S) : i ∉ S)
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.importance.base import Utility


class DataBanzhaf:
    """MSR estimator for Data Banzhaf values.

    Parameters
    ----------
    n_samples:
        Number of random coalitions to evaluate (each costs one training).
    seed:
        RNG seed.
    """

    def __init__(self, n_samples: int = 200, seed=None):
        if n_samples < 2:
            raise ValidationError("n_samples must be >= 2")
        self.n_samples = n_samples
        self.seed = seed

    def score(self, utility: Utility) -> np.ndarray:
        """Estimate Banzhaf values for every player of ``utility``."""
        rng = ensure_rng(self.seed)
        n = utility.n_players
        sum_in = np.zeros(n)
        count_in = np.zeros(n)
        sum_out = np.zeros(n)
        count_out = np.zeros(n)

        for _ in range(self.n_samples):
            membership = rng.uniform(size=n) < 0.5
            value = utility(np.flatnonzero(membership))
            sum_in[membership] += value
            count_in[membership] += 1
            sum_out[~membership] += value
            count_out[~membership] += 1

        # Players never sampled on one side get a 0 mean on that side; with
        # n_samples >= ~30 this is vanishingly rare and only dampens the
        # estimate rather than biasing its sign.
        mean_in = np.divide(sum_in, count_in, out=np.zeros(n), where=count_in > 0)
        mean_out = np.divide(sum_out, count_out, out=np.zeros(n), where=count_out > 0)
        return mean_in - mean_out
