"""Exact Shapley values for a k-NN proxy model (Jia et al., paper ref [33]).

For an unweighted k-NN classifier scored by validation accuracy, the
Shapley value of every training point has a closed form computable in
O(n log n) per validation point — no model retraining at all. This is the
method Figure 2 of the paper calls ``nde.knn_shapley_values`` and the
engine behind Datascope's pipeline debugging (ref [39]).

The recursion, for one validation point ``(x, y)`` with training points
sorted by distance to ``x`` (α_1 nearest .. α_n farthest)::

    s(α_n) = 1[y_{α_n} = y] / n
    s(α_j) = s(α_{j+1}) + (1[y_{α_j} = y] - 1[y_{α_{j+1}} = y]) / K
                          * min(K, j) / j

The total value is the average over validation points.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_X_y
from repro.ml.neighbors import pairwise_distances


def knn_shapley(X_train, y_train, X_valid, y_valid, *, k: int = 5,
                metric: str = "euclidean") -> np.ndarray:
    """Exact KNN-Shapley values for every training example.

    Parameters
    ----------
    X_train, y_train:
        Training data (the players).
    X_valid, y_valid:
        Validation data defining the utility (k-NN accuracy).
    k:
        Neighborhood size of the proxy classifier.
    metric:
        Distance metric for neighbor ranking.

    Returns
    -------
    np.ndarray
        One value per training example; lower = more harmful. Values sum
        (over players) to ``u(D) - u(∅)`` per the Shapley efficiency
        axiom, where utility is mean validation accuracy of the k-NN.
    """
    X_train, y_train = check_X_y(X_train, y_train)
    X_valid, y_valid = check_X_y(X_valid, y_valid)
    n = len(X_train)
    if not 1 <= k <= n:
        raise ValidationError(f"k must be in [1, {n}], got {k}")

    distances = pairwise_distances(X_valid, X_train, metric=metric)
    return knn_shapley_core(distances, y_train, y_valid, k)


def knn_shapley_core(distances, y_train, y_valid, k: int) -> np.ndarray:
    """The closed-form recursion over a precomputed distance matrix.

    ``distances`` is the ``n_valid x n_train`` matrix the public
    :func:`knn_shapley` computes for you; the incremental KNN coalition
    kernel (:class:`repro.importance.kernels.KNNCoalitionKernel`) already
    holds one and calls this directly, so the exact-Shapley dispatch in
    :class:`~repro.importance.MonteCarloShapley` pays no second distance
    pass. Sorting ties break by training position, matching the
    kernel's (distance, position) order.
    """
    distances = np.asarray(distances, dtype=float)
    y_train = np.asarray(y_train)
    y_valid = np.asarray(y_valid)
    n = distances.shape[1]
    if not 1 <= k <= n:
        raise ValidationError(f"k must be in [1, {n}], got {k}")
    values = np.zeros(n)
    js = np.arange(1, n)  # positions 1..n-1 (0-indexed sorted order)
    position_factor = np.minimum(k, js) / js

    for v in range(len(y_valid)):
        order = np.lexsort((np.arange(n), distances[v]))
        matches = (y_train[order] == y_valid[v]).astype(float)
        s = np.empty(n)
        s[n - 1] = matches[n - 1] / n
        # Vectorized backward recursion via reversed cumulative sum.
        diffs = (matches[:-1] - matches[1:]) / k * position_factor
        s[:-1] = s[n - 1] + np.cumsum(diffs[::-1])[::-1]
        values[order] += s
    return values / len(y_valid)


def knn_shapley_by_group(X_train, y_train, X_valid, y_valid, group_ids, *,
                         k: int = 5, metric: str = "euclidean") -> dict:
    """Aggregate KNN-Shapley values over groups of training examples.

    ``group_ids`` assigns each training row to a group (e.g. a source-table
    row that fanned out through a join); by Shapley linearity the group's
    value is the sum of its members' values. Returns ``{group_id: value}``.
    """
    values = knn_shapley(X_train, y_train, X_valid, y_valid, k=k, metric=metric)
    group_ids = np.asarray(group_ids)
    if len(group_ids) != len(values):
        raise ValidationError("group_ids length must match training size")
    totals: dict = {}
    for gid, val in zip(group_ids.tolist(), values):
        totals[gid] = totals.get(gid, 0.0) + float(val)
    return totals
