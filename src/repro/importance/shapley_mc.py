"""Truncated Monte-Carlo Data Shapley (Ghorbani & Zou, paper ref [21]).

The Shapley value of example ``i`` is its marginal contribution averaged
over all orderings of the training set — a sum over exponentially many
subsets. TMC-Shapley samples random permutations, walks each prefix, and
*truncates* the walk once the running utility is within ``truncation_tol``
of the full-data utility (later marginals are then ≈ 0). Convergence is
monitored with the Gelman–Rubin-style criterion from the original paper:
stop when the mean absolute change of the value estimates over the last
``convergence_window`` permutations falls below ``convergence_tol``.

**Determinism guarantee.** Permutation ``t`` is drawn from its own RNG
stream, split from the root seed via :func:`repro.core.rng.spawn_rngs`,
and each permutation walk is an independent task submitted through the
utility's :class:`~repro.runtime.Runtime`. The estimate is therefore a
pure function of ``(seed, n_permutations)`` — identical across the
``serial``, ``thread`` and ``process`` backends and any worker count.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import spawn_rngs
from repro.importance.base import Utility, emit_importance_run
from repro.observe.observer import resolve_observer


class MonteCarloShapley:
    """Permutation-sampling Shapley estimator.

    Parameters
    ----------
    n_permutations:
        Hard cap on sampled permutations.
    truncation_tol:
        Absolute utility gap below which a permutation walk is truncated
        ("performance tolerance" in the paper). ``0`` disables truncation.
    convergence_tol / convergence_window:
        Early-stopping on estimate stability; ``None`` disables.
    seed:
        Root RNG seed, split per permutation.
    observer:
        Optional :class:`repro.observe.Observer`: wraps :meth:`score` in
        a ``shapley_mc`` span, counts permutations walked and utility
        evaluations, and logs one replayable ``importance.run`` event
        (method, params, seed, data fingerprint, score summary).
    """

    def __init__(self, n_permutations: int = 100, truncation_tol: float = 0.01,
                 convergence_tol: float | None = None, convergence_window: int = 10,
                 seed=None, observer=None):
        if n_permutations < 1:
            raise ValidationError("n_permutations must be >= 1")
        if truncation_tol < 0:
            raise ValidationError("truncation_tol must be >= 0")
        self.n_permutations = n_permutations
        self.truncation_tol = truncation_tol
        self.convergence_tol = convergence_tol
        self.convergence_window = convergence_window
        self.seed = seed
        self.observer = resolve_observer(observer)

    def score(self, utility: Utility) -> np.ndarray:
        """Estimate Shapley values for every player of ``utility``.

        Permutation walks are submitted in batches through
        ``utility.runtime`` (inline when the utility has none); the
        convergence criterion is applied per permutation, in order, so
        early stopping returns exactly what a serial run would.
        """
        obs = self.observer
        if not obs.enabled:
            return self._score(utility)
        calls_before = utility.calls
        cache = utility.runtime.cache if utility.runtime is not None else None
        with obs.span("shapley_mc", cache=cache, players=utility.n_players):
            values = self._score(utility)
        obs.count("importance.permutations", self.n_permutations_used_)
        emit_importance_run(
            obs, method="shapley_mc",
            params={"n_permutations": self.n_permutations,
                    "truncation_tol": self.truncation_tol,
                    "convergence_tol": self.convergence_tol,
                    "convergence_window": self.convergence_window},
            seed=self.seed, utility=utility, calls_before=calls_before,
            values=values, permutations_used=self.n_permutations_used_)
        return values

    def _score(self, utility: Utility) -> np.ndarray:
        n = utility.n_players
        permutations = [rng.permutation(n)
                        for rng in spawn_rngs(self.seed, self.n_permutations)]
        full_value = utility.full_value()
        running = np.zeros(n)
        history: list[np.ndarray] = []

        workers = (utility.runtime.executor.effective_workers
                   if utility.runtime is not None else 1)
        if self.convergence_tol is None:
            batch_size = self.n_permutations
        else:
            # Small batches keep the early-stop check responsive without
            # starving the pool; a converged batch discards at most
            # batch_size - 1 extra walks.
            batch_size = max(self.convergence_window, workers)

        t = 0
        for start in range(0, self.n_permutations, batch_size):
            batch = permutations[start:start + batch_size]
            walks = utility.walk_permutations(
                batch, truncation_tol=self.truncation_tol,
                full_value=full_value, stage="shapley_mc")
            for permutation, marginals in zip(batch, walks):
                t += 1
                running[permutation] += marginals
                if self.convergence_tol is not None:
                    history.append(running / t)
                    if len(history) > self.convergence_window:
                        drift = np.abs(history[-1] - history[-1 - self.convergence_window])
                        scale = np.abs(history[-1]) + 1e-12
                        if float(np.mean(drift / scale)) < self.convergence_tol:
                            self.n_permutations_used_ = t
                            return running / t
        self.n_permutations_used_ = t
        return running / t
