"""Truncated Monte-Carlo Data Shapley (Ghorbani & Zou, paper ref [21]).

The Shapley value of example ``i`` is its marginal contribution averaged
over all orderings of the training set — a sum over exponentially many
subsets. TMC-Shapley samples random permutations, walks each prefix, and
*truncates* the walk once the running utility is within ``truncation_tol``
of the full-data utility (later marginals are then ≈ 0). Convergence is
monitored with the Gelman–Rubin-style criterion from the original paper:
stop when the mean absolute change of the value estimates over the last
``convergence_window`` permutations falls below ``convergence_tol``.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.importance.base import Utility


class MonteCarloShapley:
    """Permutation-sampling Shapley estimator.

    Parameters
    ----------
    n_permutations:
        Hard cap on sampled permutations.
    truncation_tol:
        Absolute utility gap below which a permutation walk is truncated
        ("performance tolerance" in the paper). ``0`` disables truncation.
    convergence_tol / convergence_window:
        Early-stopping on estimate stability; ``None`` disables.
    seed:
        RNG seed.
    """

    def __init__(self, n_permutations: int = 100, truncation_tol: float = 0.01,
                 convergence_tol: float | None = None, convergence_window: int = 10,
                 seed=None):
        if n_permutations < 1:
            raise ValidationError("n_permutations must be >= 1")
        if truncation_tol < 0:
            raise ValidationError("truncation_tol must be >= 0")
        self.n_permutations = n_permutations
        self.truncation_tol = truncation_tol
        self.convergence_tol = convergence_tol
        self.convergence_window = convergence_window
        self.seed = seed

    def score(self, utility: Utility) -> np.ndarray:
        """Estimate Shapley values for every player of ``utility``."""
        rng = ensure_rng(self.seed)
        n = utility.n_players
        running = np.zeros(n)
        full_value = utility.full_value()
        null_value = utility.null_value()
        history: list[np.ndarray] = []

        for t in range(1, self.n_permutations + 1):
            permutation = rng.permutation(n)
            previous = null_value
            truncated = False
            for pos in range(n):
                if truncated:
                    marginal = 0.0
                else:
                    current = utility(permutation[: pos + 1])
                    marginal = current - previous
                    previous = current
                    if (self.truncation_tol > 0
                            and abs(full_value - current) < self.truncation_tol):
                        truncated = True
                running[permutation[pos]] += marginal
            if self.convergence_tol is not None:
                history.append(running / t)
                if len(history) > self.convergence_window:
                    drift = np.abs(history[-1] - history[-1 - self.convergence_window])
                    scale = np.abs(history[-1]) + 1e-12
                    if float(np.mean(drift / scale)) < self.convergence_tol:
                        self.n_permutations_used_ = t
                        return running / t
        self.n_permutations_used_ = self.n_permutations
        return running / self.n_permutations
