"""Truncated Monte-Carlo Data Shapley (Ghorbani & Zou, paper ref [21]).

The Shapley value of example ``i`` is its marginal contribution averaged
over all orderings of the training set — a sum over exponentially many
subsets. TMC-Shapley samples random permutations, walks each prefix, and
*truncates* the walk once the running utility is within ``truncation_tol``
of the full-data utility (later marginals are then ≈ 0). Convergence is
monitored with the Gelman–Rubin-style criterion from the original paper:
stop when the mean absolute change of the value estimates over the last
``convergence_window`` permutations falls below ``convergence_tol``.

**Determinism guarantee.** Permutation ``t`` is drawn from its own RNG
stream, split from the root seed via :func:`repro.core.rng.spawn_rngs`,
and each permutation walk is an independent task submitted through the
utility's :class:`~repro.runtime.Runtime`. The estimate is therefore a
pure function of ``(seed, n_permutations)`` — identical across the
``serial``, ``thread`` and ``process`` backends and any worker count.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import spawn_rngs
from repro.importance.base import (
    Utility,
    clt_stderr,
    emit_importance_run,
    hex_floats,
    open_checkpoint_session,
    partial_every,
    require_checkpoint_seed,
    resolve_partial,
    unhex_floats,
)
from repro.ml.metrics import accuracy_score
from repro.observe.observer import resolve_observer
from repro.runtime.cache import fingerprint


class MonteCarloShapley:
    """Permutation-sampling Shapley estimator.

    Parameters
    ----------
    n_permutations:
        Hard cap on sampled permutations.
    truncation_tol:
        Absolute utility gap below which a permutation walk is truncated
        ("performance tolerance" in the paper). ``0`` disables truncation.
    convergence_tol / convergence_window:
        Early-stopping on estimate stability; ``None`` disables.
    seed:
        Root RNG seed, split per permutation.
    observer:
        Optional :class:`repro.observe.Observer`: wraps :meth:`score` in
        a ``shapley_mc`` span, counts permutations walked and utility
        evaluations, and logs one replayable ``importance.run`` event
        (method, params, seed, data fingerprint, score summary).
    checkpoint:
        Optional :class:`~repro.runtime.CheckpointStore` (or directory
        path): completed permutation walks are snapshotted every
        ``checkpoint_every`` walks — and once more on SIGTERM/SIGINT —
        so a killed run can be resumed. Requires an integer ``seed``
        (the resumed process regenerates permutation ``i`` from
        ``spawn_rngs(seed, n)[i]``).
    checkpoint_every:
        Snapshot cadence in completed permutations.
    resume_from:
        Store (or path) holding a prior run's checkpoint; the snapshot's
        walks are replayed (marginals restored bitwise from
        ``float.hex``, utility call counts and fingerprint-cache entries
        re-applied) and only the remaining permutations are evaluated.
        The resumed estimate — scores, ``utility.calls``, cache keys —
        is hex-identical to an uninterrupted run on any backend. A
        snapshot from a different job (params/seed/data) is rejected.
    partial:
        Optional anytime-results hook (see
        :func:`repro.importance.base.resolve_partial`): after every
        permutation folded in, ``partial.publish`` receives the running
        estimate plus per-player CLT standard errors; returning truthy
        stops the loop early with the current estimate (snapshotting it
        first when ``checkpoint=`` is active, so the job can later be
        resumed to the exact full-run result). The hook's ``every``
        attribute bounds the walk batch size so partial estimates stay
        responsive on pooled backends.
    exact:
        Closed-form dispatch. ``False`` (default) always samples.
        ``"auto"`` short-circuits sampling entirely when the utility's
        kernel has an analytic Shapley solution under the accuracy
        metric (the k-NN closed-form recurrence, O(n log n) per
        validation point) and silently falls back to sampling otherwise;
        ``True`` does the same but raises :class:`ValidationError` when
        the closed form is unavailable. The dispatched values are
        *exact* Shapley values of the kernel's proxy game — what the
        sampler converges to in the many-permutation limit (rigorously
        for ``k=1``; a documented proxy for larger ``k``, see
        ``docs/PERFORMANCE.md``). On the exact path
        ``n_permutations_used_`` is 0, a single ``exact=True`` partial
        is published, and checkpoint sessions are skipped (there is no
        loop to resume).
    """

    def __init__(self, n_permutations: int = 100, truncation_tol: float = 0.01,
                 convergence_tol: float | None = None, convergence_window: int = 10,
                 seed=None, observer=None, checkpoint=None,
                 checkpoint_every: int = 10, resume_from=None, partial=None,
                 exact: bool | str = False):
        if n_permutations < 1:
            raise ValidationError("n_permutations must be >= 1")
        if truncation_tol < 0:
            raise ValidationError("truncation_tol must be >= 0")
        if exact not in (False, True, "auto"):
            raise ValidationError(
                f"exact must be False, True or 'auto', got {exact!r}")
        self.n_permutations = n_permutations
        self.truncation_tol = truncation_tol
        self.convergence_tol = convergence_tol
        self.convergence_window = convergence_window
        self.seed = seed
        self.observer = resolve_observer(observer)
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every
        self.resume_from = resume_from
        self.partial = resolve_partial(partial)
        self.exact = exact
        if checkpoint is not None or resume_from is not None:
            require_checkpoint_seed(seed, "shapley_mc")

    def score(self, utility: Utility) -> np.ndarray:
        """Estimate Shapley values for every player of ``utility``.

        Permutation walks are submitted in batches through
        ``utility.runtime`` (inline when the utility has none); the
        convergence criterion is applied per permutation, in order, so
        early stopping returns exactly what a serial run would.

        With ``exact=True`` / ``exact="auto"`` and an eligible kernel,
        no permutations are sampled at all: the kernel's closed-form
        Shapley values are returned directly (shifted by
        ``null_value / n`` so they share the sampler's efficiency
        normalization ``sum = u(D) - u(empty)``).
        """
        if self.exact:
            exact_values = self._exact_score(utility)
            if exact_values is not None:
                return exact_values
        obs = self.observer
        if not obs.enabled:
            return self._score(utility)
        calls_before = utility.calls
        cache = utility.runtime.cache if utility.runtime is not None else None
        with obs.span("shapley_mc", cache=cache, players=utility.n_players):
            values = self._score(utility)
        obs.count("importance.permutations", self.n_permutations_used_)
        emit_importance_run(
            obs, method="shapley_mc",
            params={"n_permutations": self.n_permutations,
                    "truncation_tol": self.truncation_tol,
                    "convergence_tol": self.convergence_tol,
                    "convergence_window": self.convergence_window},
            seed=self.seed, utility=utility, calls_before=calls_before,
            values=values, permutations_used=self.n_permutations_used_)
        return values

    def _exact_score(self, utility: Utility) -> np.ndarray | None:
        """Closed-form dispatch: the kernel's analytic Shapley values,
        or ``None`` when ``exact="auto"`` finds no closed form (the
        caller then falls through to permutation sampling).

        The closed form prices the game at ``u(empty) = 0`` while the
        sampler measures marginals against the majority-class null
        value, so the dispatched values are shifted by ``null_value / n``
        — making them exactly what the sampler's estimate converges to.
        """
        obs = self.observer
        calls_before = utility.calls
        kernel = utility.kernel
        closed = None
        if kernel is not None and utility.metric is accuracy_score:
            with (obs.span("shapley_mc.exact", players=utility.n_players)
                  if obs.enabled else contextlib.nullcontext()):
                closed = kernel.exact_shapley()
        if closed is None:
            if self.exact is True:
                raise ValidationError(
                    "exact=True requires a kernel with a closed-form "
                    "Shapley solution under the accuracy_score metric "
                    "(the k-NN kernel); this utility resolved to "
                    f"{utility.kernel_resolution}")
            return None
        values = closed - utility.null_value() / utility.n_players
        self.n_permutations_used_ = 0
        if self.partial is not None:
            self.partial.publish(
                method="shapley_mc", completed=1, total=1, values=values,
                stderr=np.zeros(len(values)), exact=True)
        if obs.enabled:
            emit_importance_run(
                obs, method="shapley_mc",
                params={"n_permutations": self.n_permutations,
                        "truncation_tol": self.truncation_tol,
                        "convergence_tol": self.convergence_tol,
                        "convergence_window": self.convergence_window,
                        "exact": True},
                seed=self.seed, utility=utility, calls_before=calls_before,
                values=values, permutations_used=0, exact=True)
        return values

    def _identity(self, utility: Utility) -> str:
        return fingerprint(
            "checkpoint.shapley_mc", self.n_permutations,
            self.truncation_tol, self.convergence_tol,
            self.convergence_window, int(self.seed),
            utility.base_fingerprint())

    def _score(self, utility: Utility) -> np.ndarray:
        n = utility.n_players
        permutations = [rng.permutation(n)
                        for rng in spawn_rngs(self.seed, self.n_permutations)]
        session = open_checkpoint_session(
            utility, checkpoint=self.checkpoint,
            resume_from=self.resume_from, every=self.checkpoint_every,
            kind="importance.shapley_mc",
            identity=self._identity(utility)
            if (self.checkpoint is not None or self.resume_from is not None)
            else "", observer=self.observer)
        try:
            return self._score_loop(utility, permutations, session)
        finally:
            if session is not None:
                session.close()

    def _score_loop(self, utility, permutations, session) -> np.ndarray:
        n = utility.n_players
        partial = self.partial
        full_value = None
        completed: list[np.ndarray] = []  # marginal arrays, walk order
        if session is not None:
            payload = session.resume()
            if payload is not None:
                full_value = float.fromhex(payload["full_value"])
                completed = [unhex_floats(m) for m in payload["marginals"]]
                session.record_skipped(completed=len(completed),
                                       total=self.n_permutations,
                                       method="shapley_mc")
        if full_value is None:
            full_value = utility.full_value()

        running = np.zeros(n)
        # Squared-sample accumulator for the CLT stderr; only maintained
        # when someone is listening.
        running_sq = np.zeros(n) if partial is not None else None
        history: list[np.ndarray] = []
        t = 0
        stopped_early = False

        def accumulate(permutation, marginals) -> np.ndarray | None:
            """Fold one walk in, in order; the current estimate when the
            stability criterion fires or the partial hook requests an
            early stop, else ``None``."""
            nonlocal t, stopped_early
            t += 1
            running[permutation] += marginals
            if running_sq is not None:
                running_sq[permutation] += marginals * marginals
            if self.convergence_tol is not None:
                history.append(running / t)
                if len(history) > self.convergence_window:
                    drift = np.abs(
                        history[-1] - history[-1 - self.convergence_window])
                    scale = np.abs(history[-1]) + 1e-12
                    if float(np.mean(drift / scale)) < self.convergence_tol:
                        self.n_permutations_used_ = t
                        return running / t
            if partial is not None:
                stop = partial.publish(
                    method="shapley_mc", completed=t,
                    total=self.n_permutations, values=running / t,
                    stderr=clt_stderr(running, running_sq, t))
                if stop:
                    stopped_early = True
                    self.n_permutations_used_ = t
                    return running / t
            return None

        def finish(estimate: np.ndarray) -> np.ndarray:
            # An anytime stop must leave a durable, resumable snapshot:
            # the resumed run replays `completed` and continues to the
            # exact full-run result.
            if stopped_early and session is not None:
                session.flush()
            return estimate

        workers = (utility.runtime.executor.effective_workers
                   if utility.runtime is not None else 1)
        if self.convergence_tol is None and partial is None:
            batch_size = self.n_permutations
        else:
            # Small batches keep the early-stop check responsive without
            # starving the pool; a converged batch discards at most
            # batch_size - 1 extra walks.
            batch_size = max(self.convergence_window, workers)
        if partial is not None:
            batch_size = max(1, min(batch_size, partial_every(partial)))
        if session is not None:
            # Walks land at cadence boundaries, so every snapshot is a
            # consistent prefix and resumed batching realigns with the
            # original run's.
            batch_size = min(batch_size, session.every)

        guard = session.session(
            lambda: t, lambda: {"full_value": full_value.hex(),
                                "marginals": [hex_floats(m)
                                              for m in completed]},
        ) if session is not None else contextlib.nullcontext()
        with guard:
            # Replay the snapshot's walks first — per permutation, in
            # order, through the same accumulator — so running sums,
            # history, and any convergence decision are bit-identical
            # to the uninterrupted run's.
            for marginals in list(completed):
                converged = accumulate(permutations[t], marginals)
                if converged is not None:
                    return finish(converged)
            while t < self.n_permutations:
                batch = permutations[t:t + batch_size]
                walks = utility.walk_permutations(
                    batch, truncation_tol=self.truncation_tol,
                    full_value=full_value, stage="shapley_mc")
                completed.extend(walks)
                for permutation, marginals in zip(batch, walks):
                    converged = accumulate(permutation, marginals)
                    if converged is not None:
                        return finish(converged)
                if session is not None:
                    session.maybe_flush(t)
        self.n_permutations_used_ = t
        return running / t
