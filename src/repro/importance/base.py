"""The utility function shared by game-theoretic importance methods.

Data Shapley, Banzhaf and Beta Shapley all view training as a cooperative
game: a coalition is a subset of training examples, and the coalition's
payoff is the quality (validation metric) of a model trained on it.
:class:`Utility` packages that game, with caching and well-defined
behaviour on degenerate coalitions (empty or single-class subsets, which
most models cannot fit).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_X_y
from repro.ml.base import clone
from repro.ml.metrics import accuracy_score


class Utility:
    """Coalition-value function ``u(S) = metric(model trained on S)``.

    Parameters
    ----------
    model:
        Unfitted estimator prototype; cloned for every evaluation.
    X_train, y_train:
        The full player pool; coalitions index into these.
    X_valid, y_valid:
        Held-out data the metric is computed on.
    metric:
        ``metric(y_true, y_pred) -> float``; accuracy by default.
    cache:
        Memoize coalition values by index frozenset. Worth it for MSR-style
        estimators that revisit coalitions; permutation sampling rarely
        repeats, so it can be disabled.
    """

    def __init__(self, model, X_train, y_train, X_valid, y_valid,
                 metric=accuracy_score, cache: bool = True):
        self.model = model
        self.X_train, self.y_train = check_X_y(X_train, y_train)
        self.X_valid, self.y_valid = check_X_y(X_valid, y_valid)
        self.metric = metric
        self._cache: dict[frozenset, float] | None = {} if cache else None
        self.calls = 0  # number of *model trainings* performed
        self._majority = _majority_class(self.y_valid)

    @property
    def n_players(self) -> int:
        return len(self.y_train)

    def null_value(self) -> float:
        """Utility of the empty coalition: predict the validation majority
        class (the best label-free constant predictor)."""
        constant = np.full(len(self.y_valid), self._majority)
        return float(self.metric(self.y_valid, constant))

    def full_value(self) -> float:
        """Utility of the grand coalition (all training data)."""
        return self(np.arange(self.n_players))

    def __call__(self, subset_indices) -> float:
        subset = np.asarray(subset_indices, dtype=int)
        if subset.ndim != 1:
            raise ValidationError("subset indices must be a 1-D index array")
        if len(subset) == 0:
            return self.null_value()
        key = frozenset(subset.tolist()) if self._cache is not None else None
        if key is not None and key in self._cache:
            return self._cache[key]
        y_sub = self.y_train[subset]
        classes = np.unique(y_sub)
        if len(classes) < 2:
            # Single-class coalition: the induced model is the constant
            # predictor of that class.
            constant = np.full(len(self.y_valid), classes[0])
            value = float(self.metric(self.y_valid, constant))
        else:
            try:
                model = clone(self.model)
                model.fit(self.X_train[subset], y_sub)
                self.calls += 1
                predictions = model.predict(self.X_valid)
            except ValidationError:
                # Coalition too small for this model (e.g. k-NN with
                # |S| < k): fall back to the coalition's majority class,
                # the best constant predictor the coalition supports.
                predictions = np.full(len(self.y_valid), _majority_class(y_sub))
            value = float(self.metric(self.y_valid, predictions))
        if key is not None:
            self._cache[key] = value
        return value


def _majority_class(y: np.ndarray):
    classes, counts = np.unique(y, return_counts=True)
    return classes[np.argmax(counts)]
