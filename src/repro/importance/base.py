"""The utility function shared by game-theoretic importance methods.

Data Shapley, Banzhaf and Beta Shapley all view training as a cooperative
game: a coalition is a subset of training examples, and the coalition's
payoff is the quality (validation metric) of a model trained on it.
:class:`Utility` packages that game, with caching and well-defined
behaviour on degenerate coalitions (empty or single-class subsets, which
most models cannot fit).

Evaluation runs through :mod:`repro.runtime`: pass ``runtime=`` to pick a
backend (``serial`` / ``thread`` / ``process``), share a
:class:`~repro.runtime.FingerprintCache` across estimators and runs, and
get progress/cancellation hooks. The batch APIs
(:meth:`Utility.evaluate_many`, :meth:`Utility.walk_permutations`) are
what the estimators submit work through; their results are
backend-invariant because every task is a pure function of its inputs.

When the model has a registered incremental kernel
(:mod:`repro.importance.kernels` — the registry covers the whole
``repro.ml`` model zoo), coalition values come from the kernel's
precomputed state instead of a fresh clone-and-fit, with bit-identical
(or certified-exact) scores, identical ``calls`` accounting and
unchanged cache keys. Models with a documented fallback registration use
the retrain path exactly as before; either way
:attr:`Utility.kernel_resolution` records how dispatch concluded.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_X_y
from repro.importance.kernels import CoalitionKernel, resolve_kernel
from repro.ml.base import clone
from repro.ml.metrics import accuracy_score
from repro.runtime.cache import fingerprint
from repro.runtime.checkpoint import LoopCheckpointer
from repro.runtime.runtime import Runtime, resolve_runtime


class _UtilityCore:
    """Picklable evaluation core: everything a worker needs to compute
    ``u(S)``, and nothing it does not (no caches, no pools). The optional
    incremental kernel lives here so process workers receive its
    precomputed state (distance matrix / sufficient statistics) once,
    with the shared payload, not per task."""

    def __init__(self, model, X_train, y_train, X_valid, y_valid, metric,
                 kernel: CoalitionKernel | None = None):
        self.model = model
        self.X_train = X_train
        self.y_train = y_train
        self.X_valid = X_valid
        self.y_valid = y_valid
        self.metric = metric
        self.majority = _majority_class(y_valid)
        self.kernel = kernel

    def null_value(self) -> float:
        constant = np.full(len(self.y_valid), self.majority)
        return float(self.metric(self.y_valid, constant))

    def evaluate(self, subset: np.ndarray) -> tuple[float, int, bool]:
        """Value of one coalition.

        Returns ``(value, n_trainings, used_kernel)``; ``n_trainings``
        counts the model fits the retrain path performs (the kernel
        reports the same counts without fitting, so convergence and
        ``Utility.calls`` accounting are path-independent).
        """
        if len(subset) == 0:
            return self.null_value(), 0, False
        y_sub = self.y_train[subset]
        classes = np.unique(y_sub)
        if len(classes) < 2:
            # Single-class coalition: the induced model is the constant
            # predictor of that class.
            constant = np.full(len(self.y_valid), classes[0])
            return float(self.metric(self.y_valid, constant)), 0, False
        if self.kernel is not None:
            # `incremental` is the kernel's honesty flag: False means it
            # answered by replaying a full direct solve, which must land
            # in the fallback_retrains counter like any other retrain.
            return self.kernel.evaluate(subset, y_sub, classes)
        trained = 0
        try:
            model = clone(self.model)
            model.fit(self.X_train[subset], y_sub)
            trained = 1
            predictions = model.predict(self.X_valid)
        except ValidationError:
            # Coalition too small for this model (e.g. k-NN with
            # |S| < k): fall back to the coalition's majority class,
            # the best constant predictor the coalition supports.
            predictions = np.full(len(self.y_valid), _majority_class(y_sub))
        return float(self.metric(self.y_valid, predictions)), trained, False

    def walk_steps(self, permutation: np.ndarray):
        """Yield ``(value, trained, used_kernel)`` per prefix of
        ``permutation`` — the kernel's incremental walk when one is
        attached, otherwise one retrain-path evaluation per prefix."""
        if self.kernel is not None:
            return self.kernel.walk_steps(permutation)
        return (self.evaluate(permutation[: pos + 1])
                for pos in range(len(permutation)))


def _evaluate_subset_task(core: _UtilityCore,
                          subset) -> tuple[float, int, bool]:
    return core.evaluate(subset)


def _walk_permutation_task(core: _UtilityCore, task):
    """Walk one permutation's prefix chain; returns ``(marginals,
    n_trainings, kernel_steps, fallback_retrains)`` where
    ``marginals[pos]`` belongs to player ``permutation[pos]``. Positions
    after a truncation point keep marginal 0."""
    permutation, truncation_tol, full_value, null_value = task
    marginals = np.zeros(len(permutation))
    previous = null_value
    trainings = 0
    kernel_steps = 0
    fallback_retrains = 0
    for pos, (value, trained, used_kernel) in enumerate(
            core.walk_steps(permutation)):
        trainings += trained
        if used_kernel:
            kernel_steps += 1
        else:
            fallback_retrains += trained
        marginals[pos] = value - previous
        previous = value
        if truncation_tol > 0 and abs(full_value - value) < truncation_tol:
            break
    return marginals, trainings, kernel_steps, fallback_retrains


class Utility:
    """Coalition-value function ``u(S) = metric(model trained on S)``.

    Parameters
    ----------
    model:
        Unfitted estimator prototype; cloned for every evaluation.
    X_train, y_train:
        The full player pool; coalitions index into these.
    X_valid, y_valid:
        Held-out data the metric is computed on.
    metric:
        ``metric(y_true, y_pred) -> float``; accuracy by default.
    cache:
        Memoize coalition values by index frozenset in-process. Worth it
        for MSR-style estimators that revisit coalitions; permutation
        sampling rarely repeats, so it can be disabled.
    runtime:
        ``None`` for inline serial evaluation, a backend name
        (``"serial"``/``"thread"``/``"process"``), or a
        :class:`repro.runtime.Runtime`. A runtime with a
        :class:`~repro.runtime.FingerprintCache` additionally memoizes
        values across Utility instances and (with a disk tier) processes.
        When the utility builds the runtime itself (backend name or bare
        executor), it owns it: use the utility as a context manager, or
        call :meth:`close`, to release the worker pool deterministically.
    faults:
        Optional :class:`repro.runtime.FaultPolicy` (or dict of its
        fields) for the runtime this utility builds — retries, per-chunk
        timeouts, and the ``on_worker_failure`` degradation strategy
        applied to every batch. Only valid together with a backend-name
        ``runtime``; a shared :class:`~repro.runtime.Runtime` carries
        its own policy.
    kernel:
        ``"auto"`` (default) attaches the registered incremental kernel
        for the model's type when one exists (dispatch walks the MRO and
        covers the whole ``repro.ml`` zoo — k-NN, GaussianNB, the linear
        Sherman–Morrison kernel, the warm-start continuation kernels and
        coalition-invariant Pipelines), making coalition evaluation
        O(update) instead of O(retrain) with bit-identical or
        certified-exact scores; ``"off"`` / ``None`` / ``False`` forces
        the retrain path; a :class:`repro.importance.CoalitionKernel`
        instance is used as-is. :attr:`kernel_resolution` records how
        auto-dispatch concluded (kernel / declined / documented fallback
        / unregistered). The kernel is built eagerly so the process
        backend ships its precomputed state to workers exactly once.
    """

    def __init__(self, model, X_train, y_train, X_valid, y_valid,
                 metric=accuracy_score, cache: bool = True, runtime=None,
                 kernel="auto", faults=None):
        X_train, y_train = check_X_y(X_train, y_train)
        X_valid, y_valid = check_X_y(X_valid, y_valid)
        if kernel == "auto":
            kernel, resolution = resolve_kernel(model, X_train, y_train,
                                                X_valid, y_valid, metric)
        elif kernel in (None, False, "off"):
            kernel = None
            resolution = {"resolution": "disabled",
                          "reason": "kernel explicitly disabled"}
        elif isinstance(kernel, CoalitionKernel):
            resolution = {"resolution": "kernel", "kernel": kernel.name,
                          "registered_for": None,
                          "reason": "caller-supplied kernel instance"}
        else:
            raise ValidationError(
                "kernel must be 'auto', 'off'/None/False, or a "
                f"CoalitionKernel — got {type(kernel).__name__}")
        self.kernel_resolution = resolution
        self._core = _UtilityCore(model, X_train, y_train, X_valid, y_valid,
                                  metric, kernel=kernel)
        self.runtime = resolve_runtime(runtime, faults=faults)
        self._owns_runtime = (self.runtime is not None
                              and not isinstance(runtime, Runtime))
        self._cache: dict[tuple, float] | None = {} if cache else None
        self.calls = 0  # number of *model trainings* performed (or skipped
        # by an incremental kernel — the count is path-independent)
        self.kernel_steps = 0       # coalition values via the kernel
        self.fallback_retrains = 0  # actual clone+fit evaluations
        self._kernel_announced = False
        self._base_fingerprint: str | None = None

    @classmethod
    def from_sharded(cls, model, train, X_valid, y_valid, *,
                     features: str = "X", label: str = "y",
                     reader: dict | None = None, observer=None, **kwargs):
        """Build a utility whose player pool lives in a sharded dataset.

        ``train`` is a :class:`repro.data.ShardedDataset` (or its
        directory path) holding the ``features``/``label`` arrays. The
        pool is streamed in through the fault-tolerant reading service —
        pass ``reader={"workers": ..., "faults": ..., "on_corrupt":
        ...}`` to control it — and, because shard reads are bit-exact,
        every downstream score (and every coalition fingerprint) is
        hex-identical to a utility built on the in-memory arrays, on
        every backend, with or without reader faults along the way.
        Remaining ``**kwargs`` go to the regular constructor.
        """
        from repro.data import read_arrays, resolve_dataset
        dataset = resolve_dataset(train, observer=observer)
        arrays = read_arrays(dataset, observer=observer, **(reader or {}))
        for name in (features, label):
            if name not in arrays:
                raise ValidationError(
                    f"sharded dataset {dataset.path} has no array named "
                    f"{name!r}; have {dataset.array_names}")
        return cls(model, arrays[features], arrays[label],
                   X_valid, y_valid, **kwargs)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool of a runtime this utility built for
        itself (``runtime="thread"`` / ``"process"``). A shared
        :class:`~repro.runtime.Runtime` passed in by the caller is left
        untouched — its owner closes it."""
        if self._owns_runtime and self.runtime is not None:
            self.runtime.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- convenience views (kept for backwards compatibility) --------------
    @property
    def model(self):
        return self._core.model

    @property
    def X_train(self):
        return self._core.X_train

    @property
    def y_train(self):
        return self._core.y_train

    @property
    def X_valid(self):
        return self._core.X_valid

    @property
    def y_valid(self):
        return self._core.y_valid

    @property
    def metric(self):
        return self._core.metric

    @property
    def n_players(self) -> int:
        return len(self._core.y_train)

    @property
    def kernel(self) -> CoalitionKernel | None:
        """The attached incremental kernel, or ``None`` (retrain path)."""
        return self._core.kernel

    @property
    def kernel_name(self) -> str | None:
        """Short name of the active kernel (``"knn"``, ``"gaussian_nb"``)
        or ``None`` when evaluations retrain the model."""
        return self._core.kernel.name if self._core.kernel else None

    # -- fingerprinting ----------------------------------------------------
    def base_fingerprint(self) -> str:
        """Hash of (model config, data, metric) — the game's identity.
        Computed once; coalition keys extend it with the sorted indices."""
        if self._base_fingerprint is None:
            core = self._core
            self._base_fingerprint = fingerprint(
                core.model, core.X_train, core.y_train, core.X_valid,
                core.y_valid, core.metric)
        return self._base_fingerprint

    def coalition_key(self, subset: np.ndarray) -> str:
        return fingerprint(self.base_fingerprint(), np.sort(subset))

    # -- scalar values -----------------------------------------------------
    def null_value(self) -> float:
        """Utility of the empty coalition: predict the validation majority
        class (the best label-free constant predictor)."""
        return self._core.null_value()

    def full_value(self) -> float:
        """Utility of the grand coalition (all training data)."""
        return self(np.arange(self.n_players))

    def __call__(self, subset_indices) -> float:
        return float(self.evaluate_many([subset_indices],
                                        stage="utility.call")[0])

    # -- batch APIs --------------------------------------------------------
    def _check_subset(self, subset_indices) -> np.ndarray:
        subset = np.asarray(subset_indices, dtype=int)
        if subset.ndim != 1:
            raise ValidationError("subset indices must be a 1-D index array")
        return subset

    def _lookup(self, subset: np.ndarray, memo_key: tuple | None):
        if memo_key is not None and memo_key in self._cache:
            return self._cache[memo_key]
        shared_cache = self.runtime.cache if self.runtime is not None else None
        if shared_cache is not None:
            return shared_cache.get(self.coalition_key(subset))
        return None

    def _store(self, subset: np.ndarray, memo_key: tuple | None,
               value: float) -> None:
        if memo_key is not None:
            self._cache[memo_key] = value
        shared_cache = self.runtime.cache if self.runtime is not None else None
        if shared_cache is not None:
            shared_cache.put(self.coalition_key(subset), value)

    def _poll_cancel(self, stage: str) -> None:
        # The executor polls between chunks, but small batches may take
        # the inline fast path; a tripped token must abort those too.
        if self.runtime is not None and self.runtime.cancel is not None:
            self.runtime.cancel.raise_if_cancelled(stage)

    def evaluate_many(self, coalitions, *,
                      stage: str = "utility.batch") -> np.ndarray:
        """Evaluate a batch of coalitions; returns values in batch order.

        Cache hits (in-process memo and the runtime's fingerprint cache)
        are resolved up front; only the distinct misses are dispatched to
        the runtime's executor. Duplicate coalitions inside one batch —
        under the canonical sorted-index key, so element order never
        matters — are evaluated once, even when the in-process memo is
        disabled.
        """
        self._poll_cancel(stage)
        subsets = [self._check_subset(c) for c in coalitions]
        values = np.empty(len(subsets))
        pending: dict[tuple, list[int]] = {}
        order: list[tuple[tuple, np.ndarray]] = []
        for i, subset in enumerate(subsets):
            if len(subset) == 0:
                values[i] = self._core.null_value()
                continue
            memo_key = tuple(np.sort(subset).tolist())
            cached = self._lookup(subset, memo_key if self._cache is not None
                                  else None)
            if cached is not None:
                values[i] = cached
                continue
            if memo_key in pending:
                pending[memo_key].append(i)
            else:
                pending[memo_key] = [i]
                order.append((memo_key, subset))
        if order:
            if self.runtime is not None and len(order) > 1:
                results = self.runtime.map(
                    _evaluate_subset_task, [s for _, s in order],
                    shared=self._core, stage=stage)
            else:
                results = [self._core.evaluate(s) for _, s in order]
            kernel_steps = 0
            fallback_retrains = 0
            for (memo_key, subset), (value, trained, used_kernel) in zip(
                    order, results):
                self.calls += trained
                if used_kernel:
                    kernel_steps += 1
                else:
                    fallback_retrains += trained
                self._store(subset, memo_key if self._cache is not None
                            else None, value)
                for i in pending[memo_key]:
                    values[i] = value
            self._record_kernel_activity(kernel_steps, fallback_retrains)
        return values

    def walk_permutations(self, permutations, *, truncation_tol: float = 0.0,
                          full_value: float | None = None,
                          stage: str = "utility.walks") -> list[np.ndarray]:
        """Walk each permutation's prefix chain (optionally truncated).

        Returns one marginal-contribution array per permutation, aligned
        by position (``marginals[pos]`` belongs to ``permutation[pos]``).
        Each walk is an independent task, so batches parallelize across
        permutations on any backend with identical results.
        """
        self._poll_cancel(stage)
        if truncation_tol < 0:
            raise ValidationError("truncation_tol must be >= 0")
        if truncation_tol > 0 and full_value is None:
            full_value = self.full_value()
        null_value = self.null_value()
        tasks = [(self._check_subset(p), float(truncation_tol),
                  0.0 if full_value is None else float(full_value),
                  null_value)
                 for p in permutations]
        if self.runtime is not None and len(tasks) > 1:
            results = self.runtime.map(_walk_permutation_task, tasks,
                                       shared=self._core, stage=stage)
        else:
            results = [_walk_permutation_task(self._core, t) for t in tasks]
        marginal_arrays = []
        kernel_steps = 0
        fallback_retrains = 0
        for marginals, trainings, steps, fallbacks in results:
            self.calls += trainings
            kernel_steps += steps
            fallback_retrains += fallbacks
            marginal_arrays.append(marginals)
        self._record_kernel_activity(kernel_steps, fallback_retrains)
        return marginal_arrays

    # -- introspection -----------------------------------------------------
    def _record_kernel_activity(self, kernel_steps: int,
                                fallback_retrains: int) -> None:
        """Fold one batch's path counters into the utility totals and,
        when the runtime carries an enabled observer, emit them as
        ``kernel.incremental_steps`` / ``kernel.fallback_retrains`` plus
        a one-time ``utility.kernel`` selection event."""
        self.kernel_steps += kernel_steps
        self.fallback_retrains += fallback_retrains
        observer = self.runtime.observer if self.runtime is not None else None
        if observer is None or not observer.enabled:
            return
        if not self._kernel_announced:
            self._kernel_announced = True
            observer.event("utility.kernel", kernel=self.kernel_name,
                           model=type(self._core.model).__name__,
                           n_players=self.n_players,
                           resolution=self.kernel_resolution.get(
                               "resolution"),
                           reason=self.kernel_resolution.get("reason"))
        if kernel_steps:
            observer.count("kernel.incremental_steps", kernel_steps)
        if fallback_retrains:
            observer.count("kernel.fallback_retrains", fallback_retrains)

    def restore_accounting(self, *, calls: int = 0, kernel_steps: int = 0,
                           fallback_retrains: int = 0) -> None:
        """Fold a resumed checkpoint's recorded work back into the
        counters, so a resumed run reports the same training/kernel
        totals as an uninterrupted one (the skipped permutations'
        trainings happened — in the killed process)."""
        self.calls += int(calls)
        self.kernel_steps += int(kernel_steps)
        self.fallback_retrains += int(fallback_retrains)

    def cache_info(self) -> dict:
        """Counters for reports: trainings, memo size, kernel path
        counters, runtime stats."""
        return {
            "calls": self.calls,
            "memo_entries": len(self._cache) if self._cache is not None else 0,
            "kernel": {
                "name": self.kernel_name,
                "incremental_steps": self.kernel_steps,
                "fallback_retrains": self.fallback_retrains,
                "resolution": self.kernel_resolution,
            },
            "runtime": self.runtime.stats() if self.runtime is not None
            else None,
        }


def _majority_class(y: np.ndarray):
    classes, counts = np.unique(y, return_counts=True)
    return classes[np.argmax(counts)]


# --- anytime/partial-result plumbing shared by the estimator loops ----------

def clt_stderr(sums: np.ndarray, sumsqs: np.ndarray,
               count: int) -> np.ndarray:
    """Per-player standard error of the running mean after ``count``
    i.i.d. samples.

    ``sums``/``sumsqs`` accumulate each player's samples and squared
    samples; the CLT estimate is ``sqrt(sample_var / count)`` with the
    unbiased (``count - 1``) variance. Returns ``inf`` for every player
    while ``count < 2`` — one sample carries no spread information, so
    an anytime consumer's ``stop_when(width)`` can never fire on it.
    """
    if count < 2:
        return np.full(len(sums), np.inf)
    mean = sums / count
    var = np.maximum(sumsqs - count * mean * mean, 0.0) / (count - 1)
    return np.sqrt(var / count)


def resolve_partial(partial):
    """Normalize the ``partial=`` anytime-results hook the sampling
    estimators accept.

    ``None`` disables partial publishing. Anything else must expose a
    callable ``publish(method=, completed=, total=, values=, stderr=)``
    returning truthy to stop the loop early, plus an optional integer
    ``every`` attribute (publish/batch cadence in completed work units,
    default 1). Estimators may pass additional keyword fields (e.g.
    ``exact=True`` from the closed-form Shapley dispatch), so duck-typed
    hooks should accept ``**fields``.
    :class:`repro.serve.AnytimeEstimate` implements this protocol.
    """
    if partial is None:
        return None
    if not callable(getattr(partial, "publish", None)):
        raise ValidationError(
            "partial= must be None or expose a publish(**fields) callable "
            f"(see repro.serve.AnytimeEstimate) — got "
            f"{type(partial).__name__}")
    return partial


def partial_every(partial) -> int:
    """Publish cadence of a ``partial=`` hook (``every`` attr, >= 1)."""
    return max(1, int(getattr(partial, "every", 1) or 1))


# --- checkpoint/resume plumbing shared by the estimator loops ---------------

def hex_floats(values) -> list[str]:
    """Bitwise-exact serialization of a float sequence (``float.hex``)."""
    return [float(v).hex() for v in values]


def unhex_floats(hexes) -> np.ndarray:
    """Inverse of :func:`hex_floats`; restores the exact bit patterns."""
    return np.array([float.fromhex(h) for h in hexes], dtype=float)


def require_checkpoint_seed(seed, method: str) -> int:
    """Checkpoint/resume needs the sample stream to be regenerable: the
    resumed process re-derives permutation/coalition ``i`` from
    ``spawn_rngs(seed, n)[i]``, which is only deterministic for an
    integer root seed (``None`` draws OS entropy; a shared ``Generator``
    carries cross-run state)."""
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        return int(seed)
    raise ValidationError(
        f"{method}: checkpoint=/resume_from= require an integer seed so "
        "the resumed run regenerates the identical sample streams — got "
        f"{type(seed).__name__}")


class _CheckpointSession:
    """One estimator run's checkpoint state: cadence, utility-counter
    deltas, and the fingerprint-cache put journal.

    Wraps a :class:`~repro.runtime.LoopCheckpointer` with the
    accounting every utility-driven loop needs for hex-identical
    resumption: the snapshot carries (cumulatively, since the *original*
    run's start) the trainings performed, the kernel path counters, and
    every ``(key, value)`` the run put into the runtime's
    :class:`~repro.runtime.FingerprintCache` — so a resumed run restores
    the skipped work's side effects (``Utility.calls``, cache keys and
    bitwise values) exactly, not just its scores.
    """

    def __init__(self, utility: "Utility", *, checkpoint, resume_from,
                 every: int, kind: str, identity: str, observer):
        self.ckpt = LoopCheckpointer(checkpoint, kind=kind,
                                     identity=identity, every=every,
                                     observer=observer,
                                     resume_from=resume_from)
        self.utility = utility
        self.cache = utility.runtime.cache if utility.runtime is not None \
            else None
        self._calls_base = utility.calls
        self._kernel_base = utility.kernel_steps
        self._fallback_base = utility.fallback_retrains
        # Journal from the very start so snapshots carry the cumulative
        # cache writes; resume() re-puts the restored entries *through*
        # the journal, keeping the cumulative invariant across kills.
        self._journal = self.cache.start_journal() \
            if self.cache is not None else None

    @property
    def every(self) -> int:
        return self.ckpt.every

    def resume(self) -> dict | None:
        """Load the snapshot and replay its side effects (counters,
        cache entries); returns the payload for the loop to replay its
        scores out of, or ``None`` to start fresh."""
        payload = self.ckpt.resume()
        if payload is None:
            return None
        self.utility.restore_accounting(
            calls=payload.get("calls", 0),
            kernel_steps=payload.get("kernel_steps", 0),
            fallback_retrains=payload.get("fallback_retrains", 0))
        if self.cache is not None:
            for key, hexval in payload.get("cache_entries", []):
                self.cache.put(key, float.fromhex(hexval))
        return payload

    def record_skipped(self, *, completed: int, total: int,
                       **extra) -> None:
        self.ckpt.record_skipped(completed=completed, total=total,
                                 skipped_units=completed, **extra)

    def base_state(self, completed: int) -> dict:
        utility = self.utility
        return {
            "completed": int(completed),
            "calls": utility.calls - self._calls_base,
            "kernel_steps": utility.kernel_steps - self._kernel_base,
            "fallback_retrains":
                utility.fallback_retrains - self._fallback_base,
            "cache_entries": [[key, float(value).hex()]
                              for key, value in self._journal]
            if self._journal is not None else [],
        }

    def session(self, completed_fn, extra_fn):
        """Arm the snapshot provider; returns the signal-flush guard to
        wrap the loop body in (``with session.session(...):``)."""
        def state() -> dict:
            payload = self.base_state(completed_fn())
            payload.update(extra_fn())
            return payload
        return self.ckpt.armed(state)

    def maybe_flush(self, completed: int) -> None:
        self.ckpt.maybe_flush(completed)

    def flush(self) -> None:
        """Snapshot now, ignoring the cadence — the early-stop path, so
        an anytime-stopped job's final state is durable and resumable."""
        self.ckpt.flush()

    def close(self) -> None:
        if self._journal is not None and self.cache is not None:
            self.cache.stop_journal(self._journal)


def open_checkpoint_session(utility: "Utility", *, checkpoint, resume_from,
                            every: int, kind: str, identity: str,
                            observer) -> _CheckpointSession | None:
    """Build the estimator-side checkpoint session, or ``None`` when
    neither ``checkpoint=`` nor ``resume_from=`` was given (the loop
    then runs exactly its pre-checkpoint code path). Falls back to the
    runtime's observer when the estimator has none, so checkpoint
    accounting lands wherever the run is being observed."""
    if checkpoint is None and resume_from is None:
        return None
    if not observer.enabled and utility.runtime is not None:
        observer = utility.runtime.observer
    return _CheckpointSession(utility, checkpoint=checkpoint,
                              resume_from=resume_from, every=every,
                              kind=kind, identity=identity,
                              observer=observer)


def emit_importance_run(observer, *, method: str, params: dict, seed,
                        utility: "Utility", calls_before: int,
                        values: np.ndarray, **extra) -> None:
    """Log the standard replayable ``importance.run`` provenance event.

    Shared by every estimator wired to :mod:`repro.observe`: the event
    carries the (method, params, seed, data fingerprint) tuple that — by
    the backend-invariance guarantee — fully determines ``values``, plus
    the training count and a score summary for cheap run diffing.
    """
    observer.count("utility.evaluations", utility.calls - calls_before)
    observer.event(
        "importance.run", method=method, params=params, seed=seed,
        n_players=utility.n_players,
        data_fingerprint=utility.base_fingerprint(),
        utility_calls=utility.calls - calls_before,
        kernel=utility.kernel_name,
        kernel_incremental_steps=utility.kernel_steps,
        kernel_fallback_retrains=utility.fallback_retrains,
        score_mean=float(np.mean(values)),
        score_min=float(np.min(values)), score_max=float(np.max(values)),
        **extra)
