"""Data importance for retrieval-augmented generation (paper ref [47]).

Lyu et al. observe that a retrieval-augmented predictor is, at its core,
a k-nearest-neighbor model over the *retrieval corpus*: the corpus
documents are the training set, retrieval is the neighbor lookup, and the
answer is aggregated from the retrieved documents. The exact KNN-Shapley
machinery therefore prices every corpus document's contribution to
end-task quality in closed form — no model retraining, no sampling —
which is how noisy or poisoned corpus entries are found and pruned.

This module implements that specialization: a
:class:`RetrievalAugmentedClassifier` (embed -> retrieve top-k by cosine
-> vote) and :func:`rag_corpus_importance` scoring each corpus document.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import NotFittedError, ValidationError
from repro.importance.knn_shapley import knn_shapley
from repro.ml.neighbors import pairwise_distances
from repro.text.vectorize import SentenceEmbedder


class RetrievalAugmentedClassifier:
    """Classify queries by retrieving labelled corpus documents.

    Parameters
    ----------
    k:
        Number of documents retrieved per query.
    embedder:
        Text embedder with fit/transform; a default
        :class:`SentenceEmbedder` when omitted.
    """

    def __init__(self, k: int = 5, embedder=None):
        if k < 1:
            raise ValidationError("k must be >= 1")
        self.k = k
        # Retrieval needs finer-grained similarity than classification, so
        # the default embedding is wider than the letter-classifier's.
        self.embedder = embedder or SentenceEmbedder(dim=256, n_buckets=4096)

    def fit(self, corpus_texts, corpus_labels) -> "RetrievalAugmentedClassifier":
        corpus_texts = list(corpus_texts)
        corpus_labels = np.asarray(corpus_labels)
        if len(corpus_texts) != len(corpus_labels):
            raise ValidationError("texts and labels must align")
        if self.k > len(corpus_texts):
            raise ValidationError(
                f"k={self.k} exceeds corpus size {len(corpus_texts)}")
        self.embedder.fit(corpus_texts)
        self.corpus_embeddings_ = self.embedder.transform(corpus_texts)
        self.corpus_labels_ = corpus_labels
        self.classes_ = np.unique(corpus_labels)
        return self

    def retrieve(self, query_texts):
        """Top-k corpus indices per query (cosine similarity, descending),
        with deterministic index tie-breaking."""
        if not hasattr(self, "corpus_embeddings_"):
            raise NotFittedError("fit the corpus first")
        queries = self.embedder.transform(list(query_texts))
        distances = pairwise_distances(queries, self.corpus_embeddings_,
                                       metric="cosine")
        order = np.lexsort(
            (np.broadcast_to(np.arange(distances.shape[1]), distances.shape),
             distances), axis=1)
        return order[:, : self.k]

    def predict(self, query_texts) -> np.ndarray:
        retrieved = self.retrieve(query_texts)
        out = []
        for row in retrieved:
            values, counts = np.unique(self.corpus_labels_[row],
                                       return_counts=True)
            out.append(values[np.argmax(counts)])
        return np.array(out)

    def score(self, query_texts, query_labels) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(query_labels),
                              self.predict(query_texts))


def rag_corpus_importance(model: RetrievalAugmentedClassifier,
                          query_texts, query_labels) -> np.ndarray:
    """Exact Shapley value of every corpus document for answer quality.

    The retrieval-augmented predictor is a k-NN in embedding space, so
    the closed-form KNN-Shapley applies directly; values follow the
    library convention (lower = more harmful corpus entry).
    """
    if not hasattr(model, "corpus_embeddings_"):
        raise NotFittedError("fit the corpus first")
    query_embeddings = model.embedder.transform(list(query_texts))
    return knn_shapley(model.corpus_embeddings_, model.corpus_labels_,
                       query_embeddings, np.asarray(query_labels),
                       k=model.k, metric="cosine")
