"""The tutorial facade: the ``navigating_data_errors`` API of Figures 2-4.

The code snippets shown in the paper's figures use a compact module-level
API (``nde.load_recommendation_letters``, ``nde.inject_labelerrors``,
``nde.knn_shapley_values``, ``nde.datascope``, ``nde.encode_symbolic``,
``nde.estimate_with_zorro``, ...). This module provides those exact entry
points as thin wrappers over the library subpackages, so the figures'
snippets run almost verbatim::

    import repro as nde
    train_df, valid_df, test_df = nde.load_recommendation_letters()
    train_df_err, report = nde.inject_labelerrors(train_df, fraction=0.1)
    acc_dirty = nde.evaluate_model(train_df_err, validation=valid_df)
    importances = nde.knn_shapley_values(train_df_err, validation=valid_df)
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.frame import DataFrame
from repro.errors.labels import inject_label_errors
from repro.importance.knn_shapley import knn_shapley
from repro.ml.base import clone
from repro.ml.compose import ColumnTransformer, Pipeline
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import accuracy_score
from repro.ml.preprocessing import OneHotEncoder, SimpleImputer, StandardScaler
from repro.text.vectorize import SentenceEmbedder

_LABEL = "sentiment"


def default_letter_encoder() -> ColumnTransformer:
    """The feature encoder the tutorial uses for recommendation letters:
    text embedding + scaled numerics + one-hot degree."""
    return ColumnTransformer([
        ("text", SentenceEmbedder(dim=32), "letter_text"),
        ("num", Pipeline([("imp", SimpleImputer()), ("sc", StandardScaler())]),
         ["years_experience", "employer_rating"]),
        ("deg", OneHotEncoder(), "degree"),
    ])


def inject_labelerrors(train_df: DataFrame, *, fraction: float = 0.1,
                       seed=0):
    """Figure 2's ``nde.inject_labelerrors``: flip sentiment labels.

    Returns ``(dirty_frame, error_report)``.
    """
    return inject_label_errors(train_df, column=_LABEL, fraction=fraction,
                               seed=seed)


def _encode(train_df: DataFrame, encoder=None):
    encoder = clone(encoder) if encoder is not None else default_letter_encoder()
    feature_columns = [c for c in train_df.columns if c != _LABEL]
    X = encoder.fit_transform(train_df.select(feature_columns))
    y = np.array(train_df[_LABEL].to_list())
    return X, y, encoder, feature_columns


def evaluate_model(train_df: DataFrame, *, validation: DataFrame,
                   model=None, encoder=None) -> float:
    """Train the tutorial classifier on ``train_df`` and report accuracy
    on ``validation`` (Figure 2's ``nde.evaluate_model``)."""
    model = model or LogisticRegression(max_iter=100)
    X, y, fitted_encoder, feature_columns = _encode(train_df, encoder)
    fitted = clone(model)
    fitted.fit(X, y)
    X_valid = fitted_encoder.transform(validation.select(feature_columns))
    y_valid = np.array(validation[_LABEL].to_list())
    return float(accuracy_score(y_valid, fitted.predict(X_valid)))


def knn_shapley_values(train_df: DataFrame, *, validation: DataFrame,
                       k: int = 5, encoder=None) -> np.ndarray:
    """Figure 2's ``nde.knn_shapley_values``: per-row importance of the
    (possibly dirty) training frame, lower = more harmful."""
    X, y, fitted_encoder, feature_columns = _encode(train_df, encoder)
    X_valid = fitted_encoder.transform(validation.select(feature_columns))
    y_valid = np.array(validation[_LABEL].to_list())
    return knn_shapley(X, y, X_valid, y_valid, k=k)


def pretty_print(frame: DataFrame, max_rows: int = 25) -> None:
    """Figure 2's ``nde.pretty_print``."""
    print(frame.pretty(max_rows=max_rows))


def _with_numeric_target(frame: DataFrame, label_column: str) -> DataFrame:
    """Materialize the numeric regression target Zorro needs when the
    frame only carries the tutorial's categorical ``sentiment`` label —
    this is what lets the paper's Figure-4 snippet run verbatim on the
    recommendation-letter tables."""
    if label_column in frame.columns or _LABEL not in frame.columns:
        return frame
    return frame.with_column(
        label_column, lambda r: 1.0 if r[_LABEL] == "positive" else 0.0)


def encode_symbolic(train_df: DataFrame, *, uncertain_feature: str,
                    missing_percentage: float, missingness: str = "MNAR",
                    label_column: str = "target",
                    feature_columns: list[str] | None = None, seed=0):
    """Figure 4's ``nde.encode_symbolic``: inject the requested amount of
    missingness into ``uncertain_feature`` and lift the frame into a
    symbolic (interval) table.

    When ``label_column`` is absent but the frame carries the tutorial's
    ``sentiment`` label, a numeric 0/1 target is derived from it.

    Returns the :class:`repro.uncertain.SymbolicTable`.
    """
    from repro.errors.missing import inject_missing
    from repro.uncertain.zorro import encode_symbolic as lift

    train_df = _with_numeric_target(train_df, label_column)
    dirty, _ = inject_missing(train_df, column=uncertain_feature,
                              fraction=missing_percentage / 100.0,
                              mechanism=missingness, seed=seed)
    if feature_columns is None:
        # Numeric non-label columns, skipping key columns (ids carry no
        # signal and would dominate the interval ranges).
        feature_columns = [
            c for c in dirty.columns
            if c != label_column and not c.endswith("_id")
            and dirty[c].dtype.kind in ("f", "i", "b")
        ]
    return lift(dirty, feature_columns=feature_columns,
                label_column=label_column)


def estimate_with_zorro(table, test_data, y_test=None) -> float:
    """Figure 4's ``nde.estimate_with_zorro``: certified maximum
    worst-case training loss of the robust model (the figure's y-axis).

    ``test_data`` is a test :class:`DataFrame` carrying the table's
    feature and label columns (the snippet's ``test_df``), or a plain
    feature matrix with ``y_test`` supplied separately.
    """
    from repro.uncertain.zorro import estimate_worst_case_loss

    if isinstance(test_data, DataFrame):
        test_data = _with_numeric_target(test_data, table.label_column)
        X_test = test_data.select(table.columns).to_numpy()
        y_test = test_data[table.label_column].cast(float).to_numpy()
    else:
        X_test = np.asarray(test_data, dtype=float)
        if y_test is None:
            raise ValueError("y_test required when test_data is a matrix")
    return estimate_worst_case_loss(table, X_test, y_test)[
        "train_worst_case_mse"]


def visualize_uncertainty(max_losses: dict, feature: str,
                          width: int = 40) -> None:
    """Figure 4's ``nde.visualize_uncertainty``: ASCII bar chart of the
    maximum worst-case loss per missing percentage."""
    if not max_losses:
        return
    peak = max(max_losses.values())
    print(f"Maximum worst-case loss — missing values in {feature!r}:")
    for percentage in sorted(max_losses):
        value = max_losses[percentage]
        bar = "#" * max(1, int(width * value / max(peak, 1e-12)))
        print(f"{percentage:>4}%  {bar} {value:.4f}")
