"""Shared infrastructure: RNG handling, validation, errors, reporting."""

from repro.core.exceptions import (
    DataError,
    NotFittedError,
    ReproError,
    SchemaError,
    ValidationError,
)
from repro.core.rng import ensure_rng, spawn_rngs
from repro.core.validation import (
    check_array,
    check_consistent_length,
    check_fraction,
    check_positive_int,
    check_X_y,
)

__all__ = [
    "DataError",
    "NotFittedError",
    "ReproError",
    "SchemaError",
    "ValidationError",
    "ensure_rng",
    "spawn_rngs",
    "check_array",
    "check_consistent_length",
    "check_fraction",
    "check_positive_int",
    "check_X_y",
]
