"""Seeded randomness helpers.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None``, an integer, or a :class:`numpy.random.Generator`, and
normalizes it through :func:`ensure_rng`. This keeps experiments exactly
reproducible while letting callers share one generator across components.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a fixed seed, or an existing
        ``Generator`` which is returned unchanged (so state is shared).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise ValidationError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Used by Monte-Carlo estimators that parallelize over repetitions: each
    repetition gets its own stream so results do not depend on evaluation
    order.

    **Determinism guarantee.** Stream ``i`` is a pure function of
    ``(seed, i)`` — via :class:`numpy.random.SeedSequence` spawning — so
    the draws of repetition ``i`` are identical no matter which worker
    runs it, in what order repetitions complete, or how many repetitions
    run in total alongside it. This is what makes the ``serial``,
    ``thread`` and ``process`` runtime backends produce bit-identical
    estimates: estimators (``MonteCarloShapley``, ``DataBanzhaf``,
    ``BetaShapley``) draw repetition ``i``'s randomness from
    ``spawn_rngs(seed, n)[i]`` *before* submitting work, never from a
    stream shared across repetitions. Sharing one generator across
    repetitions (the pre-runtime behaviour) would make draw ``i`` depend
    on every earlier draw and therefore on execution order.
    """
    if n < 0:
        raise ValidationError(f"n must be non-negative, got {n}")
    root = ensure_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)] \
        if hasattr(root.bit_generator, "seed_seq") and root.bit_generator.seed_seq is not None \
        else [np.random.default_rng(root.integers(0, 2**63)) for _ in range(n)]
