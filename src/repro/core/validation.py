"""Input validation helpers shared across estimators and algorithms."""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError


def check_array(X, *, name: str = "X", ndim: int = 2, dtype=float,
                allow_nan: bool = False) -> np.ndarray:
    """Coerce ``X`` to an ndarray and validate its shape and finiteness.

    Parameters
    ----------
    X:
        Array-like input.
    name:
        Name used in error messages.
    ndim:
        Required number of dimensions; 1-D input is promoted to 2-D when
        ``ndim == 2`` only if it is a column of scalars is ambiguous, so we
        reject instead — callers must be explicit.
    dtype:
        Target dtype, or ``None`` to keep the input dtype.
    allow_nan:
        Whether NaN entries are acceptable (used by imputers and the
        incomplete-data algorithms, where NaN encodes a missing cell).
    """
    arr = np.asarray(X, dtype=dtype) if dtype is not None else np.asarray(X)
    if arr.ndim != ndim:
        raise ValidationError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not allow_nan and arr.dtype.kind == "f" and not np.all(np.isfinite(arr)):
        raise ValidationError(
            f"{name} contains NaN or infinite values; "
            "impute or use the repro.uncertain algorithms for incomplete data"
        )
    if allow_nan and arr.dtype.kind == "f" and np.any(np.isinf(arr)):
        raise ValidationError(f"{name} contains infinite values")
    return arr


def check_X_y(X, y, *, allow_nan: bool = False):
    """Validate a feature matrix / label vector pair."""
    X = check_array(X, name="X", ndim=2, allow_nan=allow_nan)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValidationError(f"y must be 1-dimensional, got shape {y.shape}")
    if len(X) != len(y):
        raise ValidationError(f"X and y have inconsistent lengths: {len(X)} != {len(y)}")
    return X, y


def check_consistent_length(*arrays) -> int:
    """Verify all arguments share the same first-dimension length."""
    lengths = {len(a) for a in arrays if a is not None}
    if len(lengths) > 1:
        raise ValidationError(f"inconsistent lengths: {sorted(lengths)}")
    return lengths.pop() if lengths else 0


def check_fraction(value: float, *, name: str = "fraction",
                   inclusive_low: bool = True, inclusive_high: bool = True) -> float:
    """Validate a value lies in [0, 1] (bounds optionally exclusive)."""
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        raise ValidationError(f"{name} must be in the unit interval, got {value}")
    return value


def check_positive_int(value, *, name: str = "value") -> int:
    """Validate a strictly positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)
