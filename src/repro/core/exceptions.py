"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library raises with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, dtype, or range)."""


class SchemaError(ReproError, KeyError):
    """A dataframe operation referenced a missing or incompatible column."""


class DataError(ReproError):
    """The data itself is unusable for the requested operation."""


class NotFittedError(ReproError, RuntimeError):
    """An estimator method requiring a fit was called before ``fit``."""


class BudgetExhaustedError(ReproError, RuntimeError):
    """A cleaning/challenge oracle was queried beyond its allowed budget."""


class ConvergenceWarning(UserWarning):
    """An iterative solver stopped before reaching its tolerance."""
