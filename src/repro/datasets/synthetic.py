"""Numeric toy distributions used by the survey-claim benchmarks."""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng


def make_blobs(n_samples: int = 200, n_features: int = 2, centers: int = 2,
               cluster_std: float = 1.0, center_spread: float = 4.0, seed=None):
    """Gaussian blobs, one per class.

    Returns ``(X, y)`` with balanced classes (sizes differ by at most one).
    """
    if n_samples < centers:
        raise ValidationError("need at least one sample per center")
    rng = ensure_rng(seed)
    centroids = rng.uniform(-center_spread, center_spread, size=(centers, n_features))
    sizes = np.full(centers, n_samples // centers)
    sizes[: n_samples % centers] += 1
    X_parts, y_parts = [], []
    for c in range(centers):
        X_parts.append(centroids[c] + cluster_std * rng.standard_normal((sizes[c], n_features)))
        y_parts.append(np.full(sizes[c], c))
    X = np.vstack(X_parts)
    y = np.concatenate(y_parts)
    perm = rng.permutation(n_samples)
    return X[perm], y[perm]


def make_moons(n_samples: int = 200, noise: float = 0.1, seed=None):
    """Two interleaving half circles — a non-linearly-separable binary task."""
    rng = ensure_rng(seed)
    n_a = n_samples // 2
    n_b = n_samples - n_a
    theta_a = np.pi * rng.uniform(0, 1, n_a)
    theta_b = np.pi * rng.uniform(0, 1, n_b)
    Xa = np.column_stack([np.cos(theta_a), np.sin(theta_a)])
    Xb = np.column_stack([1.0 - np.cos(theta_b), 0.5 - np.sin(theta_b)])
    X = np.vstack([Xa, Xb]) + noise * rng.standard_normal((n_samples, 2))
    y = np.concatenate([np.zeros(n_a, dtype=int), np.ones(n_b, dtype=int)])
    perm = rng.permutation(n_samples)
    return X[perm], y[perm]


def make_linear_separable(n_samples: int = 200, n_features: int = 5,
                          margin: float = 0.5, seed=None):
    """Linearly separable data with a known true hyperplane.

    Returns ``(X, y, w)`` where ``w`` is the generating weight vector —
    useful for tests that need a ground-truth decision boundary.
    """
    rng = ensure_rng(seed)
    w = rng.standard_normal(n_features)
    w /= np.linalg.norm(w)
    X, y = [], []
    while len(X) < n_samples:
        x = rng.standard_normal(n_features)
        score = x @ w
        if abs(score) >= margin:
            X.append(x)
            y.append(int(score > 0))
    return np.array(X), np.array(y), w
