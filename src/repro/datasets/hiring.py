"""The hiring scenario: recommendation letters plus side tables.

Recreates the tutorial's hands-on dataset (Section 3.1): a main table of
recommendation letters labelled with sentiment, a ``jobdetail`` side table
keyed by ``job_id``, and a ``social`` side table keyed by ``person_id``
with nullable social-media fields. Letters are composed from sentiment-
bearing phrase pools (visible in Figure 2 of the paper: "undermined our
project", "meticulous attention to detail", ...), so a text classifier has
real signal to learn.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import ensure_rng
from repro.dataframe.frame import DataFrame

_POSITIVE_PHRASES = [
    "meticulous attention to detail and thoroughness was crucial to our success",
    "consistently exceeded expectations and delivered outstanding results",
    "an exceptional collaborator who elevated the whole team",
    "demonstrated remarkable initiative and creative problem solving",
    "earned the trust of colleagues through reliable excellent work",
    "showed brilliant technical judgment under pressure",
    "a dependable and inspiring presence in every project",
    "their leadership transformed a struggling effort into a triumph",
    "praised by clients for clear communication and superb outcomes",
    "quick to learn, generous with knowledge, and always positive",
    "handled the most difficult assignments with grace and skill",
    "an absolute pleasure to supervise and a strong asset to any team",
]

_NEGATIVE_PHRASES = [
    "engaged in actions that undermined our project and raised serious concerns",
    "frequently missed deadlines despite repeated reminders",
    "struggled to accept feedback and grew defensive in reviews",
    "their careless mistakes caused costly rework for the team",
    "showed little initiative and needed constant supervision",
    "colleagues found collaboration difficult and often frustrating",
    "expressed a willingness to develop better time management skills",
    "the quality of deliverables was disappointing and inconsistent",
    "was unreliable in meetings and unprepared for client calls",
    "created friction that slowed progress across the department",
    "failed to meet the basic requirements of the role",
    "demonstrated poor judgment in handling sensitive matters",
]

_NEUTRAL_PHRASES = [
    "worked with us for several years in the engineering division",
    "was responsible for quarterly reporting and documentation",
    "joined the organization after completing a degree program",
    "participated in the standard onboarding and training cycle",
    "rotated between two departments during their tenure",
    "supported routine operations and scheduled maintenance tasks",
    "attended the weekly planning meetings of the group",
    "relocated offices midway through the engagement",
]

_SECTORS = ["healthcare", "finance", "retail", "education", "manufacturing"]
_SENIORITIES = ["junior", "mid", "senior", "lead"]
_DEGREES = ["bachelors", "masters", "phd", "none"]


def _compose_letter(rng: np.random.Generator, sentiment: str,
                    ambiguity: float) -> str:
    """Sample a letter: sentiment-consistent phrases diluted with neutral
    filler and — with probability ``ambiguity`` — one phrase of the
    *opposite* sentiment (real letters hedge), in randomized order."""
    pool = _POSITIVE_PHRASES if sentiment == "positive" else _NEGATIVE_PHRASES
    other = _NEGATIVE_PHRASES if sentiment == "positive" else _POSITIVE_PHRASES
    n_signal = int(rng.integers(1, 3))
    n_neutral = int(rng.integers(3, 6))
    parts = list(rng.choice(pool, size=n_signal, replace=False))
    parts += list(rng.choice(_NEUTRAL_PHRASES, size=n_neutral, replace=False))
    if rng.uniform() < ambiguity:
        parts.append(str(rng.choice(other)))
    rng.shuffle(parts)
    return "The candidate " + ". They ".join(parts) + "."


def make_hiring_tables(n: int = 300, *, n_jobs: int = 40, seed=0,
                       ambiguity: float = 0.35):
    """Generate the full hiring scenario.

    Returns ``(letters_df, jobdetail_df, social_df)``.

    ``letters_df`` columns: person_id, job_id, letter_text, sentiment,
    years_experience, employer_rating, degree (nullable). ``ambiguity``
    controls how often letters hedge with an opposite-sentiment phrase —
    it sets the difficulty of the classification task (0 is nearly
    separable; the 0.35 default lands clean-data accuracy in the paper's
    high-0.7s/low-0.8s regime where label errors visibly hurt).
    ``jobdetail_df`` columns: job_id, sector, seniority, salary_band.
    ``social_df`` columns: person_id, twitter (nullable), followers,
    linkedin_connections.

    Feature semantics: ``employer_rating`` (1–5 float) and
    ``years_experience`` correlate with sentiment, so numeric features
    carry signal alongside the text.
    """
    rng = ensure_rng(seed)
    sentiments = np.where(rng.uniform(size=n) < 0.5, "positive", "negative")

    letters = []
    for i in range(n):
        sentiment = str(sentiments[i])
        positive = sentiment == "positive"
        rating = float(np.clip(rng.normal(3.6 if positive else 2.9, 0.9), 1.0, 5.0))
        years = float(np.clip(rng.normal(7.5 if positive else 6, 3.5), 0.0, 40.0))
        degree = str(rng.choice(_DEGREES)) if rng.uniform() > 0.08 else None
        letters.append({
            "person_id": i,
            "job_id": int(rng.integers(0, n_jobs)),
            "letter_text": _compose_letter(rng, sentiment, ambiguity),
            "sentiment": sentiment,
            "years_experience": round(years, 1),
            "employer_rating": round(rating, 2),
            "degree": degree,
        })
    letters_df = DataFrame.from_records(letters)

    jobs = []
    for j in range(n_jobs):
        jobs.append({
            "job_id": j,
            "sector": str(rng.choice(_SECTORS)),
            "seniority": str(rng.choice(_SENIORITIES)),
            "salary_band": int(rng.integers(1, 6)),
        })
    jobdetail_df = DataFrame.from_records(jobs)

    social = []
    for i in range(n):
        has_twitter = rng.uniform() < 0.6
        social.append({
            "person_id": i,
            "twitter": f"@person{i}" if has_twitter else None,
            "followers": int(rng.integers(0, 5000)) if has_twitter else 0,
            "linkedin_connections": int(rng.integers(10, 2000)),
        })
    social_df = DataFrame.from_records(social)

    return letters_df, jobdetail_df, social_df


def load_recommendation_letters(n: int = 300, *, seed=0,
                                fractions=(0.6, 0.2, 0.2)):
    """Tutorial entry point (Figure 2): train/valid/test letter tables."""
    letters_df, _, _ = make_hiring_tables(n, seed=seed)
    train_df, valid_df, test_df = letters_df.split(fractions, seed=seed)
    return train_df, valid_df, test_df


def load_sidedata(n: int = 300, *, n_jobs: int = 40, seed=0):
    """Tutorial entry point (Figure 3): the jobdetail and social tables.

    Must be called with the same parameters as the letters loader so keys
    line up.
    """
    _, jobdetail_df, social_df = make_hiring_tables(n, n_jobs=n_jobs, seed=seed)
    return jobdetail_df, social_df
