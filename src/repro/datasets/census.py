"""Census-like dataset with a protected attribute and controllable bias.

Used by the fairness-debugging experiments (paper reference [66], Gopher):
an income-style binary task where a tunable fraction of one demographic
group carries corrupted (discriminatory) labels, so the responsible subset
is known and removal-based explanations can be validated.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import ensure_rng
from repro.core.validation import check_fraction
from repro.dataframe.frame import DataFrame


def make_census(n: int = 500, *, bias_fraction: float = 0.15,
                biased_group: str = "groupB", seed=0):
    """Generate a biased hiring/income dataset.

    Returns ``(df, biased_row_ids)`` where ``df`` has columns
    ``age, education_years, hours_per_week, group, income`` and
    ``biased_row_ids`` lists the rows whose labels were flipped to inject
    discrimination against ``biased_group``.

    The clean generative process scores ``0.3*edu + 0.05*hours +
    0.01*age + noise`` against a threshold, identically for both groups;
    bias is injected purely through label corruption so that the *data*
    (not the true distribution) is at fault — the setting Gopher-style
    debugging targets.
    """
    check_fraction(bias_fraction, name="bias_fraction")
    rng = ensure_rng(seed)
    group = np.where(rng.uniform(size=n) < 0.5, "groupA", "groupB")
    age = rng.integers(18, 70, size=n).astype(float)
    education_years = np.clip(rng.normal(13, 3, size=n), 6, 22)
    hours_per_week = np.clip(rng.normal(40, 10, size=n), 5, 80)
    score = (
        0.30 * education_years
        + 0.05 * hours_per_week
        + 0.01 * age
        + rng.normal(0, 0.5, size=n)
    )
    income = (score > np.median(score)).astype(int)

    # Flip positive labels to negative for a random slice of the target group.
    members = np.flatnonzero((group == biased_group) & (income == 1))
    n_flip = int(round(bias_fraction * len(members)))
    flipped = rng.choice(members, size=n_flip, replace=False) if n_flip else np.array([], dtype=int)
    income[flipped] = 0

    df = DataFrame({
        "age": age,
        "education_years": np.round(education_years, 1),
        "hours_per_week": np.round(hours_per_week, 1),
        "group": group.tolist(),
        "income": income,
    })
    return df, df.row_ids[flipped].copy()
