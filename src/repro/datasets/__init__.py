"""Synthetic dataset generators.

The tutorial uses only synthetic data ("Ethics: ... only artificial,
synthetically generated data"), centred on a hiring scenario: a table of
recommendation letters plus demographic and social-media side tables, used
to train a sentiment classifier. This subpackage recreates those
generators plus the numeric toy distributions the survey experiments use.
"""

from repro.datasets.cancer import make_cancer_registry
from repro.datasets.census import make_census
from repro.datasets.hiring import (
    load_recommendation_letters,
    load_sidedata,
    make_hiring_tables,
)
from repro.datasets.synthetic import make_blobs, make_moons, make_linear_separable

__all__ = [
    "load_recommendation_letters",
    "load_sidedata",
    "make_hiring_tables",
    "make_blobs",
    "make_moons",
    "make_linear_separable",
    "make_census",
    "make_cancer_registry",
]
