"""The Figure-1 illustration table: a cancer registry with seeded errors.

Figure 1 of the paper shows a small oncology table whose cells exhibit the
canonical error types — a *missing* sex, a *wrong* diagnosis code
("SKCX" for "SKCM"), *biased* race coverage, and *invalid* values. This
generator reproduces that table at arbitrary scale with known error
locations, which the quickstart example uses to demo error identification.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import ensure_rng
from repro.dataframe.frame import DataFrame

_DIAGNOSES = ["SKCM", "BRCA", "CRC", "LUAD"]
# Death-rate signal: survival depends on diagnosis and age.
_DEATH_RATE = {"SKCM": 0.10, "BRCA": 0.02, "CRC": 0.08, "LUAD": 0.15}
_TYPO = {"SKCM": "SKCX", "BRCA": "BRCX", "CRC": "CRX", "LUAD": "LUAX"}


def make_cancer_registry(n: int = 200, *, error_fraction: float = 0.1, seed=0):
    """Generate the registry with seeded errors.

    Returns ``(df, error_log)`` where ``error_log`` is a list of
    ``(row_id, column, error_type)`` tuples covering every injected error
    (types: ``missing``, ``wrong_code``, ``invalid_age``, ``biased_race``).
    """
    rng = ensure_rng(seed)
    diagnosis = [str(d) for d in rng.choice(_DIAGNOSES, size=n)]
    sex = [str(s) for s in rng.choice(["f", "m"], size=n)]
    age = rng.integers(18, 90, size=n).astype(float)
    # Race sampled with deliberate under-coverage of one group (bias).
    race = [str(r) for r in
            rng.choice(["white", "black", "other"], size=n, p=[0.80, 0.05, 0.15])]
    death_prob = np.array([_DEATH_RATE[d] for d in diagnosis]) + (age - 50) * 0.002
    survived = np.where(rng.uniform(size=n) < np.clip(death_prob, 0, 1), "no", "yes")

    df = DataFrame({
        "diagnosis": diagnosis,
        "race": race,
        "sex": sex,
        "age": age,
        "survived": [str(s) for s in survived],
    })

    error_log = []
    n_errors = int(round(error_fraction * n))
    if n_errors == 0:
        # Still record the representation bias (it is distributional, not
        # cell-level), then return without touching any cells.
        for i, r in enumerate(df["race"].to_list()):
            if r == "black":
                error_log.append((int(df.row_ids[i]), "race", "biased_race"))
        return df, error_log
    rows = rng.choice(n, size=min(3 * n_errors, n), replace=False)
    sex_rows, code_rows, age_rows = np.array_split(rows, 3)

    sex_col = df["sex"].to_list()
    for r in sex_rows:
        sex_col[int(r)] = None
        error_log.append((int(df.row_ids[int(r)]), "sex", "missing"))
    df["sex"] = sex_col

    diag_col = df["diagnosis"].to_list()
    for r in code_rows:
        diag_col[int(r)] = _TYPO[diag_col[int(r)]]
        error_log.append((int(df.row_ids[int(r)]), "diagnosis", "wrong_code"))
    df["diagnosis"] = diag_col

    age_col = df["age"].to_list()
    for r in age_rows:
        age_col[int(r)] = -1.0  # invalid negative age
        error_log.append((int(df.row_ids[int(r)]), "age", "invalid_age"))
    df["age"] = age_col

    for i, r in enumerate(df["race"].to_list()):
        if r == "black":
            error_log.append((int(df.row_ids[i]), "race", "biased_race"))

    return df, error_log
