"""Text vectorizers: hashing bag-of-words, TF-IDF, dense sentence
embeddings (the SentenceBERT stand-in)."""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.exceptions import ValidationError
from repro.ml.base import BaseEstimator, TransformerMixin, check_fitted
from repro.text.tokenize import tokenize


def _stable_hash(token: str) -> int:
    """Deterministic 64-bit token hash, stable across processes
    (Python's built-in ``hash`` is salted per process)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


# Memo of per-text n-gram hash arrays, keyed by the parameters that change
# the grams. Corpora repeat texts heavily (categorical descriptions, repeated
# pipeline runs over the same frame), and blake2b per gram dominates embedding
# cost; the cached hashes are independent of ``n_features``, so one entry
# serves every vectorizer width. Bounded: cleared wholesale at the cap.
_GRAM_CACHE_LIMIT = 32768
_gram_hash_cache: dict[tuple, np.ndarray] = {}

# Memo of finished (normalized) hashed rows keyed by the full vectorizer
# parameters plus the text. Re-running a pipeline over the same frame —
# what-if analysis, importance scoring, repeated serve jobs — re-embeds
# the same texts; a hit skips tokenization, hashing and normalization
# entirely. Rows are cached *before* any downstream projection, so batch
# composition cannot change results (per-row ops only). Bounded: cleared
# wholesale when the cap would be exceeded.
_ROW_CACHE_LIMIT = 4096
_row_cache: dict[tuple, np.ndarray] = {}


def _gram_hashes(text: str, ngram_range: tuple[int, int],
                 drop_stopwords: bool) -> np.ndarray:
    key = (ngram_range, drop_stopwords, text)
    cached = _gram_hash_cache.get(key)
    if cached is None:
        tokens = tokenize(text, drop_stopwords=drop_stopwords)
        lo, hi = ngram_range
        cached = np.array(
            [_stable_hash(" ".join(tokens[i:i + n]))
             for n in range(lo, hi + 1)
             for i in range(len(tokens) - n + 1)],
            dtype=np.uint64,
        )
        if len(_gram_hash_cache) >= _GRAM_CACHE_LIMIT:
            _gram_hash_cache.clear()
        _gram_hash_cache[key] = cached
    return cached


def _as_texts(X) -> list[str]:
    if hasattr(X, "to_list"):  # Column
        return ["" if t is None else str(t) for t in X.to_list()]
    X = np.asarray(X, dtype=object)
    if X.ndim == 2 and X.shape[1] == 1:
        X = X[:, 0]
    if X.ndim != 1:
        raise ValidationError(f"expected a vector of texts, got shape {X.shape}")
    return ["" if t is None or (isinstance(t, float) and np.isnan(t)) else str(t)
            for t in X]


class HashingVectorizer(BaseEstimator, TransformerMixin):
    """Feature-hashed bag of words with signed buckets.

    Parameters
    ----------
    n_features:
        Number of hash buckets.
    ngram_range:
        ``(min_n, max_n)`` word n-gram sizes.
    norm:
        ``"l2"``, ``"l1"`` or ``None`` row normalization.
    """

    def __init__(self, n_features: int = 512, ngram_range: tuple[int, int] = (1, 1),
                 norm: str | None = "l2", drop_stopwords: bool = False):
        self.n_features = n_features
        self.ngram_range = ngram_range
        self.norm = norm
        self.drop_stopwords = drop_stopwords

    def fit(self, X, y=None) -> "HashingVectorizer":
        self.fitted_ = True  # stateless, but keep the protocol uniform
        return self

    def _ngrams(self, tokens: list[str]):
        lo, hi = self.ngram_range
        for n in range(lo, hi + 1):
            for i in range(len(tokens) - n + 1):
                yield " ".join(tokens[i:i + n])

    def transform(self, X) -> np.ndarray:
        if self.norm not in ("l2", "l1", None):
            raise ValidationError(f"unknown norm {self.norm!r}")
        texts = _as_texts(X)
        params = (self.n_features, self.ngram_range, self.drop_stopwords,
                  self.norm)
        out = np.empty((len(texts), self.n_features))
        missing: list[int] = []
        for i, text in enumerate(texts):
            row = _row_cache.get((params, text))
            if row is None:
                missing.append(i)
            else:
                out[i] = row
        if missing:
            fresh = self._transform_uncached([texts[i] for i in missing])
            if len(_row_cache) + len(missing) > _ROW_CACHE_LIMIT:
                _row_cache.clear()
            for j, i in enumerate(missing):
                out[i] = fresh[j]
                _row_cache[(params, texts[i])] = fresh[j].copy()
        return out

    def _transform_uncached(self, texts: list[str]) -> np.ndarray:
        rows = [_gram_hashes(text, self.ngram_range, self.drop_stopwords)
                for text in texts]
        lengths = np.array([len(r) for r in rows], dtype=np.int64)
        total = int(lengths.sum())
        if total == 0:
            out = np.zeros((len(texts), self.n_features))
        else:
            hashes = np.concatenate(rows)
            buckets = (hashes % np.uint64(self.n_features)).astype(np.int64)
            signs = np.where((hashes >> np.uint64(63)).astype(bool), 1.0, -1.0)
            row_idx = np.repeat(np.arange(len(texts), dtype=np.int64), lengths)
            # One flattened bincount over (row, bucket) pairs. Sums of
            # +-1.0 are exact in float64 regardless of order, so this
            # matches the scalar accumulation bit-for-bit.
            flat = np.bincount(row_idx * self.n_features + buckets,
                               weights=signs,
                               minlength=len(texts) * self.n_features)
            out = flat.reshape(len(texts), self.n_features)
        # Normalization is strictly per-row (the reduction never crosses
        # rows), so rows normalized in different batches are identical —
        # which is what makes the per-text row cache bit-exact.
        if self.norm == "l2":
            norms = np.linalg.norm(out, axis=1, keepdims=True)
            out = out / np.maximum(norms, 1e-12)
        elif self.norm == "l1":
            norms = np.abs(out).sum(axis=1, keepdims=True)
            out = out / np.maximum(norms, 1e-12)
        return out


class TfidfVectorizer(BaseEstimator, TransformerMixin):
    """Vocabulary-based TF-IDF with smoothed document frequencies."""

    def __init__(self, max_features: int | None = None, min_df: int = 1,
                 drop_stopwords: bool = True):
        self.max_features = max_features
        self.min_df = min_df
        self.drop_stopwords = drop_stopwords

    def fit(self, X, y=None) -> "TfidfVectorizer":
        texts = _as_texts(X)
        doc_freq: dict[str, int] = {}
        for text in texts:
            for token in set(tokenize(text, drop_stopwords=self.drop_stopwords)):
                doc_freq[token] = doc_freq.get(token, 0) + 1
        items = [(t, c) for t, c in doc_freq.items() if c >= self.min_df]
        items.sort(key=lambda tc: (-tc[1], tc[0]))
        if self.max_features is not None:
            items = items[: self.max_features]
        self.vocabulary_ = {token: i for i, (token, _) in enumerate(items)}
        n_docs = len(texts)
        self.idf_ = np.array([
            np.log((1.0 + n_docs) / (1.0 + count)) + 1.0 for _, count in items
        ])
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self)
        texts = _as_texts(X)
        out = np.zeros((len(texts), len(self.vocabulary_)))
        for row, text in enumerate(texts):
            for token in tokenize(text, drop_stopwords=self.drop_stopwords):
                col = self.vocabulary_.get(token)
                if col is not None:
                    out[row, col] += 1.0
        out *= self.idf_
        norms = np.linalg.norm(out, axis=1, keepdims=True)
        return out / np.maximum(norms, 1e-12)


class SentenceEmbedder(BaseEstimator, TransformerMixin):
    """Dense sentence embeddings: hashed bag-of-words -> signed random
    projection (Johnson–Lindenstrauss), producing SentenceBERT-shaped
    ``(n, dim)`` float vectors.

    Parameters
    ----------
    dim:
        Output embedding dimensionality.
    n_buckets:
        Intermediate hashing width; larger means fewer collisions.
    seed:
        Seed for the fixed projection matrix (the "pretrained weights").
    """

    def __init__(self, dim: int = 64, n_buckets: int = 2048, seed: int = 13):
        self.dim = dim
        self.n_buckets = n_buckets
        self.seed = seed

    def fit(self, X, y=None) -> "SentenceEmbedder":
        rng = np.random.default_rng(self.seed)
        self.projection_ = rng.standard_normal((self.n_buckets, self.dim)) / np.sqrt(self.dim)
        self._hasher = HashingVectorizer(n_features=self.n_buckets, norm="l2",
                                         ngram_range=(1, 2))
        self._hasher.fit(X)
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self)
        hashed = self._hasher.transform(X)
        embedded = hashed @ self.projection_
        norms = np.linalg.norm(embedded, axis=1, keepdims=True)
        return embedded / np.maximum(norms, 1e-12)
