"""Text featurization substrate.

The tutorial encodes recommendation letters with SentenceBERT. No
pretrained model is available offline, so :class:`SentenceEmbedder`
substitutes a deterministic hashing vectorizer followed by a signed random
projection into a dense low-dimensional space. Lexical signal (sentiment
words) survives the projection, which is all the downstream sentiment
classifier needs — the pipeline code path (text column -> dense embedding
block) is identical to the paper's.
"""

from repro.text.tokenize import tokenize
from repro.text.vectorize import HashingVectorizer, SentenceEmbedder, TfidfVectorizer

__all__ = ["tokenize", "HashingVectorizer", "TfidfVectorizer", "SentenceEmbedder"]
