"""Tokenization for the text featurizers."""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z0-9']+")
_TOKEN_RE_CASED = re.compile(r"[A-Za-z0-9']+")

STOPWORDS = frozenset(
    """a an and are as at be but by for from has have he her his i in is it its
    of on or our she that the their them they this to was we were will with
    your you""".split()
)


def tokenize(text: str, *, lowercase: bool = True,
             drop_stopwords: bool = False) -> list[str]:
    """Split text into word tokens.

    Parameters
    ----------
    text:
        Input string; ``None`` yields an empty token list.
    lowercase:
        Case-fold before matching.
    drop_stopwords:
        Remove a small English stopword list.
    """
    if text is None:
        return []
    if lowercase:
        tokens = _TOKEN_RE.findall(text.lower())
    else:
        tokens = _TOKEN_RE_CASED.findall(text)
    if drop_stopwords:
        tokens = [t for t in tokens if t not in STOPWORDS]
    return tokens
