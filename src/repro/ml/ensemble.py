"""Bagged tree ensembles (random forest).

Used as a stronger non-linear baseline in the challenge and possible-
worlds experiments, and to demonstrate that the importance/uncertainty
machinery is model-agnostic (everything only needs fit/predict).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.core.validation import check_array, check_X_y
from repro.ml.base import BaseEstimator, check_fitted
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(BaseEstimator):
    """Bootstrap-aggregated decision trees with feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth:
        Per-tree depth cap.
    max_features:
        Features considered per tree: ``"sqrt"``, ``"all"``, or an int.
    seed:
        RNG seed for bootstraps and feature subsets.
    """

    def __init__(self, n_estimators: int = 20, max_depth: int | None = 8,
                 max_features="sqrt", seed=0):
        if n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.seed = seed

    def _n_features_per_tree(self, d: int) -> int:
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if self.max_features == "all":
            return d
        if isinstance(self.max_features, (int, np.integer)):
            if not 1 <= self.max_features <= d:
                raise ValidationError(
                    f"max_features must be in [1, {d}]")
            return int(self.max_features)
        raise ValidationError(f"invalid max_features {self.max_features!r}")

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        rng = ensure_rng(self.seed)
        n, d = X.shape
        n_sub = self._n_features_per_tree(d)
        self.trees_ = []
        self.feature_subsets_ = []
        for _ in range(self.n_estimators):
            rows = rng.integers(0, n, size=n)  # bootstrap
            features = np.sort(rng.choice(d, size=n_sub, replace=False))
            tree = DecisionTreeClassifier(max_depth=self.max_depth)
            y_boot = y[rows]
            if len(np.unique(y_boot)) < 2:
                # Degenerate bootstrap: resample once; fall back to any mix.
                rows = rng.permutation(n)
                y_boot = y[rows]
            tree.fit(X[rows][:, features], y_boot)
            self.trees_.append(tree)
            self.feature_subsets_.append(features)
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_array(X)
        class_index = {c.item() if isinstance(c, np.generic) else c: i
                       for i, c in enumerate(self.classes_.tolist())}
        proba = np.zeros((len(X), len(self.classes_)))
        for tree, features in zip(self.trees_, self.feature_subsets_):
            tree_proba = tree.predict_proba(X[:, features])
            for local_col, cls in enumerate(tree.classes_.tolist()):
                proba[:, class_index[cls]] += tree_proba[:, local_col]
        return proba / self.n_estimators

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))
