"""Quality metrics: correctness, probabilistic, ranking, and stability.

Figure 1 of the paper lists the metric families a pipeline's quality
evaluation reports — correctness (accuracy, F1), fairness (in
:mod:`repro.fairness.metrics`), and stability (entropy). This module
provides the correctness and stability side.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_consistent_length


def _as_labels(y_true, y_pred):
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    check_consistent_length(y_true, y_pred)
    if len(y_true) == 0:
        raise ValidationError("metrics require at least one example")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _as_labels(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Counts matrix with rows = true labels, columns = predictions."""
    y_true, y_pred = _as_labels(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t if not isinstance(t, np.generic) else t.item()],
               index[p if not isinstance(p, np.generic) else p.item()]] += 1
    return matrix


def _binary_counts(y_true, y_pred, positive):
    y_true, y_pred = _as_labels(y_true, y_pred)
    if positive is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
        positive = labels[-1]
    tp = int(np.sum((y_true == positive) & (y_pred == positive)))
    fp = int(np.sum((y_true != positive) & (y_pred == positive)))
    fn = int(np.sum((y_true == positive) & (y_pred != positive)))
    return tp, fp, fn


def precision_score(y_true, y_pred, positive=None) -> float:
    """TP / (TP + FP); 0 when nothing was predicted positive."""
    tp, fp, _ = _binary_counts(y_true, y_pred, positive)
    return tp / (tp + fp) if (tp + fp) > 0 else 0.0


def recall_score(y_true, y_pred, positive=None) -> float:
    """TP / (TP + FN); 0 when no positives exist."""
    tp, _, fn = _binary_counts(y_true, y_pred, positive)
    return tp / (tp + fn) if (tp + fn) > 0 else 0.0


def f1_score(y_true, y_pred, positive=None) -> float:
    """Harmonic mean of precision and recall."""
    p = precision_score(y_true, y_pred, positive)
    r = recall_score(y_true, y_pred, positive)
    return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0


def log_loss(y_true, proba, classes) -> float:
    """Mean negative log-likelihood of the true labels."""
    y_true = np.asarray(y_true)
    proba = np.asarray(proba, dtype=float)
    classes = np.asarray(classes)
    check_consistent_length(y_true, proba)
    index = {c if not isinstance(c, np.generic) else c.item(): i
             for i, c in enumerate(classes.tolist())}
    try:
        cols = np.array([index[t if not isinstance(t, np.generic) else t.item()]
                         for t in y_true])
    except KeyError as exc:
        raise ValidationError(f"label {exc.args[0]!r} not in classes") from exc
    picked = proba[np.arange(len(y_true)), cols]
    return float(-np.mean(np.log(np.clip(picked, 1e-12, 1.0))))


def roc_auc_score(y_true, scores, positive=None) -> float:
    """Area under the ROC curve via the rank statistic (handles ties)."""
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=float)
    check_consistent_length(y_true, scores)
    if positive is None:
        labels = np.unique(y_true)
        if len(labels) != 2:
            raise ValidationError(
                f"roc_auc_score needs binary labels, got {len(labels)} classes"
            )
        positive = labels[-1]
    pos = y_true == positive
    n_pos = int(pos.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValidationError("roc_auc_score needs both classes present")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores), dtype=float)
    sorted_scores = scores[order]
    i = 0
    rank = 1.0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i:j + 1]] = (rank + rank + (j - i)) / 2.0
        rank += j - i + 1
        i = j + 1
    return float((ranks[pos].sum() - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def prediction_entropy(proba) -> float:
    """Mean Shannon entropy of prediction distributions (a stability
    metric: higher entropy means less confident, less stable outputs)."""
    proba = np.asarray(proba, dtype=float)
    if proba.ndim != 2:
        raise ValidationError("proba must be 2-dimensional")
    clipped = np.clip(proba, 1e-12, 1.0)
    per_row = -np.sum(clipped * np.log2(clipped), axis=1)
    return float(per_row.mean())


def balanced_accuracy_score(y_true, y_pred) -> float:
    """Mean of per-class recalls."""
    y_true, y_pred = _as_labels(y_true, y_pred)
    recalls = []
    for label in np.unique(y_true):
        mask = y_true == label
        recalls.append(float(np.mean(y_pred[mask] == label)))
    return float(np.mean(recalls))
