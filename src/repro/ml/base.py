"""Estimator protocol: construction-parameter introspection and cloning.

Hyperparameters are exactly the keyword arguments of ``__init__`` and are
stored under the same attribute names. Fitted state uses a trailing
underscore (``coef_``, ``classes_``), which is how :func:`is_fitted`
distinguishes a trained estimator.
"""

from __future__ import annotations

import inspect

from repro.core.exceptions import NotFittedError


class BaseEstimator:
    """Mixin giving estimators ``get_params`` / ``set_params`` / repr."""

    @classmethod
    def _param_names(cls) -> list[str]:
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, param in signature.parameters.items()
            if name != "self" and param.kind not in (param.VAR_POSITIONAL, param.VAR_KEYWORD)
        ]

    def get_params(self) -> dict:
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "BaseEstimator":
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


class TransformerMixin:
    """Adds ``fit_transform`` to transformers."""

    def fit_transform(self, X, y=None):
        return self.fit(X, y).transform(X)


def clone(estimator):
    """Return an unfitted copy with the same hyperparameters.

    Nested estimators (pipelines, column transformers) are cloned
    recursively so a clone never shares fitted state with the original.
    """
    import numpy as np

    if isinstance(estimator, list):
        return [clone(e) for e in estimator]
    if isinstance(estimator, tuple):
        return tuple(clone(e) for e in estimator)
    if isinstance(estimator, np.random.Generator):
        # A Generator hyperparameter (seed=rng) must not be *shared*:
        # each fit of a clone would advance the same stream, making
        # refits of identical data nondeterministic. Copy the state so
        # every clone replays the identical stream.
        import copy

        return copy.deepcopy(estimator)
    if not isinstance(estimator, BaseEstimator):
        return estimator  # plain values (strings, numbers, callables)
    params = {name: clone(value) for name, value in estimator.get_params().items()}
    return type(estimator)(**params)


def is_fitted(estimator) -> bool:
    """True when the estimator carries any fitted (trailing-underscore)
    attribute."""
    return any(
        name.endswith("_") and not name.startswith("_")
        for name in vars(estimator)
    )


def check_fitted(estimator) -> None:
    """Raise :class:`NotFittedError` unless ``estimator`` has been fit."""
    if not is_fitted(estimator):
        raise NotFittedError(
            f"{type(estimator).__name__} must be fit before this call"
        )
