"""Composition: Pipeline, ColumnTransformer and FeatureUnion.

:class:`ColumnTransformer` is dataframe-aware: it pulls named columns out
of a :class:`repro.dataframe.DataFrame`, routes each group through its own
transformer, and concatenates the resulting feature blocks — exactly the
feature-encoding stage sketched in Figure 3 of the paper. Crucially the
output matrix has one row per input row in order, so row provenance passes
through encoding unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import SchemaError, ValidationError
from repro.ml.base import BaseEstimator, TransformerMixin, check_fitted, clone


class Pipeline(BaseEstimator):
    """Chain of transformers optionally ending in an estimator.

    Parameters
    ----------
    steps:
        List of ``(name, estimator)`` pairs. All but the last must be
        transformers; the last may be a transformer or a predictor.
    """

    def __init__(self, steps: list):
        if not steps:
            raise ValidationError("Pipeline requires at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate step names in {names}")
        self.steps = steps

    def _final(self):
        return self.steps[-1][1]

    def named_steps(self) -> dict:
        return dict(self.steps)

    def fit(self, X, y=None) -> "Pipeline":
        data = X
        for name, step in self.steps[:-1]:
            if not hasattr(step, "transform"):
                raise ValidationError(
                    f"intermediate step {name!r} must be a transformer"
                )
            data = step.fit_transform(data, y)
        self._final().fit(data, y) if y is not None else self._final().fit(data)
        self.fitted_steps_ = [name for name, _ in self.steps]
        return self

    def _apply_transformers(self, X):
        check_fitted(self)
        data = X
        for _, step in self.steps[:-1]:
            data = step.transform(data)
        return data

    def transform(self, X):
        data = self._apply_transformers(X)
        final = self._final()
        if not hasattr(final, "transform"):
            raise ValidationError("final step is not a transformer")
        return final.transform(data)

    def fit_transform(self, X, y=None):
        return self.fit(X, y).transform(X)

    def predict(self, X):
        return self._final().predict(self._apply_transformers(X))

    def predict_proba(self, X):
        return self._final().predict_proba(self._apply_transformers(X))

    def score(self, X, y) -> float:
        return self._final().score(self._apply_transformers(X), y)

    @property
    def classes_(self):
        return self._final().classes_


def _extract_block(frame, columns: list[str]) -> np.ndarray:
    """Pull columns from a DataFrame (or pass arrays through) as a 2-D
    array suitable for the wrapped transformer: numeric columns become a
    float matrix with NaN nulls; any non-numeric column switches the whole
    block to object dtype."""
    from repro.dataframe.frame import DataFrame

    if not isinstance(frame, DataFrame):
        X = np.asarray(frame)
        return X[:, None] if X.ndim == 1 else X
    missing = [c for c in columns if c not in frame]
    if missing:
        raise SchemaError(f"no columns named {missing}; have {frame.columns}")
    cols = [frame[c] for c in columns]
    numeric = all(col.dtype.kind in ("f", "i", "b") for col in cols)
    if numeric:
        return np.column_stack([
            col.cast(float).to_numpy() for col in cols
        ])
    return np.column_stack([col.to_numpy(null_value=None) for col in cols])


class ColumnTransformer(BaseEstimator, TransformerMixin):
    """Route dataframe columns through per-group transformers.

    Parameters
    ----------
    transformers:
        List of ``(name, transformer, columns)`` where ``columns`` is a
        column name or list of names. Use ``transformer="passthrough"``
        to copy numeric columns unchanged, or ``"drop"`` to discard.
    """

    def __init__(self, transformers: list):
        if not transformers:
            raise ValidationError("ColumnTransformer requires at least one entry")
        self.transformers = transformers

    def _normalized(self):
        for entry in self.transformers:
            if len(entry) != 3:
                raise ValidationError(
                    "each transformer entry must be (name, transformer, columns)"
                )
            name, transformer, columns = entry
            if isinstance(columns, str):
                columns = [columns]
            yield name, transformer, list(columns)

    def fit(self, X, y=None) -> "ColumnTransformer":
        self.fitted_transformers_ = []
        for name, transformer, columns in self._normalized():
            block = _extract_block(X, columns)
            if transformer == "drop":
                fitted = "drop"
            elif transformer == "passthrough":
                fitted = "passthrough"
            else:
                fitted = clone(transformer)
                fitted.fit(block, y)
            self.fitted_transformers_.append((name, fitted, columns))
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self)
        blocks = []
        for name, fitted, columns in self.fitted_transformers_:
            if fitted == "drop":
                continue
            block = _extract_block(X, columns)
            if fitted == "passthrough":
                blocks.append(np.asarray(block, dtype=float))
            else:
                blocks.append(np.asarray(fitted.transform(block), dtype=float))
        if not blocks:
            raise ValidationError("all transformers dropped; nothing to output")
        return np.hstack(blocks)

    def output_names(self) -> list[str]:
        """Best-effort names for the produced feature columns."""
        check_fitted(self)
        names = []
        for name, fitted, columns in self.fitted_transformers_:
            if fitted == "drop":
                continue
            if hasattr(fitted, "feature_names"):
                names.extend(f"{name}:{n}" for n in fitted.feature_names(columns))
            elif fitted == "passthrough":
                names.extend(f"{name}:{c}" for c in columns)
            else:
                probe = getattr(fitted, "_last_width", None)
                if probe is None:
                    names.append(f"{name}:*")
                else:
                    names.extend(f"{name}:{i}" for i in range(probe))
        return names


class FeatureUnion(BaseEstimator, TransformerMixin):
    """Concatenate outputs of several transformers over the same input."""

    def __init__(self, transformers: list):
        if not transformers:
            raise ValidationError("FeatureUnion requires at least one entry")
        self.transformers = transformers

    def fit(self, X, y=None) -> "FeatureUnion":
        self.fitted_transformers_ = [
            (name, clone(t).fit(X, y)) for name, t in self.transformers
        ]
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self)
        return np.hstack([
            np.asarray(t.transform(X), dtype=float)
            for _, t in self.fitted_transformers_
        ])
