"""CART-style decision tree classifier (gini impurity, binary splits).

Decision trees are the model class of the programmable-bias robustness
work the paper surveys (reference [54]); the tree structure here is also
reused by the possible-worlds ensemble for cheap repeated retraining.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_array, check_X_y
from repro.ml.base import BaseEstimator, check_fitted


@dataclass
class _Node:
    """A tree node; leaves have ``feature is None``."""

    counts: np.ndarray
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def proba(self) -> np.ndarray:
        total = self.counts.sum()
        return self.counts / total if total > 0 else np.full_like(
            self.counts, 1.0 / len(self.counts), dtype=float
        )


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier(BaseEstimator):
    """Greedy binary decision tree.

    Parameters
    ----------
    max_depth:
        Depth cap (root has depth 0); ``None`` grows until pure.
    min_samples_split:
        Minimum rows required to consider splitting a node.
    min_impurity_decrease:
        Minimum weighted impurity decrease required for a split.
    """

    def __init__(self, max_depth: int | None = None, min_samples_split: int = 2,
                 min_impurity_decrease: float = 0.0):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_impurity_decrease = min_impurity_decrease

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        if self.min_samples_split < 2:
            raise ValidationError("min_samples_split must be >= 2")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self.n_features_in_ = X.shape[1]
        self.tree_ = self._build(X, encoded, depth=0)
        return self

    # ------------------------------------------------------------------
    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(y, minlength=len(self.classes_)).astype(float)
        node = _Node(counts=counts)
        if (
            len(X) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or _gini(counts) == 0.0
        ):
            return node
        best = self._best_split(X, y, counts)
        if best is None:
            return node
        feature, threshold, gain = best
        if gain < self.min_impurity_decrease:
            return node
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X, y, parent_counts):
        n, d = X.shape
        parent_impurity = _gini(parent_counts)
        best = None
        best_gain = -np.inf
        k = len(self.classes_)
        for feature in range(d):
            order = np.argsort(X[:, feature], kind="stable")
            values = X[order, feature]
            labels = y[order]
            left_counts = np.zeros(k)
            right_counts = parent_counts.copy()
            for i in range(n - 1):
                left_counts[labels[i]] += 1
                right_counts[labels[i]] -= 1
                if values[i] == values[i + 1]:
                    continue  # cannot split between equal values
                n_left = i + 1
                n_right = n - n_left
                gain = parent_impurity - (
                    n_left * _gini(left_counts) + n_right * _gini(right_counts)
                ) / n
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float((values[i] + values[i + 1]) / 2.0), gain)
        return best

    # ------------------------------------------------------------------
    def _leaf_for(self, x: np.ndarray) -> _Node:
        node = self.tree_
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_array(X)
        return np.array([self._leaf_for(x).proba() for x in X])

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        check_fitted(self)

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.tree_)

    def n_leaves(self) -> int:
        check_fitted(self)

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.tree_)
