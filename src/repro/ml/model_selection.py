"""Dataset splitting and cross-validation."""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.core.validation import check_fraction
from repro.ml.base import clone


def train_test_split(X, y=None, *, test_size: float = 0.25, seed=None,
                     stratify=None):
    """Random train/test split of arrays sharing their first dimension.

    With ``stratify`` (a label vector), class proportions are preserved in
    both splits, which matters for the small synthetic datasets the
    examples use.
    """
    X = np.asarray(X)
    n = len(X)
    test_size = check_fraction(test_size, name="test_size",
                               inclusive_low=False, inclusive_high=False)
    rng = ensure_rng(seed)
    n_test = max(1, int(round(test_size * n)))
    if n_test >= n:
        raise ValidationError(f"test_size={test_size} leaves no training data")

    if stratify is not None:
        strat = np.asarray(stratify)
        test_idx = []
        for label in np.unique(strat):
            members = np.flatnonzero(strat == label)
            rng.shuffle(members)
            take = int(round(test_size * len(members)))
            test_idx.extend(members[:take])
        test_idx = np.array(sorted(test_idx))
    else:
        perm = rng.permutation(n)
        test_idx = np.sort(perm[:n_test])
    test_mask = np.zeros(n, dtype=bool)
    test_mask[test_idx] = True

    X_train, X_test = X[~test_mask], X[test_mask]
    if y is None:
        return X_train, X_test
    y = np.asarray(y)
    return X_train, X_test, y[~test_mask], y[test_mask]


class KFold:
    """K-fold cross-validation splitter.

    Parameters
    ----------
    n_splits:
        Number of folds (>= 2).
    shuffle:
        Shuffle before splitting (with ``seed``).
    """

    def __init__(self, n_splits: int = 5, *, shuffle: bool = True, seed=None):
        if n_splits < 2:
            raise ValidationError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, X):
        n = len(X)
        if n < self.n_splits:
            raise ValidationError(
                f"cannot split {n} rows into {self.n_splits} folds"
            )
        indices = np.arange(n)
        if self.shuffle:
            ensure_rng(self.seed).shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield np.sort(train), np.sort(test)


def cross_val_score(estimator, X, y, *, cv: int = 5, seed=None) -> np.ndarray:
    """Accuracy (or estimator ``score``) per fold."""
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in KFold(cv, shuffle=True, seed=seed).split(X):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        scores.append(model.score(X[test_idx], y[test_idx]))
    return np.array(scores)
