"""ML substrate: estimators, preprocessing, metrics and model selection.

This subpackage replaces scikit-learn for the purposes of the tutorial.
Everything follows the familiar contract: estimators implement
``fit(X, y)`` / ``predict(X)`` (and ``predict_proba`` where meaningful),
transformers implement ``fit`` / ``transform`` / ``fit_transform``, and
:func:`clone` produces an unfitted copy with identical hyperparameters.
"""

from repro.ml.base import BaseEstimator, TransformerMixin, clone, is_fitted
from repro.ml.compose import ColumnTransformer, FeatureUnion, Pipeline
from repro.ml.ensemble import RandomForestClassifier
from repro.ml.linear import LinearRegression, LinearSVC, LogisticRegression
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    log_loss,
    precision_score,
    prediction_entropy,
    recall_score,
    roc_auc_score,
)
from repro.ml.model_selection import KFold, cross_val_score, train_test_split
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.preprocessing import (
    FunctionTransformer,
    KNNImputer,
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
)
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "BaseEstimator",
    "TransformerMixin",
    "clone",
    "is_fitted",
    "Pipeline",
    "ColumnTransformer",
    "FeatureUnion",
    "LogisticRegression",
    "LinearRegression",
    "LinearSVC",
    "KNeighborsClassifier",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "GaussianNB",
    "StandardScaler",
    "MinMaxScaler",
    "OneHotEncoder",
    "SimpleImputer",
    "KNNImputer",
    "LabelEncoder",
    "FunctionTransformer",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "log_loss",
    "roc_auc_score",
    "prediction_entropy",
    "train_test_split",
    "KFold",
    "cross_val_score",
]
