"""Gaussian naive Bayes classifier."""

from __future__ import annotations

import numpy as np

from repro.core.validation import check_array, check_X_y
from repro.ml.base import BaseEstimator, check_fitted


class GaussianNB(BaseEstimator):
    """Gaussian naive Bayes with per-class diagonal covariance.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every variance
        for numerical stability.
    """

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing

    def fit(self, X, y) -> "GaussianNB":
        X, y = check_X_y(X, y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        k, d = len(self.classes_), X.shape[1]
        self.theta_ = np.zeros((k, d))
        self.var_ = np.zeros((k, d))
        self.class_prior_ = np.zeros(k)
        for c in range(k):
            rows = X[encoded == c]
            self.theta_[c] = rows.mean(axis=0)
            self.var_[c] = rows.var(axis=0)
            self.class_prior_[c] = len(rows) / len(X)
        self.var_ += self.var_smoothing * max(X.var(axis=0).max(), 1e-12)
        return self

    def _joint_log_likelihood(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_array(X)
        jll = np.zeros((len(X), len(self.classes_)))
        for c in range(len(self.classes_)):
            log_det = np.sum(np.log(2.0 * np.pi * self.var_[c]))
            quad = np.sum((X - self.theta_[c]) ** 2 / self.var_[c], axis=1)
            jll[:, c] = np.log(self.class_prior_[c] + 1e-12) - 0.5 * (log_det + quad)
        return jll

    def predict_proba(self, X) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        probs = np.exp(jll)
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))
