"""Gaussian naive Bayes classifier (batch ``fit`` and running-statistics
``partial_fit``)."""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_array, check_X_y
from repro.ml.base import BaseEstimator, check_fitted


class GaussianNB(BaseEstimator):
    """Gaussian naive Bayes with per-class diagonal covariance.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every variance
        for numerical stability.
    """

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing

    def fit(self, X, y) -> "GaussianNB":
        X, y = check_X_y(X, y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        k, d = len(self.classes_), X.shape[1]
        self.theta_ = np.zeros((k, d))
        self.var_ = np.zeros((k, d))
        self.class_prior_ = np.zeros(k)
        for c in range(k):
            rows = X[encoded == c]
            self.theta_[c] = rows.mean(axis=0)
            self.var_[c] = rows.var(axis=0)
            self.class_prior_[c] = len(rows) / len(X)
        self.var_ += self.var_smoothing * max(X.var(axis=0).max(), 1e-12)
        # Seed the running sufficient statistics so partial_fit can
        # continue from a batch fit.
        self._counts = np.bincount(encoded, minlength=k).astype(float)
        self._sums = np.zeros((k, d))
        self._sumsqs = np.zeros((k, d))
        for c in range(k):
            rows = X[encoded == c]
            self._sums[c] = rows.sum(axis=0)
            self._sumsqs[c] = (rows * rows).sum(axis=0)
        self._total_sum = X.sum(axis=0)
        self._total_sumsq = (X * X).sum(axis=0)
        self._n_samples = float(len(X))
        return self

    def partial_fit(self, X, y) -> "GaussianNB":
        """Fold one more batch into the per-class sufficient statistics.

        The model keeps per-class ``(count, sum, sum-of-squares)`` plus
        global totals for the variance-smoothing term, so each update is
        O(n_batch · d) regardless of how much data has been seen.
        Parameters after ``partial_fit`` equal a fresh ``fit`` on the
        concatenated data up to floating-point rounding (one-pass vs
        two-pass variance).
        """
        if not hasattr(self, "_counts"):
            return self.fit(X, y)
        X, y = check_X_y(X, y)
        if X.shape[1] != self._sums.shape[1]:
            raise ValidationError(
                f"partial_fit feature mismatch: {X.shape[1]} vs "
                f"{self._sums.shape[1]}")
        classes = np.union1d(self.classes_, np.unique(y))
        if len(classes) != len(self.classes_):
            # New labels appeared: widen the per-class statistic arrays.
            grown = np.searchsorted(classes, self.classes_)
            counts = np.zeros(len(classes))
            sums = np.zeros((len(classes), self._sums.shape[1]))
            sumsqs = np.zeros_like(sums)
            counts[grown] = self._counts
            sums[grown] = self._sums
            sumsqs[grown] = self._sumsqs
            self.classes_, self._counts = classes, counts
            self._sums, self._sumsqs = sums, sumsqs
        encoded = np.searchsorted(self.classes_, np.asarray(y))
        np.add.at(self._counts, encoded, 1.0)
        np.add.at(self._sums, encoded, X)
        np.add.at(self._sumsqs, encoded, X * X)
        self._total_sum += X.sum(axis=0)
        self._total_sumsq += (X * X).sum(axis=0)
        self._n_samples += len(X)
        self._refresh_from_statistics()
        return self

    def _refresh_from_statistics(self) -> None:
        """Recompute ``theta_`` / ``var_`` / ``class_prior_`` from the
        running sufficient statistics (one-pass moment formulas)."""
        seen = self._counts > 0
        counts = np.where(seen, self._counts, 1.0)[:, None]
        self.theta_ = self._sums / counts
        self.var_ = np.maximum(
            self._sumsqs / counts - self.theta_ ** 2, 0.0)
        mean = self._total_sum / self._n_samples
        global_var = np.maximum(
            self._total_sumsq / self._n_samples - mean ** 2, 0.0)
        self.var_ = self.var_ + self.var_smoothing * max(
            global_var.max(), 1e-12)
        self.class_prior_ = self._counts / self._n_samples

    def _joint_log_likelihood(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_array(X)
        k, d = self.theta_.shape
        # Vectorized over classes: one broadcast (rows, k, d) difference
        # instead of a per-class Python loop. Bit-identical to the loop —
        # the reduction runs over the same contiguous last axis, and the
        # elementwise arithmetic is unchanged. Rows are chunked so the
        # temporary stays bounded regardless of batch size.
        log_det = np.sum(np.log(2.0 * np.pi * self.var_), axis=1)
        log_prior = np.log(self.class_prior_ + 1e-12)
        jll = np.empty((len(X), k))
        chunk = max(1, 1_048_576 // max(1, k * d))
        for start in range(0, len(X), chunk):
            rows = X[start:start + chunk]
            quad = np.sum((rows[:, None, :] - self.theta_) ** 2 / self.var_,
                          axis=2)
            jll[start:start + chunk] = log_prior - 0.5 * (log_det + quad)
        return jll

    def predict_proba(self, X) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        probs = np.exp(jll)
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))
