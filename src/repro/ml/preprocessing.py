"""Preprocessing transformers over numpy arrays.

These mirror the scikit-learn operators the tutorial's pipelines use
(Figure 3: ``Pipeline([Imputer(), OneHotEncoder()])`` etc.). All operate
on 2-D numpy arrays; dataframe-aware composition happens in
:class:`repro.ml.compose.ColumnTransformer`.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_array
from repro.ml.base import BaseEstimator, TransformerMixin, check_fitted


class StandardScaler(BaseEstimator, TransformerMixin):
    """Standardize features to zero mean and unit variance."""

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None) -> "StandardScaler":
        X = check_array(X, allow_nan=True)
        self.mean_ = np.nanmean(X, axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = np.nanstd(X, axis=0)
            scale[scale == 0.0] = 1.0  # constant features pass through
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_array(X, allow_nan=True)
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_array(X, allow_nan=True)
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator, TransformerMixin):
    """Rescale features into ``feature_range`` (default [0, 1])."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        self.feature_range = feature_range

    def fit(self, X, y=None) -> "MinMaxScaler":
        low, high = self.feature_range
        if low >= high:
            raise ValidationError(f"invalid feature_range {self.feature_range}")
        X = check_array(X, allow_nan=True)
        self.data_min_ = np.nanmin(X, axis=0)
        self.data_max_ = np.nanmax(X, axis=0)
        span = self.data_max_ - self.data_min_
        span[span == 0.0] = 1.0
        self.scale_ = (high - low) / span
        self.min_ = low - self.data_min_ * self.scale_
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_array(X, allow_nan=True)
        return X * self.scale_ + self.min_


class OneHotEncoder(BaseEstimator, TransformerMixin):
    """One-hot encode categorical columns (object/string or numeric codes).

    Parameters
    ----------
    handle_unknown:
        ``"ignore"`` emits an all-zero row for unseen categories;
        ``"error"`` raises.
    """

    def __init__(self, handle_unknown: str = "ignore"):
        if handle_unknown not in ("ignore", "error"):
            raise ValidationError("handle_unknown must be 'ignore' or 'error'")
        self.handle_unknown = handle_unknown

    def fit(self, X, y=None) -> "OneHotEncoder":
        X = self._as_object(X)
        self.categories_ = [
            sorted({v for v in X[:, j]}, key=repr) for j in range(X.shape[1])
        ]
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self)
        X = self._as_object(X)
        if X.shape[1] != len(self.categories_):
            raise ValidationError(
                f"expected {len(self.categories_)} columns, got {X.shape[1]}"
            )
        blocks = []
        for j, cats in enumerate(self.categories_):
            index = {c: i for i, c in enumerate(cats)}
            block = np.zeros((len(X), len(cats)))
            for row, value in enumerate(X[:, j]):
                if value in index:
                    block[row, index[value]] = 1.0
                elif self.handle_unknown == "error":
                    raise ValidationError(
                        f"unknown category {value!r} in column {j}"
                    )
            blocks.append(block)
        return np.hstack(blocks)

    def feature_names(self, input_names=None) -> list[str]:
        check_fitted(self)
        names = []
        for j, cats in enumerate(self.categories_):
            prefix = input_names[j] if input_names else f"x{j}"
            names.extend(f"{prefix}={c}" for c in cats)
        return names

    @staticmethod
    def _as_object(X) -> np.ndarray:
        X = np.asarray(X, dtype=object)
        if X.ndim == 1:
            X = X[:, None]
        if X.ndim != 2:
            raise ValidationError(f"X must be 1- or 2-dimensional, got {X.ndim}")
        # Nulls become their own category so missingness stays visible.
        fixed = np.empty_like(X)
        for idx, value in np.ndenumerate(X):
            is_nan = isinstance(value, float) and np.isnan(value)
            fixed[idx] = "<null>" if value is None or is_nan else value
        return fixed


def _is_missing_cell(value) -> bool:
    """Missing markers in object columns: ``None`` or a float NaN."""
    return value is None or (isinstance(value, float) and np.isnan(value))


class SimpleImputer(BaseEstimator, TransformerMixin):
    """Fill missing cells with a per-column statistic.

    Numeric columns (missing = NaN) support every strategy. Categorical
    object columns (missing = ``None``/NaN, as produced by
    :class:`~repro.ml.compose.ColumnTransformer` blocks) support
    ``"most_frequent"`` and ``"constant"`` — the Figure-3 pipeline
    ``Pipeline([Imputer(), OneHotEncoder()])`` over a string column.

    Parameters
    ----------
    strategy:
        ``"mean"``, ``"median"``, ``"most_frequent"`` or ``"constant"``.
    fill_value:
        Used by the ``"constant"`` strategy (and empty columns).
    """

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0):
        if strategy not in ("mean", "median", "most_frequent", "constant"):
            raise ValidationError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self.fill_value = fill_value

    def fit(self, X, y=None) -> "SimpleImputer":
        try:
            numeric = np.asarray(X, dtype=float)
        except (TypeError, ValueError):
            return self._fit_categorical(X)
        X = check_array(numeric, allow_nan=True)
        self.categorical_ = False
        fills = np.empty(X.shape[1])
        for j in range(X.shape[1]):
            valid = X[~np.isnan(X[:, j]), j]
            if self.strategy == "constant":
                fills[j] = self.fill_value
            elif len(valid) == 0:
                fills[j] = self.fill_value
            elif self.strategy == "mean":
                fills[j] = valid.mean()
            elif self.strategy == "median":
                fills[j] = np.median(valid)
            else:  # most_frequent
                uniques, counts = np.unique(valid, return_counts=True)
                fills[j] = uniques[np.argmax(counts)]
        self.statistics_ = fills
        return self

    def _fit_categorical(self, X) -> "SimpleImputer":
        if self.strategy not in ("most_frequent", "constant"):
            raise ValidationError(
                f"strategy {self.strategy!r} requires numeric data; "
                "categorical columns take 'most_frequent' or 'constant'")
        X = self._as_object(X)
        fills = []
        for j in range(X.shape[1]):
            present = [v for v in X[:, j] if not _is_missing_cell(v)]
            if self.strategy == "constant" or not present:
                fills.append(self.fill_value)
            else:
                uniques, counts = np.unique(
                    np.asarray(present, dtype=object), return_counts=True)
                fills.append(uniques[np.argmax(counts)])
        self.categorical_ = True
        self.statistics_ = np.array(fills, dtype=object)
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self)
        if self.categorical_:
            X = self._as_object(X).copy()
            for (i, j), value in np.ndenumerate(X):
                if _is_missing_cell(value):
                    X[i, j] = self.statistics_[j]
            return X
        X = check_array(X, allow_nan=True).copy()
        for j in range(X.shape[1]):
            mask = np.isnan(X[:, j])
            X[mask, j] = self.statistics_[j]
        return X

    @staticmethod
    def _as_object(X) -> np.ndarray:
        X = np.asarray(X, dtype=object)
        if X.ndim == 1:
            X = X[:, None]
        if X.ndim != 2:
            raise ValidationError(f"X must be 1- or 2-dimensional, got {X.ndim}")
        return X


class KNNImputer(BaseEstimator, TransformerMixin):
    """Fill NaN cells with the mean over the k nearest complete-ish rows.

    Distances use only the features observed in both rows, scaled up to
    the full dimensionality (the standard "nan-euclidean" metric).
    """

    def __init__(self, n_neighbors: int = 5):
        self.n_neighbors = n_neighbors

    def fit(self, X, y=None) -> "KNNImputer":
        X = check_array(X, allow_nan=True)
        self.X_ = X.copy()
        self.col_means_ = np.array([
            np.nanmean(X[:, j]) if np.any(~np.isnan(X[:, j])) else 0.0
            for j in range(X.shape[1])
        ])
        return self

    def _nan_distances(self, x: np.ndarray) -> np.ndarray:
        diff = self.X_ - x
        observed = ~np.isnan(diff)
        diff = np.where(observed, diff, 0.0)
        counts = observed.sum(axis=1)
        sq = np.sum(diff**2, axis=1)
        d = x.shape[0]
        with np.errstate(divide="ignore", invalid="ignore"):
            scaled = np.where(counts > 0, sq * d / counts, np.inf)
        return np.sqrt(scaled)

    def transform(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_array(X, allow_nan=True).copy()
        for i in range(len(X)):
            missing = np.isnan(X[i])
            if not missing.any():
                continue
            dist = self._nan_distances(X[i])
            order = np.argsort(dist, kind="stable")
            for j in np.flatnonzero(missing):
                donors = [p for p in order
                          if not np.isnan(self.X_[p, j]) and np.isfinite(dist[p])]
                donors = donors[: self.n_neighbors]
                X[i, j] = (
                    np.mean(self.X_[donors, j]) if donors else self.col_means_[j]
                )
        return X


class LabelEncoder(BaseEstimator, TransformerMixin):
    """Map labels to integer codes 0..k-1."""

    def fit(self, y, _unused=None) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y) -> np.ndarray:
        check_fitted(self)
        y = np.asarray(y)
        index = {c.item() if isinstance(c, np.generic) else c: i
                 for i, c in enumerate(self.classes_.tolist())}
        try:
            return np.array([index[v if not isinstance(v, np.generic) else v.item()]
                             for v in y])
        except KeyError as exc:
            raise ValidationError(f"unseen label {exc.args[0]!r}") from exc

    def inverse_transform(self, codes) -> np.ndarray:
        check_fitted(self)
        return self.classes_[np.asarray(codes, dtype=int)]


class FunctionTransformer(BaseEstimator, TransformerMixin):
    """Apply a stateless function as a transformer (pipeline UDF step).

    Parameters
    ----------
    func:
        ``func(X) -> X'`` applied at transform time; ``None`` is the
        identity.
    rowwise:
        Declare that ``func`` maps each input row to its output row
        independently of every other row (elementwise math, per-row
        feature maps) — so slicing commutes with the transform:
        ``func(X[rows]) == func(X)[rows]`` bit-for-bit. Pipeline-aware
        kernel dispatch (:mod:`repro.importance.kernels`) treats such
        steps as coalition-invariant and transforms the data once instead
        of refitting the pipeline per coalition. Leave ``False`` (the
        default) for anything that mixes rows — batch normalization,
        fitted statistics, neighbor lookups.
    """

    def __init__(self, func=None, rowwise: bool = False):
        self.func = func
        self.rowwise = rowwise

    @property
    def coalition_invariant(self) -> bool:
        """True when fitting on any row subset yields the same transform
        (identity, or a declared row-local ``func``)."""
        return self.func is None or bool(self.rowwise)

    def fit(self, X, y=None) -> "FunctionTransformer":
        self.fitted_ = True
        return self

    def transform(self, X):
        return X if self.func is None else self.func(X)
