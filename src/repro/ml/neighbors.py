"""k-nearest-neighbor classifier.

Beyond serving as a baseline model, k-NN is the proxy model that makes
exact Shapley values tractable (KNN-Shapley, paper reference [33]) and
the model class for which certain predictions over incomplete data can be
decided efficiently (CPClean, reference [40]). Both of those algorithms
reuse :func:`pairwise_distances` and the sorted-neighbor machinery here.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_array, check_X_y
from repro.ml.base import BaseEstimator, check_fitted


# Manhattan distances need an (rows_of_A, n_B, d) float64 intermediate;
# cap it around 64 MB by chunking over rows of A.
_MANHATTAN_CHUNK_ELEMENTS = 8_000_000


def pairwise_distances(A: np.ndarray, B: np.ndarray, metric: str = "euclidean") -> np.ndarray:
    """Dense distance matrix between the rows of ``A`` and ``B``."""
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[1]:
        raise ValidationError(
            f"incompatible shapes for pairwise distances: {A.shape} vs {B.shape}"
        )
    if metric == "euclidean":
        sq = (
            np.sum(A**2, axis=1)[:, None]
            + np.sum(B**2, axis=1)[None, :]
            - 2.0 * (A @ B.T)
        )
        return np.sqrt(np.maximum(sq, 0.0))
    if metric == "manhattan":
        step = max(1, _MANHATTAN_CHUNK_ELEMENTS // max(1, B.size))
        out = np.empty((len(A), len(B)))
        for start in range(0, len(A), step):
            stop = start + step
            out[start:stop] = np.abs(
                A[start:stop, None, :] - B[None, :, :]).sum(axis=2)
        return out
    if metric == "cosine":
        norm_a = np.linalg.norm(A, axis=1, keepdims=True)
        norm_b = np.linalg.norm(B, axis=1, keepdims=True)
        denom = np.maximum(norm_a, 1e-12) @ np.maximum(norm_b, 1e-12).T
        return 1.0 - (A @ B.T) / denom
    raise ValidationError(f"unknown metric {metric!r}")


class KNeighborsClassifier(BaseEstimator):
    """Majority-vote k-NN classifier.

    Parameters
    ----------
    n_neighbors:
        Number of neighbors to vote.
    metric:
        ``"euclidean"``, ``"manhattan"`` or ``"cosine"``.
    """

    def __init__(self, n_neighbors: int = 5, metric: str = "euclidean"):
        self.n_neighbors = n_neighbors
        self.metric = metric

    def fit(self, X, y) -> "KNeighborsClassifier":
        X, y = check_X_y(X, y)
        if self.n_neighbors < 1:
            raise ValidationError(f"n_neighbors must be >= 1, got {self.n_neighbors}")
        if self.n_neighbors > len(X):
            raise ValidationError(
                f"n_neighbors={self.n_neighbors} exceeds training size {len(X)}"
            )
        self.classes_, self._encoded = np.unique(y, return_inverse=True)
        self._X = X
        return self

    def partial_fit(self, X, y) -> "KNeighborsClassifier":
        """Append training rows; equivalent to refitting on the union.

        k-NN's "fitted state" is the training set itself, so incremental
        fitting is concatenation — the hook coalition walks use to grow a
        prefix one example at a time without re-copying history.
        """
        if not hasattr(self, "_X"):
            return self.fit(X, y)
        X, y = check_X_y(X, y)
        if X.shape[1] != self._X.shape[1]:
            raise ValidationError(
                f"partial_fit feature mismatch: {X.shape[1]} vs "
                f"{self._X.shape[1]}")
        previous_y = self.classes_[self._encoded]
        merged_y = np.concatenate([previous_y, np.asarray(y)])
        self._X = np.concatenate([self._X, X])
        self.classes_, self._encoded = np.unique(merged_y,
                                                 return_inverse=True)
        return self

    def kneighbors(self, X, n_neighbors: int | None = None):
        """Return (distances, indices) of the nearest training rows,
        sorted ascending by distance (ties broken by training index so
        results are deterministic)."""
        check_fitted(self)
        X = check_array(X)
        k = n_neighbors or self.n_neighbors
        dist = pairwise_distances(X, self._X, metric=self.metric)
        order = np.lexsort(
            (np.broadcast_to(np.arange(dist.shape[1]), dist.shape), dist), axis=1
        )[:, :k]
        rows = np.arange(len(X))[:, None]
        return dist[rows, order], order

    def predict_proba(self, X) -> np.ndarray:
        _, neighbors = self.kneighbors(X)
        votes = self._encoded[neighbors]
        proba = np.zeros((len(votes), len(self.classes_)))
        for c in range(len(self.classes_)):
            proba[:, c] = (votes == c).mean(axis=1)
        return proba

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))
