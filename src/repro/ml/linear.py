"""Linear models: logistic regression, linear regression, linear SVM.

Logistic regression is the workhorse model of the tutorial (the influence
functions in :mod:`repro.importance.influence` and the Zorro abstraction in
:mod:`repro.uncertain.zorro` both rely on its differentiable loss), so it
is implemented carefully: multinomial softmax, L2 regularization, and an
L-BFGS solver from scipy.

The solver cores are module-level helpers (``_logistic_problem``,
``_svc_problem``, ``_ridge_theta``, ``_minimize``) shared between the
estimators' ``fit`` methods and the incremental coalition kernels in
:mod:`repro.importance.kernels` — a kernel's "cold replay" fallback runs
literally the same arithmetic as ``clone(model).fit(...)``, which is what
makes its bit-identical accounting honest. ``LogisticRegression`` and
``LinearSVC`` additionally accept ``warm_start=True`` to seed the solver
from the previous fit's coefficients (the continuation kernels drive the
same machinery across coalition prefixes).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.core.exceptions import ValidationError
from repro.core.validation import check_array, check_X_y
from repro.ml.base import BaseEstimator, check_fitted


def _encode_labels(y):
    classes, encoded = np.unique(y, return_inverse=True)
    if len(classes) < 2:
        raise ValidationError("need at least two classes to fit a classifier")
    return classes, encoded


def _softmax(Z: np.ndarray) -> np.ndarray:
    Z = Z - Z.max(axis=1, keepdims=True)
    expZ = np.exp(Z)
    return expZ / expZ.sum(axis=1, keepdims=True)


def _minimize(objective, w0, max_iter: int, gtol: float):
    """The one L-BFGS-B call every linear solver in the package makes."""
    return optimize.minimize(
        objective, w0, jac=True, method="L-BFGS-B",
        options={"maxiter": max_iter, "gtol": gtol},
    )


def _logistic_problem(X, Y, sample_weight, total_weight, alpha,
                      fit_intercept):
    """Multinomial softmax objective over an (augmented) design matrix.

    Returns ``objective(w_flat) -> (loss, grad_flat)`` with the exact
    arithmetic ``LogisticRegression.fit`` has always used; the warm-start
    coalition kernel builds the same closure for every prefix so its cold
    replays are bit-identical to the retrain path.
    """
    d, k = X.shape[1], Y.shape[1]

    def objective(w_flat):
        W = w_flat.reshape(d, k)
        P = _softmax(X @ W)
        weighted = sample_weight[:, None]
        loss = -np.sum(weighted * Y * np.log(P + 1e-12)) / total_weight
        reg_mask = np.ones((d, 1))
        if fit_intercept:
            reg_mask[-1] = 0.0  # never regularize the bias
        loss += 0.5 * alpha * np.sum((W * reg_mask) ** 2)
        grad = X.T @ (weighted * (P - Y)) / total_weight + alpha * W * reg_mask
        return loss, grad.ravel()

    return objective


def _svc_problem(X, signs, sample_weight, C, fit_intercept):
    """Squared-hinge SVM objective over an (augmented) design matrix,
    shared by ``LinearSVC.fit`` and its continuation kernel."""

    def objective(w):
        margins = 1.0 - signs * (X @ w)
        active = np.maximum(margins, 0.0)
        reg_vector = w.copy()
        if fit_intercept:
            reg_vector[-1] = 0.0
        loss = 0.5 * reg_vector @ reg_vector + \
            C * np.sum(sample_weight * active ** 2)
        grad = reg_vector - 2.0 * C * X.T @ (sample_weight * active * signs)
        return loss, grad

    return objective


def _ridge_theta(Xa, y, alpha, fit_intercept):
    """Normal-equation solve ``(Xa'Xa + reg) theta = Xa'y`` — the exact
    arithmetic of ``LinearRegression.fit`` on an already-augmented design
    matrix, reused by the Sherman–Morrison kernel's direct replays."""
    gram = Xa.T @ Xa
    if alpha > 0:
        reg = alpha * np.eye(Xa.shape[1])
        if fit_intercept:
            reg[-1, -1] = 0.0
        gram = gram + reg
    return np.linalg.lstsq(gram, Xa.T @ y, rcond=None)[0]


class LogisticRegression(BaseEstimator):
    """Multinomial logistic regression with L2 regularization.

    Parameters
    ----------
    C:
        Inverse regularization strength; larger means weaker regularization.
    max_iter:
        L-BFGS iteration cap.
    fit_intercept:
        Whether to learn a bias term.
    tol:
        Gradient-norm termination tolerance of the solver.
    warm_start:
        When ``True``, ``fit`` seeds the solver from the previous fit's
        coefficients if the class set and feature count match (otherwise
        it falls back to the usual zero start). The solution satisfies
        the same convergence criteria either way; warm starts only change
        how many iterations it takes to get there.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200,
                 fit_intercept: bool = True, tol: float = 1e-6,
                 warm_start: bool = False):
        self.C = C
        self.max_iter = max_iter
        self.fit_intercept = fit_intercept
        self.tol = tol
        self.warm_start = warm_start

    # ------------------------------------------------------------------
    def _warm_w0(self):
        """Previous solution as a flat (d, k) start vector, or ``None``."""
        if getattr(self, "coef_", None) is None:
            return None
        W = self.coef_.T
        if self.fit_intercept:
            W = np.vstack([W, self.intercept_[None, :]])
        return self.classes_, W

    def fit(self, X, y, sample_weight=None) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        previous = self._warm_w0() if self.warm_start else None
        self.classes_, encoded = _encode_labels(y)
        n, d = X.shape
        k = len(self.classes_)
        if sample_weight is None:
            sample_weight = np.ones(n)
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
            if len(sample_weight) != n:
                raise ValidationError("sample_weight length mismatch")

        if self.fit_intercept:
            X = np.column_stack([X, np.ones(n)])
            d += 1
        Y = np.zeros((n, k))
        Y[np.arange(n), encoded] = 1.0
        total_weight = sample_weight.sum()
        if total_weight <= 0:
            raise ValidationError("sample weights must have positive sum")
        # Match the usual convention: sum-of-losses + ||W||^2 / (2C); on
        # the mean-loss scale used below that is alpha = 1 / (C * n).
        alpha = 1.0 / (max(self.C, 1e-12) * total_weight)

        objective = _logistic_problem(X, Y, sample_weight, total_weight,
                                      alpha, self.fit_intercept)
        w0 = np.zeros(d * k)
        if previous is not None:
            prev_classes, prev_W = previous
            if prev_W.shape == (d, k) and np.array_equal(prev_classes,
                                                         self.classes_):
                w0 = prev_W.ravel()
        result = _minimize(objective, w0, self.max_iter, self.tol)
        W = result.x.reshape(d, k)
        if self.fit_intercept:
            self.coef_ = W[:-1].T
            self.intercept_ = W[-1]
        else:
            self.coef_ = W.T
            self.intercept_ = np.zeros(k)
        self.n_features_in_ = X.shape[1] - (1 if self.fit_intercept else 0)
        self.n_iter_ = int(result.nit)
        self.grad_norm_ = float(np.max(np.abs(result.jac)))
        return self

    def decision_function(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_array(X)
        return X @ self.coef_.T + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        return _softmax(self.decision_function(X))

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))


class LinearRegression(BaseEstimator):
    """Ordinary least squares / ridge regression (closed form)."""

    def __init__(self, alpha: float = 0.0, fit_intercept: bool = True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X, y, sample_weight=None) -> "LinearRegression":
        X = check_array(X)
        y = np.asarray(y, dtype=float)
        if y.ndim != 1 or len(y) != len(X):
            raise ValidationError("y must be a 1-D vector matching X")
        n, d = X.shape
        if sample_weight is not None:
            w = np.sqrt(np.asarray(sample_weight, dtype=float))
            X = X * w[:, None]
            y = y * w
        if self.fit_intercept:
            X = np.column_stack([X, np.ones(n)])
        theta = _ridge_theta(X, y, self.alpha, self.fit_intercept)
        if self.fit_intercept:
            self.coef_ = theta[:-1]
            self.intercept_ = float(theta[-1])
        else:
            self.coef_ = theta
            self.intercept_ = 0.0
        return self

    def predict(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def score(self, X, y) -> float:
        """Coefficient of determination (R^2)."""
        y = np.asarray(y, dtype=float)
        pred = self.predict(X)
        ss_res = np.sum((y - pred) ** 2)
        ss_tot = np.sum((y - y.mean()) ** 2)
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0


class LinearSVC(BaseEstimator):
    """Binary linear SVM with squared hinge loss, solved by L-BFGS.

    The certain-model analysis in :mod:`repro.uncertain.certain_models`
    targets this loss, matching reference [92] of the paper. Accepts
    ``warm_start=True`` with the same semantics as
    :class:`LogisticRegression`.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200,
                 fit_intercept: bool = True, tol: float = 1e-6,
                 warm_start: bool = False):
        self.C = C
        self.max_iter = max_iter
        self.fit_intercept = fit_intercept
        self.tol = tol
        self.warm_start = warm_start

    def _warm_w0(self):
        """Previous solution as a flat start vector, or ``None``."""
        if getattr(self, "coef_", None) is None:
            return None
        w = self.coef_
        if self.fit_intercept:
            w = np.concatenate([w, [self.intercept_]])
        return self.classes_, w

    def fit(self, X, y, sample_weight=None) -> "LinearSVC":
        X, y = check_X_y(X, y)
        previous = self._warm_w0() if self.warm_start else None
        self.classes_, encoded = _encode_labels(y)
        if len(self.classes_) != 2:
            raise ValidationError("LinearSVC is binary; got "
                                  f"{len(self.classes_)} classes")
        signs = np.where(encoded == 1, 1.0, -1.0)
        n, d = X.shape
        if sample_weight is None:
            sample_weight = np.ones(n)
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
        if self.fit_intercept:
            X = np.column_stack([X, np.ones(n)])
            d += 1

        objective = _svc_problem(X, signs, sample_weight, self.C,
                                 self.fit_intercept)
        w0 = np.zeros(d)
        if previous is not None:
            prev_classes, prev_w = previous
            if prev_w.shape == (d,) and np.array_equal(prev_classes,
                                                       self.classes_):
                w0 = prev_w
        result = _minimize(objective, w0, self.max_iter, self.tol)
        w = result.x
        if self.fit_intercept:
            self.coef_ = w[:-1]
            self.intercept_ = float(w[-1])
        else:
            self.coef_ = w
            self.intercept_ = 0.0
        self.n_iter_ = int(result.nit)
        self.grad_norm_ = float(np.max(np.abs(result.jac)))
        return self

    def decision_function(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict(self, X) -> np.ndarray:
        return self.classes_[(self.decision_function(X) > 0).astype(int)]

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))
