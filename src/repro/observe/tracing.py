"""Nestable spans: who spent the time, and what the cache did meanwhile.

A *span* covers one logical unit of work — an estimator run, a cleaning
round, one ``Runtime.map`` stage. Spans nest: opening a span while
another is active on the same thread makes it a child, so a finished
trace is a forest whose leaves are the actual compute stages. Each span
records wall and CPU seconds, arbitrary attributes (backend, worker
count, task count, ...), and — when handed a
:class:`~repro.runtime.FingerprintCache` — the hit/miss/put *deltas*
that occurred while it was open, so a report can say "this Shapley sweep
made 1 200 lookups at a 40% hit rate" without global counters.

The tracer is thread-aware: each thread keeps its own open-span stack,
and spans finished on a thread with no enclosing span become roots.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["Span", "Tracer"]


def _cache_counters(cache) -> dict | None:
    """Copy the counters of a FingerprintCache-like object (duck-typed so
    this module stays import-independent from ``repro.runtime``)."""
    stats = getattr(cache, "stats", None)
    if stats is None:
        return None
    return {
        "memory_hits": stats.memory_hits,
        "disk_hits": stats.disk_hits,
        "misses": stats.misses,
        "puts": stats.puts,
    }


class Span:
    """One timed unit of work inside a :class:`Tracer` forest.

    Attributes
    ----------
    name:
        Logical stage name (``"shapley_mc"``, ``"runtime.banzhaf"``, ...).
    attrs:
        Free-form metadata attached at open time or via :meth:`set`.
    wall_seconds / cpu_seconds:
        Duration measured with ``perf_counter`` / ``process_time``.
    cache:
        ``{"hits", "misses", "puts", "hit_rate"}`` deltas observed while
        the span was open, or ``None`` when no cache was attached.
    status:
        ``"ok"``, or ``"error"`` when the span body raised.
    children:
        Spans opened (and closed) while this one was the innermost.
    """

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.status = "ok"
        self.children: list[Span] = []
        self.cache: dict | None = None

    def set(self, **attrs) -> "Span":
        """Attach extra attributes to an open (or finished) span."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> dict:
        """Recursive plain-dict view (what :func:`export_dict` emits)."""
        out = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.cache is not None:
            out["cache"] = dict(self.cache)
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.wall_seconds:.3f}s, "
                f"children={len(self.children)})")


class Tracer:
    """Builds the span forest; one instance per :class:`Observer`."""

    def __init__(self):
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: list[Span] = []

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, *, cache=None, **attrs):
        """Open a child span of the calling thread's innermost span.

        ``cache`` may be a :class:`~repro.runtime.FingerprintCache` (or
        anything with a ``.stats`` counter object); the span then records
        the lookup/put deltas that happened while it was open.
        """
        span = Span(name, attrs)
        before = _cache_counters(cache)
        stack = self._stack()
        stack.append(span)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.wall_seconds = time.perf_counter() - wall0
            span.cpu_seconds = time.process_time() - cpu0
            if before is not None:
                after = _cache_counters(cache)
                hits = (after["memory_hits"] - before["memory_hits"]
                        + after["disk_hits"] - before["disk_hits"])
                misses = after["misses"] - before["misses"]
                lookups = hits + misses
                span.cache = {
                    "hits": hits, "misses": misses,
                    "puts": after["puts"] - before["puts"],
                    "hit_rate": hits / lookups if lookups else 0.0,
                }
            stack.pop()
            if stack:
                stack[-1].children.append(span)
            else:
                with self._lock:
                    self.roots.append(span)

    def snapshot(self) -> list[dict]:
        """Plain-dict view of every *finished* root span, in finish order."""
        with self._lock:
            return [span.as_dict() for span in self.roots]

    def total_seconds(self) -> float:
        """Wall time summed over root spans (children are contained)."""
        with self._lock:
            return sum(span.wall_seconds for span in self.roots)

    def render(self) -> str:
        """Indented text tree of the span forest, for reports."""
        lines: list[str] = []
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            _render_span(root, 0, lines)
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop finished roots (open spans on other threads are kept)."""
        with self._lock:
            self.roots.clear()


def _render_span(span: Span, depth: int, lines: list[str]) -> None:
    pad = "  " * depth
    detail = f"{span.wall_seconds:9.3f}s wall {span.cpu_seconds:8.3f}s cpu"
    extras = []
    for key in ("backend", "workers", "tasks", "players", "rounds"):
        if key in span.attrs:
            extras.append(f"{key}={span.attrs[key]}")
    if span.cache is not None and (span.cache["hits"] or span.cache["misses"]):
        extras.append(f"cache {span.cache['hits']}/"
                      f"{span.cache['hits'] + span.cache['misses']} hits "
                      f"({span.cache['hit_rate']:.1%})")
    if span.status != "ok":
        extras.append(span.status.upper())
    suffix = f"  [{', '.join(extras)}]" if extras else ""
    lines.append(f"{pad}{span.name:<{max(1, 34 - 2 * depth)}} {detail}{suffix}")
    for child in span.children:
        _render_span(child, depth + 1, lines)
