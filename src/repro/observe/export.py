"""Render an :class:`~repro.observe.Observer` to a report or a dict.

Two formats from the same data:

- :func:`render_text` — the human-facing run report: span tree with
  wall/CPU time and cache hit rates, a metrics table, and a runlog
  summary. This is what benchmark runs archive next to their results.
- :func:`export_dict` — everything as plain JSON-ready types, for
  dashboards, assertions in tests, or archiving alongside the JSONL log.
"""

from __future__ import annotations

from pathlib import Path

from repro.observe.runlog import jsonable

__all__ = ["export_dict", "render_text", "write_report"]


def export_dict(observer) -> dict:
    """Machine-readable view: run id, span forest, metrics, events."""
    if not observer.enabled:  # the null observer collects nothing
        return observer.as_dict()
    return {
        "run_id": observer.run_id,
        "spans": jsonable(observer.tracer.snapshot()),
        "metrics": jsonable(observer.metrics.snapshot()),
        "events": jsonable(list(observer.runlog.events)),
    }


def render_text(observer, *, title: str = "repro.observe run report") -> str:
    """The human-readable run report."""
    if not observer.enabled:  # the null observer collects nothing
        return observer.report()
    lines = [f"== {title}: {observer.run_id} ==", ""]

    span_tree = observer.tracer.render()
    lines.append("spans")
    lines.append("-----")
    lines.append(span_tree if span_tree else "(no spans recorded)")
    lines.append("")

    metrics = observer.metrics.snapshot()
    lines.append("metrics")
    lines.append("-------")
    if metrics:
        width = max(len(name) for name in metrics)
        for name, value in metrics.items():
            if isinstance(value, dict):  # histogram summary
                value = (f"n={value['count']} mean={value['mean']:.4g} "
                         f"min={value['min']:.4g} max={value['max']:.4g}")
            lines.append(f"{name:<{width}}  {value}")
    else:
        lines.append("(no metrics recorded)")
    lines.append("")

    lines.append("runlog")
    lines.append("------")
    kinds = observer.runlog.kinds()
    if kinds:
        total = len(observer.runlog)
        where = f" -> {observer.runlog.path}" if observer.runlog.path else ""
        lines.append(f"{total} events{where}")
        for kind in sorted(kinds):
            lines.append(f"  {kind:<28} x{kinds[kind]}")
    else:
        lines.append("(no events recorded)")
    return "\n".join(lines) + "\n"


def write_report(observer, path) -> Path:
    """Render :func:`render_text` to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_text(observer), encoding="utf-8")
    return path
