"""Observability for pipeline debugging runs: tracing, metrics, provenance.

The tutorial's premise is that practitioners must *see inside* their
pipelines to find which data caused a bad outcome. This package is the
seeing apparatus for the library itself: every importance sweep,
cleaning loop, CPClean selection, and unlearning request can record
what it did — structured enough to replay or diff, cheap enough to
leave on. Zero third-party dependencies (stdlib + numpy only for JSON
conversion).

Three signals, one handle:

- **Spans** (:mod:`~repro.observe.tracing`) — nestable timing scopes
  carrying wall/CPU seconds, executor backend metadata, and
  :class:`~repro.runtime.FingerprintCache` hit/miss deltas.
- **Metrics** (:mod:`~repro.observe.metrics`) — counters, gauges and
  histograms (utility evaluations, permutations walked, rows cleaned,
  unlearn requests) with snapshot + reset; a process-wide registry is
  available via :func:`global_registry`.
- **Runlog** (:mod:`~repro.observe.runlog`) — a structured JSONL
  provenance log of per-stage events (params, RNG seed, data
  fingerprint, scores) that makes runs replayable and diffable
  (:func:`diff_runs`).

:class:`Observer` bundles the three; every instrumented layer accepts
``observer=`` defaulting to the no-op :data:`NULL_OBSERVER`::

    from repro.observe import Observer

    obs = Observer(log_path="runs/sweep.jsonl")
    with Runtime(backend="process", observer=obs) as rt:
        utility = Utility(model, X, y, Xv, yv, runtime=rt)
        MonteCarloShapley(n_permutations=100, seed=0,
                          observer=obs).score(utility)
    print(obs.report())      # span tree + metrics + runlog summary

:mod:`~repro.observe.export` renders a run as a text report
(:func:`render_text`) or a machine-readable dict (:func:`export_dict`).
"""

from repro.observe.export import export_dict, render_text, write_report
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.observe.observer import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    resolve_observer,
)
from repro.observe.runlog import RunLog, diff_runs, jsonable
from repro.observe.tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "RunLog",
    "Span",
    "Tracer",
    "diff_runs",
    "export_dict",
    "global_registry",
    "jsonable",
    "render_text",
    "resolve_observer",
    "write_report",
]
