"""The :class:`Observer` facade — tracer + metrics + runlog in one handle.

Every instrumented layer accepts an opt-in ``observer=`` argument that
defaults to :data:`NULL_OBSERVER`, a shared no-op whose methods do
nothing and allocate nothing, so un-observed runs pay only an attribute
lookup per *batch* (never per task). Passing a real :class:`Observer`
turns on all three signals at once::

    from repro.observe import Observer

    obs = Observer(log_path="runs/tonight.jsonl")
    values = MonteCarloShapley(n_permutations=50, seed=0,
                               observer=obs).score(utility)
    print(obs.report())        # span tree, metrics, runlog summary
    obs.as_dict()              # the same, machine-readable
"""

from __future__ import annotations

import itertools
import os

from repro.core.exceptions import ValidationError
from repro.observe.metrics import MetricsRegistry
from repro.observe.runlog import RunLog
from repro.observe.tracing import Tracer

__all__ = ["Observer", "NullObserver", "NULL_OBSERVER", "resolve_observer"]

_RUN_COUNTER = itertools.count()


class Observer:
    """Collects spans, metrics, and provenance events for one run.

    Parameters
    ----------
    run_id:
        Identifier stamped on runlog events and the report header;
        auto-generated (pid + per-process counter) when omitted.
    log_path:
        Optional JSONL file the runlog writes through to as events occur.
    metrics:
        A :class:`MetricsRegistry` to accumulate into — pass
        :func:`repro.observe.global_registry` for a process-wide rollup;
        by default each observer gets a private registry.
    runlog:
        An existing :class:`RunLog` to append to (overrides ``log_path``).
    """

    enabled = True

    def __init__(self, *, run_id: str | None = None, log_path=None,
                 metrics: MetricsRegistry | None = None,
                 runlog: RunLog | None = None):
        self.run_id = run_id or f"run-{os.getpid()}-{next(_RUN_COUNTER)}"
        self.tracer = Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.runlog = runlog if runlog is not None \
            else RunLog(log_path, run_id=self.run_id)

    # -- the four verbs the wired layers use -------------------------------
    def span(self, name: str, *, cache=None, **attrs):
        """Open a nested timing span (see :class:`~repro.observe.Tracer`)."""
        return self.tracer.span(name, cache=cache, **attrs)

    def event(self, kind: str, **fields) -> None:
        """Record one provenance event in the runlog."""
        self.runlog.record(kind, **fields)

    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter metric."""
        self.metrics.inc(name, n)

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge metric."""
        self.metrics.set_gauge(name, value)

    def observe_value(self, name: str, value: float) -> None:
        """Feed one observation into a histogram metric."""
        self.metrics.observe(name, value)

    # -- output ------------------------------------------------------------
    def report(self) -> str:
        """Human-readable text report (spans, metrics, runlog summary)."""
        from repro.observe.export import render_text

        return render_text(self)

    def as_dict(self) -> dict:
        """Machine-readable export of everything collected so far."""
        from repro.observe.export import export_dict

        return export_dict(self)

    def write_report(self, path) -> None:
        """Render :meth:`report` to a file."""
        from repro.observe.export import write_report

        write_report(self, path)

    def reset(self) -> None:
        """Clear spans, metrics, and in-memory events (a fresh run)."""
        self.tracer.reset()
        self.metrics.reset()
        self.runlog.events.clear()

    def __repr__(self) -> str:
        return (f"Observer({self.run_id!r}, spans={len(self.tracer.roots)}, "
                f"events={len(self.runlog)})")


class _NullSpan:
    """Reusable do-nothing context manager yielded by the null observer."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self


_NULL_SPAN = _NullSpan()


class NullObserver:
    """The default no-op observer: every method returns immediately.

    Shared as the :data:`NULL_OBSERVER` singleton so resolving
    ``observer=None`` allocates nothing; hot paths may also branch on
    ``observer.enabled`` to skip building event payloads entirely.
    """

    enabled = False

    def span(self, name: str, *, cache=None, **attrs):
        return _NULL_SPAN

    def event(self, kind: str, **fields) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe_value(self, name: str, value: float) -> None:
        pass

    def report(self) -> str:
        return "(null observer: nothing recorded)"

    def as_dict(self) -> dict:
        return {"run_id": None, "spans": [], "metrics": {}, "events": []}

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullObserver()"


NULL_OBSERVER = NullObserver()


def resolve_observer(observer) -> Observer | NullObserver:
    """Normalize the ``observer=`` argument the instrumented layers accept.

    ``None`` becomes the shared :data:`NULL_OBSERVER`; an
    :class:`Observer` (or :class:`NullObserver`) passes through.
    """
    if observer is None:
        return NULL_OBSERVER
    if isinstance(observer, (Observer, NullObserver)):
        return observer
    raise ValidationError(
        "observer must be None or a repro.observe.Observer — got "
        f"{type(observer).__name__}")
