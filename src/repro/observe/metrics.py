"""Counters, gauges, and histograms with snapshot + reset.

The instrumented layers count what a scaling report needs — utility
evaluations performed, permutations walked, rows cleaned, unlearn
requests served — into a :class:`MetricsRegistry`. A registry is cheap
(one dict + one lock) so every :class:`~repro.observe.Observer` gets its
own by default, keeping tests and concurrent experiments isolated; the
module also keeps one *process-wide* registry
(:func:`global_registry`) for code that wants a single cross-experiment
rollup, e.g. a benchmark session summary.

Metric types:

- :class:`Counter` — monotonically increasing int (``inc``).
- :class:`Gauge` — last-written float (``set``).
- :class:`Histogram` — streaming count/sum/min/max/mean of observations
  (no buckets: the consumers here need magnitudes, not quantiles).
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "global_registry"]


class Counter:
    """Monotonically increasing counter."""

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def as_value(self):
        return self.value


class Gauge:
    """Last-value-wins instantaneous measurement."""

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_value(self):
        return self.value


class Histogram:
    """Streaming summary (count/sum/min/max/mean) of observed values."""

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_value(self) -> dict:
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "mean": self.mean}


class MetricsRegistry:
    """Named metrics with get-or-create access, snapshot, and reset.

    A name is bound to one metric type on first use; re-requesting it
    with a different type raises ``TypeError`` (silent type morphing is
    how counters get lost in dashboards).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls()
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # -- one-shot conveniences (what the wired layers actually call) -----
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- introspection -----------------------------------------------------
    def snapshot(self) -> dict:
        """``{name: value}`` for counters/gauges, summary dict for
        histograms; names sorted for stable reports."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.as_value() for name, metric in items}

    def reset(self) -> None:
        """Drop every metric (names re-register on next use)."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (shared rollup across observers)."""
    return _GLOBAL_REGISTRY
