"""Structured JSONL run-provenance log.

Every instrumented layer appends *events* — small flat dicts with a
``kind`` plus whatever identifies the work: estimator parameters, RNG
seed, data fingerprint, per-round scores, cleaned row ids. Two uses:

- **Replay**: an ``importance.run`` event carries (method, params, seed,
  data fingerprint), which is exactly the tuple that determines the
  scores under the backend-invariance guarantee, so a run can be
  reconstructed from its log alone.
- **Diff**: :func:`diff_runs` aligns two event streams and reports every
  field that changed — the fastest way to answer "why did tonight's
  cleaning run behave differently?" (different seed? different data
  fingerprint? fewer rounds?).

Events are held in memory and, when a ``path`` is given, appended
through to a JSONL file as they happen (one ``json.dumps`` line per
event, crash-durable up to the last flushed line).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

__all__ = ["RunLog", "diff_runs", "jsonable"]

#: Bookkeeping fields skipped when diffing two runs — they differ between
#: any two executions without being *semantic* differences.
VOLATILE_FIELDS = ("seq", "ts", "run_id", "wall_seconds", "cpu_seconds")


def jsonable(obj):
    """Recursively convert numpy scalars/arrays and paths to JSON types."""
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [jsonable(v) for v in obj.tolist()]
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, Path):
        return str(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


class RunLog:
    """Append-only provenance log with optional JSONL write-through.

    Parameters
    ----------
    path:
        JSONL file events are appended to as they are recorded; parent
        directories are created. ``None`` keeps the log in memory only.
    run_id:
        Identifier stamped on every event (the owning observer's id).
    """

    def __init__(self, path: str | Path | None = None, *,
                 run_id: str | None = None):
        self.path = Path(path) if path is not None else None
        self.run_id = run_id
        self.events: list[dict] = []
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Truncate: one RunLog == one run; appending across runs
            # would silently interleave their provenance.
            self.path.write_text("", encoding="utf-8")

    def record(self, kind: str, **fields) -> dict:
        """Append one event; returns the stored (JSON-clean) dict."""
        event = {"seq": len(self.events), "ts": time.time(), "kind": kind}
        if self.run_id is not None:
            event["run_id"] = self.run_id
        event.update(jsonable(fields))
        self.events.append(event)
        if self.path is not None:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(event) + "\n")
        return event

    # -- queries -----------------------------------------------------------
    def iter_events(self, kind: str | None = None):
        """All events, or only those of one ``kind``, in record order."""
        for event in self.events:
            if kind is None or event["kind"] == kind:
                yield event

    def kinds(self) -> dict:
        """``{kind: count}`` summary used by the text report."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event["kind"]] = out.get(event["kind"], 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.events)

    # -- (de)serialization -------------------------------------------------
    def to_jsonl(self) -> str:
        return "".join(json.dumps(event) + "\n" for event in self.events)

    def write(self, path: str | Path) -> Path:
        """Dump the in-memory event list to ``path`` (overwrites)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunLog":
        """Rebuild a log from a JSONL file (memory-only; does not re-open
        the file for writing)."""
        log = cls()
        text = Path(path).read_text(encoding="utf-8")
        for line in text.splitlines():
            line = line.strip()
            if line:
                log.events.append(json.loads(line))
        if log.events and "run_id" in log.events[0]:
            log.run_id = log.events[0]["run_id"]
        return log


def diff_runs(a: RunLog, b: RunLog, *, ignore=VOLATILE_FIELDS) -> list[str]:
    """Human-readable differences between two runs' event streams.

    Events are aligned by position; every added/removed event and every
    changed field (outside ``ignore``) produces one line. An empty list
    means the runs are provenance-identical — same stages, same params,
    same seeds, same data fingerprints, same scores.
    """
    ignore = set(ignore)
    lines: list[str] = []
    for i in range(max(len(a.events), len(b.events))):
        if i >= len(a.events):
            lines.append(f"[{i}] only in B: {b.events[i]['kind']}")
            continue
        if i >= len(b.events):
            lines.append(f"[{i}] only in A: {a.events[i]['kind']}")
            continue
        ev_a, ev_b = a.events[i], b.events[i]
        if ev_a["kind"] != ev_b["kind"]:
            lines.append(f"[{i}] kind: {ev_a['kind']!r} != {ev_b['kind']!r}")
            continue
        keys = (set(ev_a) | set(ev_b)) - ignore
        for key in sorted(keys):
            va, vb = ev_a.get(key), ev_b.get(key)
            if va != vb:
                lines.append(
                    f"[{i}] {ev_a['kind']}.{key}: {va!r} != {vb!r}")
    return lines
