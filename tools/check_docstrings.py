#!/usr/bin/env python
"""Docstring-coverage gate for ``src/repro``.

Usage::

    python tools/check_docstrings.py

Every module must carry a module docstring, and every public
module-level class (name not starting with ``_``) must carry a class
docstring — the module docstrings seed `docs/API.md` section summaries
and the class docstrings its per-name rows, so a gap there is a hole in
the generated reference. Pure AST, no imports of the checked code.
Exits 1 listing each offender as ``path:line: message``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE_DIR = REPO_ROOT / "src" / "repro"


def check_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    rel = path.relative_to(REPO_ROOT)
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{rel}:1: missing module docstring")
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_") \
                and ast.get_docstring(node) is None:
            problems.append(
                f"{rel}:{node.lineno}: public class "
                f"{node.name!r} missing docstring")
    return problems


def main() -> int:
    files = sorted(PACKAGE_DIR.rglob("*.py"))
    if not files:
        print(f"no python files under {PACKAGE_DIR}", file=sys.stderr)
        return 2
    problems = []
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print("\n".join(problems))
        print(f"\n{len(problems)} docstring problem(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"docstring coverage OK: {len(files)} modules, "
          "all modules and public classes documented")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
