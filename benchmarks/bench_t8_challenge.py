"""Experiment T8 — Section 3.2: the data-debugging challenge.

Regenerated leaderboard: three strategies (random, per-example loss,
KNN-Shapley) under the same fixed cleaning budget, scored on the hidden
test set.

Shape to reproduce: all strategies beat the no-cleaning baseline, and
prioritized (importance-driven) cleaning beats random under the budget.
"""

import numpy as np

import repro as nde
from repro.challenge import Leaderboard, make_challenge
from repro.core.api import default_letter_encoder
from repro.ml import LogisticRegression
from repro.ml.base import clone

from .conftest import write_result

BUDGET = 40
SEED = 77


def shapley_rows(challenge):
    values = nde.knn_shapley_values(challenge.train_df,
                                    validation=challenge.valid_df, k=10)
    return challenge.train_df.row_ids[np.argsort(values)[:BUDGET]]


def loss_rows(challenge):
    encoder = clone(default_letter_encoder())
    features = [c for c in challenge.train_df.columns if c != "sentiment"]
    X = encoder.fit_transform(challenge.train_df.select(features))
    y = np.array(challenge.train_df["sentiment"].to_list())
    model = LogisticRegression(max_iter=80).fit(X, y)
    proba = model.predict_proba(X)
    index = {c: i for i, c in enumerate(model.classes_.tolist())}
    own = proba[np.arange(len(y)), [index[v] for v in y.tolist()]]
    return challenge.train_df.row_ids[np.argsort(own)[:BUDGET]]


def random_rows(challenge):
    rng = np.random.default_rng(0)
    return rng.choice(challenge.train_df.row_ids, size=BUDGET, replace=False)


def run_challenge():
    strategies = {"shapley": shapley_rows, "loss": loss_rows,
                  "random": random_rows}
    scores, baseline = {}, None
    for name, strategy in strategies.items():
        challenge = make_challenge(n=300, budget=BUDGET, seed=SEED)
        baseline = challenge.oracle.baseline_score
        scores[name] = challenge.oracle.submit(strategy(challenge),
                                               participant=name)
    return scores, baseline


def test_t8_challenge(benchmark, results_dir):
    scores, baseline = benchmark.pedantic(run_challenge, rounds=1,
                                          iterations=1)

    board = Leaderboard(baseline=baseline)
    for name, score in scores.items():
        board.record(name, score, BUDGET)
    rows = [board.render(), "",
            "claim: importance-prioritized cleaning beats random under a "
            "fixed budget; all beat the no-cleaning baseline"]
    write_result(results_dir, "t8_challenge", rows)

    benchmark.extra_info.update(dict(scores, baseline=baseline))
    assert scores["shapley"] >= baseline
    assert scores["shapley"] >= scores["random"] - 0.01
