"""Experiment F4 — Figure 4: Zorro worst-case loss vs missingness.

Paper artifact: the bar chart "Maximum worst-case loss" over missing
percentages 5/10/15/20/25 of ``employer_rating`` under MNAR — a curve
that rises with the missing fraction.

Shape to reproduce: monotone-increasing certified worst-case loss.
"""

import numpy as np

from repro.datasets import make_hiring_tables
from repro.errors import inject_missing
from repro.uncertain import encode_symbolic, estimate_worst_case_loss

from .conftest import write_result

PERCENTAGES = (5, 10, 15, 20, 25)


def run_figure4(seed: int = 9, n: int = 300):
    letters, _, _ = make_hiring_tables(n, seed=seed)
    train, test = letters.split([0.8, 0.2], seed=seed + 1)

    def with_target(frame):
        return frame.with_column(
            "target", lambda r: 1.0 if r["sentiment"] == "positive" else 0.0)

    train = with_target(train)
    test = with_target(test)
    X_test = test.select(["employer_rating", "years_experience"]).to_numpy()
    y_test = test["target"].cast(float).to_numpy()

    max_losses = {}
    for percentage in PERCENTAGES:
        dirty, _ = inject_missing(train, column="employer_rating",
                                  fraction=percentage / 100.0,
                                  mechanism="MNAR", seed=seed + 2)
        table = encode_symbolic(
            dirty, feature_columns=["employer_rating", "years_experience"],
            label_column="target")
        outcome = estimate_worst_case_loss(table, X_test, y_test)
        max_losses[percentage] = outcome["train_worst_case_mse"]
    return max_losses


def test_fig4_zorro_uncertainty(benchmark, results_dir):
    max_losses = benchmark.pedantic(run_figure4, rounds=1, iterations=1)

    peak = max(max_losses.values())
    rows = ["missing%  max_worst_case_loss  bar", "-" * 52]
    for percentage in PERCENTAGES:
        value = max_losses[percentage]
        bar = "#" * max(1, int(30 * value / peak))
        rows.append(f"{percentage:<10}{value:<21.4f}{bar}")
    rows.append("")
    rows.append("paper shape: loss grows monotonically with missingness "
                "(no absolute values reported)")
    write_result(results_dir, "fig4_zorro_uncertainty", rows)

    benchmark.extra_info.update(
        {f"loss_at_{p}": float(v) for p, v in max_losses.items()})
    series = [max_losses[p] for p in PERCENTAGES]
    assert series[-1] > series[0]
    # Near-monotone: small local dips from MNAR sampling tolerated.
    assert all(b >= a * 0.85 for a, b in zip(series, series[1:]))
