"""Experiment F2 — Figure 2: prioritized cleaning recovers accuracy.

Paper artifact: "Accuracy with data errors: 0.76." ... "Cleaning some
records improved accuracy from 0.76 to 0.79."

Regenerates the snippet: 10-12% label flips on the recommendation
letters, KNN-Shapley ranking, oracle-clean the bottom tuples, report the
accuracy pair. Shape to reproduce: dirty < cleaned, gap of a few points.
"""

import numpy as np

import repro as nde
from repro.cleaning import CleaningOracle

from .conftest import write_result


def run_figure2(seed: int = 0, n: int = 400, fraction: float = 0.12,
                n_clean: int = 48):
    train_df, valid_df, _ = nde.load_recommendation_letters(n, seed=seed)
    dirty, report = nde.inject_labelerrors(train_df, fraction=fraction,
                                           seed=seed + 100)
    acc_dirty = nde.evaluate_model(dirty, validation=valid_df)
    importances = nde.knn_shapley_values(dirty, validation=valid_df, k=10)
    lowest = dirty.row_ids[np.argsort(importances)[:n_clean]]
    cleaned = CleaningOracle(train_df).clean(dirty, lowest)
    acc_cleaned = nde.evaluate_model(cleaned, validation=valid_df)
    detection = report.detection_scores(lowest)
    return {"acc_dirty": acc_dirty, "acc_cleaned": acc_cleaned,
            "recall": detection["recall"]}


def test_fig2_prioritized_cleaning(benchmark, results_dir):
    outcome = benchmark.pedantic(run_figure2, rounds=1, iterations=1)

    # Multi-seed series for the report (shape robustness).
    rows = ["seed  acc_dirty  acc_cleaned  detection_recall",
            "-" * 48]
    deltas = []
    for seed in range(5):
        r = run_figure2(seed=seed)
        deltas.append(r["acc_cleaned"] - r["acc_dirty"])
        rows.append(f"{seed:<6}{r['acc_dirty']:<11.3f}"
                    f"{r['acc_cleaned']:<13.3f}{r['recall']:.2f}")
    rows.append("")
    rows.append(f"paper reports: dirty 0.76 -> cleaned 0.79 (delta +0.03)")
    rows.append(f"seed-0 run:    dirty {outcome['acc_dirty']:.3f} -> "
                f"cleaned {outcome['acc_cleaned']:.3f} "
                f"(delta {outcome['acc_cleaned'] - outcome['acc_dirty']:+.3f})")
    rows.append(f"mean delta over 5 seeds: {np.mean(deltas):+.3f}")
    write_result(results_dir, "fig2_prioritized_cleaning", rows)

    benchmark.extra_info.update(outcome)
    # Shape assertions: cleaning does not hurt on the headline seed and
    # helps on average.
    assert outcome["acc_cleaned"] >= outcome["acc_dirty"]
    assert np.mean(deltas) > 0
