"""Ablation A1 — KNN proxy vs the true downstream model (§2.4 caveat).

The survey warns that the KNN proxy "may not always give the best results
in situations where the inductive bias of the proxy model is incompatible
with the actual model" (refs [33, 37, 39]). This ablation measures it:
on a task where the true model is logistic regression, compare error
detection by (a) exact KNN-Shapley, (b) TMC-Shapley with the *true* model
as utility, and (c) influence functions on the true model — along with
their cost.

Shape to reproduce: the proxy is competitive at a fraction of the cost
when the geometry is compatible (blobs), and loses ground on data whose
k-NN structure diverges from the linear decision boundary (anisotropic
features).
"""

import numpy as np

from repro.datasets import make_blobs
from repro.errors import inject_label_errors_array
from repro.importance import (
    MonteCarloShapley,
    Utility,
    detection_recall_at_k,
    influence_scores,
    knn_shapley,
)
from repro.ml import LogisticRegression

from .conftest import write_result


def make_task(anisotropy: float, seed=5):
    """Binary task; `anisotropy` stretches one nuisance dimension, which
    distorts euclidean neighborhoods but not the linear separator."""
    X, y = make_blobs(140, n_features=4, centers=2, cluster_std=1.0,
                      seed=seed)
    X = X.copy()
    X[:, -1] *= anisotropy  # nuisance direction dominates distances
    X_train, y_train = X[:100], y[:100]
    X_valid, y_valid = X[100:], y[100:]
    y_dirty, flipped = inject_label_errors_array(y_train, fraction=0.15,
                                                 seed=seed + 1)
    return X_train, y_dirty, X_valid, y_valid, flipped


def evaluate(anisotropy: float):
    X, y, Xv, yv, flipped = make_task(anisotropy)
    k = len(flipped)
    out = {}
    out["knn_proxy"] = detection_recall_at_k(
        knn_shapley(X, y, Xv, yv, k=5), flipped, k)
    utility = Utility(LogisticRegression(max_iter=60), X, y, Xv, yv)
    out["true_model_tmc"] = detection_recall_at_k(
        MonteCarloShapley(n_permutations=10, truncation_tol=0.02,
                          seed=0).score(utility), flipped, k)
    model = LogisticRegression().fit(X, y)
    out["true_model_influence"] = detection_recall_at_k(
        influence_scores(model, X, y, Xv, yv), flipped, k)
    return out


def test_a1_proxy_fidelity(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: {a: evaluate(a) for a in (1.0, 20.0)},
        rounds=1, iterations=1)

    rows = [f"{'setting':<22}{'knn_proxy':>11}{'tmc(true)':>11}"
            f"{'influence':>11}", "-" * 55]
    for anisotropy, scores in results.items():
        label = "isotropic" if anisotropy == 1.0 else \
            f"anisotropic x{anisotropy:.0f}"
        rows.append(f"{label:<22}{scores['knn_proxy']:>11.2f}"
                    f"{scores['true_model_tmc']:>11.2f}"
                    f"{scores['true_model_influence']:>11.2f}")
    iso, aniso = results[1.0], results[20.0]
    rows.append("")
    rows.append("survey caveat (§2.4): the KNN proxy degrades when its "
                "inductive bias (euclidean neighborhoods) diverges from "
                "the true model's")
    rows.append(f"proxy drop under anisotropy: "
                f"{iso['knn_proxy'] - aniso['knn_proxy']:+.2f}; "
                f"true-model influence drop: "
                f"{iso['true_model_influence'] - aniso['true_model_influence']:+.2f}")
    write_result(results_dir, "a1_proxy_fidelity", rows)

    # Shape: proxy is strong when geometry matches...
    assert iso["knn_proxy"] >= 0.7
    # ...and loses more than the true-model method under anisotropy.
    proxy_drop = iso["knn_proxy"] - aniso["knn_proxy"]
    influence_drop = iso["true_model_influence"] - aniso["true_model_influence"]
    assert proxy_drop > influence_drop
