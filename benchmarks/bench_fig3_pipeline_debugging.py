"""Experiment F3 — Figure 3: pipeline debugging via provenance.

Paper artifact: "Removal changed accuracy by 0.027." after removing the
25 lowest-importance *source* rows identified by Datascope over the
letters/jobdetail/social pipeline.

Shape to reproduce: prioritized source-row removal yields a positive
accuracy delta, clearly better than removing random rows.
"""

import numpy as np

from repro.datasets import make_hiring_tables
from repro.errors import inject_label_errors
from repro.ml import (
    ColumnTransformer,
    LogisticRegression,
    OneHotEncoder,
    Pipeline,
    SimpleImputer,
    StandardScaler,
)
from repro.pipelines import (
    DataPipeline,
    datascope_importance,
    remove_and_evaluate,
    source,
)
from repro.pipelines.datascope import rank_source_rows
from repro.text import SentenceEmbedder

from .conftest import write_result


def build_pipeline():
    encoder = ColumnTransformer([
        ("text", SentenceEmbedder(dim=32), "letter_text"),
        ("num", Pipeline([("imp", SimpleImputer()),
                          ("sc", StandardScaler())]),
         ["years_experience", "employer_rating"]),
        ("deg", OneHotEncoder(), "degree"),
        ("tw", "passthrough", "has_twitter"),
    ])
    plan = (source("train_df")
            .join(source("jobdetail_df"), on="job_id")
            .join(source("social_df"), on="person_id")
            .map_column("has_twitter",
                        lambda r: 1.0 if r["twitter"] is not None else 0.0)
            .drop(["person_id", "job_id", "twitter", "sector", "seniority",
                   "salary_band", "followers", "linkedin_connections"])
            .encode(encoder, label="sentiment"))
    return DataPipeline(plan)


def run_figure3(seed: int = 5, n: int = 320, n_remove: int = 25):
    letters, jobs, social = make_hiring_tables(n, seed=seed)
    train, valid = letters.split([0.75, 0.25], seed=seed + 1)
    dirty, _ = inject_label_errors(train, column="sentiment", fraction=0.15,
                                   seed=seed + 2)
    pipeline = build_pipeline()
    sources = {"train_df": dirty, "jobdetail_df": jobs, "social_df": social}
    result = pipeline.run(sources, provenance=True)
    X_valid, y_valid = result.apply(dict(sources, train_df=valid))
    importances = datascope_importance(result, source="train_df",
                                       X_valid=X_valid, y_valid=y_valid,
                                       k=20)
    worst = rank_source_rows(importances, n_remove)
    prioritized = remove_and_evaluate(
        pipeline, sources, source="train_df", row_ids=worst,
        model=LogisticRegression(max_iter=100), valid_frame=valid)

    rng = np.random.default_rng(seed)
    random_rows = rng.choice(dirty.row_ids, size=n_remove, replace=False)
    random_removal = remove_and_evaluate(
        pipeline, sources, source="train_df", row_ids=random_rows,
        model=LogisticRegression(max_iter=100), valid_frame=valid)
    return {"delta_prioritized": prioritized["delta"],
            "delta_random": random_removal["delta"],
            "before": prioritized["before"]}


def test_fig3_pipeline_debugging(benchmark, results_dir):
    outcome = benchmark.pedantic(run_figure3, rounds=1, iterations=1)

    rows = ["seed  delta_prioritized  delta_random", "-" * 40]
    prioritized, random_deltas = [], []
    for seed in (5, 15, 25):
        r = run_figure3(seed=seed)
        prioritized.append(r["delta_prioritized"])
        random_deltas.append(r["delta_random"])
        rows.append(f"{seed:<6}{r['delta_prioritized']:<+19.3f}"
                    f"{r['delta_random']:+.3f}")
    rows.append("")
    rows.append("paper reports: removal changed accuracy by +0.027")
    rows.append(f"seed-5 run:    {outcome['delta_prioritized']:+.3f} "
                f"(random removal: {outcome['delta_random']:+.3f})")
    rows.append(f"mean prioritized delta: {np.mean(prioritized):+.3f}; "
                f"mean random delta: {np.mean(random_deltas):+.3f}")
    write_result(results_dir, "fig3_pipeline_debugging", rows)

    benchmark.extra_info.update(outcome)
    assert np.mean(prioritized) > np.mean(random_deltas)
