"""Ablation A2 — TMC-Shapley truncation threshold (speed/quality knob).

DESIGN.md calls out the truncation tolerance of truncated Monte-Carlo
Shapley as a design choice worth ablating: larger tolerances truncate
permutation walks earlier (cheaper) but bias the tail contributions
towards zero (noisier detection).

Shape to reproduce: model trainings fall monotonically as the tolerance
grows; detection recall is flat for small tolerances and collapses only
for aggressive ones.
"""

import numpy as np

from repro.datasets import make_blobs
from repro.errors import inject_label_errors_array
from repro.importance import MonteCarloShapley, Utility, detection_recall_at_k
from repro.ml import KNeighborsClassifier

from .conftest import write_result

TOLERANCES = (0.0, 0.01, 0.05, 0.2)


def run_ablation(seed=3):
    X, y = make_blobs(120, n_features=3, centers=2, cluster_std=1.2,
                      seed=seed)
    X_train, y_train = X[:80], y[:80]
    X_valid, y_valid = X[80:], y[80:]
    y_dirty, flipped = inject_label_errors_array(y_train, fraction=0.15,
                                                 seed=seed + 4)
    k = len(flipped)

    table = {}
    for tolerance in TOLERANCES:
        utility = Utility(KNeighborsClassifier(5), X_train, y_dirty,
                          X_valid, y_valid)
        estimator = MonteCarloShapley(n_permutations=12,
                                      truncation_tol=tolerance, seed=0)
        values = estimator.score(utility)
        table[tolerance] = {
            "recall": detection_recall_at_k(values, flipped, k),
            "trainings": utility.calls,
        }
    return table


def test_a2_truncation_ablation(benchmark, results_dir):
    table = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = [f"{'tolerance':<12}{'trainings':>11}{'recall@k':>10}", "-" * 33]
    for tolerance in TOLERANCES:
        entry = table[tolerance]
        rows.append(f"{tolerance:<12}{entry['trainings']:>11}"
                    f"{entry['recall']:>10.2f}")
    rows.append("")
    rows.append("design-choice ablation: truncation buys large training "
                "savings before it starts costing detection quality")
    write_result(results_dir, "a2_truncation_ablation", rows)

    trainings = [table[t]["trainings"] for t in TOLERANCES]
    assert all(b <= a for a, b in zip(trainings, trainings[1:]))
    # Mild truncation keeps detection within 0.15 recall of exhaustive.
    assert table[0.01]["recall"] >= table[0.0]["recall"] - 0.15
