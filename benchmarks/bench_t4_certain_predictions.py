"""Experiment T4 — Section 2.3 claim (CPClean, ref [40]): "do we even
need to debug?"

Sweep the missingness rate and measure (a) the fraction of test queries
whose k-NN prediction is *certain* without any cleaning, and (b) how many
rows greedy CPClean cleans to certify everything, vs cleaning all
incomplete rows.

Shape to reproduce: certain fraction decreases with missingness; CPClean
certifies all queries after cleaning only a fraction of incomplete rows.
"""

import numpy as np

from repro.datasets import make_blobs
from repro.errors import inject_missing_array
from repro.uncertain import CertainPredictionKNN, cpclean_greedy

from .conftest import write_result

FRACTIONS = (0.05, 0.1, 0.2, 0.3, 0.4)


def certain_fraction_sweep(seed=12):
    X, y = make_blobs(100, n_features=2, centers=2, cluster_std=1.0,
                      seed=seed)
    X_test, _ = make_blobs(40, n_features=2, centers=2, cluster_std=1.0,
                           seed=seed)
    sweep = {}
    for fraction in FRACTIONS:
        X_dirty, _ = inject_missing_array(X, fraction=fraction,
                                          columns=[0, 1], seed=seed + 1)
        checker = CertainPredictionKNN(k=3).fit(X_dirty, y)
        sweep[fraction] = checker.certain_fraction(X_test)
    return sweep


def cpclean_efficiency(seed=12):
    X, y = make_blobs(80, n_features=2, centers=2, cluster_std=1.6,
                      seed=seed)
    X_test, _ = make_blobs(20, n_features=2, centers=2, cluster_std=1.6,
                           seed=seed)
    X_dirty, _ = inject_missing_array(X, fraction=0.25, columns=[0, 1],
                                      seed=seed + 2)
    n_incomplete = int(np.isnan(X_dirty).any(axis=1).sum())
    outcome = cpclean_greedy(X_dirty, y, X, X_test, k=3)
    return {"n_incomplete": n_incomplete, "n_cleaned": outcome["n_cleaned"],
            "initial_certain": outcome["certain_fraction"][0],
            "final_certain": outcome["certain_fraction"][-1]}


def test_t4_certain_predictions(benchmark, results_dir):
    sweep = benchmark.pedantic(certain_fraction_sweep, rounds=1,
                               iterations=1)
    efficiency = cpclean_efficiency()

    rows = ["missing_fraction  certain_prediction_fraction", "-" * 45]
    for fraction in FRACTIONS:
        rows.append(f"{fraction:<18.2f}{sweep[fraction]:.2f}")
    rows.append("")
    rows.append(f"greedy CPClean: raised certainty from "
                f"{efficiency['initial_certain']:.0%} to "
                f"{efficiency['final_certain']:.0%} by cleaning "
                f"{efficiency['n_cleaned']} of "
                f"{efficiency['n_incomplete']} incomplete rows")
    rows.append("paper claim: certainty falls with missingness; targeted "
                "cleaning certifies queries with far fewer repairs than "
                "full cleaning")
    write_result(results_dir, "t4_certain_predictions", rows)

    benchmark.extra_info.update({f"certain_at_{f}": v
                                 for f, v in sweep.items()})
    assert sweep[FRACTIONS[0]] >= sweep[FRACTIONS[-1]]
    assert efficiency["initial_certain"] < 1.0  # cleaning actually needed
    assert efficiency["final_certain"] > efficiency["initial_certain"]
    assert efficiency["n_cleaned"] < efficiency["n_incomplete"]
