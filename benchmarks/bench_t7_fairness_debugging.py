"""Experiment T7 — Gopher claim (ref [66]): removing a small responsible
training subset substantially improves fairness at little accuracy cost.

Regenerated table: top removal-based explanations with bias before/after,
accuracy before/after, and responsibility.

Shape to reproduce: the best explanation removes a minority of the data,
cuts the equalized-odds gap by a large fraction, and costs only a few
accuracy points.
"""

import numpy as np

from repro.datasets import make_census
from repro.fairness import GopherExplainer, equalized_odds_difference
from repro.ml import ColumnTransformer, LogisticRegression, OneHotEncoder

from .conftest import write_result


def run_gopher(seed=13, n=600):
    df, _ = make_census(n, bias_fraction=0.5, seed=seed)
    train, valid = df.split([0.7, 0.3], seed=seed + 1)
    encoder = ColumnTransformer([
        ("num", "passthrough", ["age", "education_years", "hours_per_week"]),
        ("grp", OneHotEncoder(), "group"),
    ])
    X_train = encoder.fit_transform(train)
    X_valid = encoder.transform(valid)
    explainer = GopherExplainer(LogisticRegression(max_iter=60),
                                equalized_odds_difference,
                                max_depth=2, min_support=0.02, n_bins=2)
    return explainer.explain(
        train, feature_matrix=X_train, label_column="income",
        group_column="group", X_valid=X_valid,
        y_valid=np.array(valid["income"].to_list()),
        groups_valid=np.array(valid["group"].to_list()), top_k=5), len(train)


def test_t7_fairness_debugging(benchmark, results_dir):
    explanations, n_train = benchmark.pedantic(run_gopher, rounds=1,
                                               iterations=1)

    rows = [f"{'rank':<6}{'removed':>8}{'bias_before':>13}{'bias_after':>12}"
            f"{'acc_before':>12}{'acc_after':>11}{'resp':>7}", "-" * 69]
    for rank, e in enumerate(explanations, start=1):
        rows.append(f"{rank:<6}{e.n_removed:>8}{e.bias_before:>13.3f}"
                    f"{e.bias_after:>12.3f}{e.accuracy_before:>12.3f}"
                    f"{e.accuracy_after:>11.3f}{e.responsibility:>7.0%}")
    rows.append("")
    for rank, e in enumerate(explanations[:3], start=1):
        rows.append(f"{rank}. {e.describe()}")
    rows.append("")
    rows.append("claim: a compact subset explains most of the bias; its "
                "removal trades little accuracy for a large fairness gain")
    write_result(results_dir, "t7_fairness_debugging", rows)

    best = explanations[0]
    benchmark.extra_info.update({
        "bias_before": best.bias_before, "bias_after": best.bias_after,
        "accuracy_cost": best.accuracy_before - best.accuracy_after,
    })
    assert best.responsibility >= 0.5        # removes most of the bias
    assert best.n_removed <= n_train * 0.5   # with a minority of the data
    assert best.accuracy_before - best.accuracy_after <= 0.15
