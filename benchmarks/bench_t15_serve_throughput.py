"""Experiment T15 — serving-tier throughput and latency.

The claim behind ``repro.serve``: wrapping the importance estimators in
a multi-tenant job tier costs scheduling overhead, not correctness —
N concurrent jobs from two tenants on one shared serial Runtime finish
with bit-identical scores while the queue keeps dispatch fair.

This bench submits a burst of Monte-Carlo Shapley jobs from two tenants
(2:1 weights), measures jobs/sec and per-job latency (submit → terminal
state), audits the dispatch log's fair-share property, and spot-checks
one job against its solo serial run. Artifact:
``results/t15_serve_throughput.txt`` with jobs/sec and p50/p95 latency.
"""

import time

import numpy as np

from repro.datasets import make_blobs
from repro.importance import MonteCarloShapley, Utility
from repro.ml import KNeighborsClassifier
from repro.serve import Server

from .conftest import write_result

N_JOBS = 12
N_PERMUTATIONS = 30
WORKERS = 4
TENANTS = {"alice": 2.0, "bob": 1.0}


def _utility():
    X, y = make_blobs(60, n_features=3, centers=2, seed=0)
    return Utility(KNeighborsClassifier(n_neighbors=3),
                   X[:40], y[:40], X[40:], y[40:])


def _run_burst(data_dir):
    """Submit N_JOBS across two tenants; return timing + audit data."""
    tenants = {name: {"weight": weight}
               for name, weight in TENANTS.items()}
    submitted = {}     # job_id -> (tenant, seed, t_submit)
    finished = {}      # job_id -> t_done
    with Server(data_dir, workers=WORKERS, tenants=tenants) as server:
        started = time.perf_counter()
        for i in range(N_JOBS):
            tenant = "alice" if i % 3 != 2 else "bob"  # 2:1 offered load
            job_id = server.submit(
                "shapley_mc", _utility, tenant=tenant,
                params={"n_permutations": N_PERMUTATIONS, "seed": i},
                every=10)
            submitted[job_id] = (tenant, i, time.perf_counter())
        pending = set(submitted)
        while pending:
            for job_id in list(pending):
                if server.status(job_id)["state"] == "done":
                    finished[job_id] = time.perf_counter()
                    pending.remove(job_id)
            time.sleep(0.001)
        wall = time.perf_counter() - started
        results = {job_id: server.result(job_id, timeout=60)
                   for job_id in submitted}
        log = server.dispatch_log
    latencies = sorted(finished[job_id] - submitted[job_id][2]
                       for job_id in submitted)
    return wall, latencies, results, submitted, log


def test_t15_serve_throughput(benchmark, results_dir, tmp_path):
    wall, latencies, results, submitted, log = benchmark.pedantic(
        lambda: _run_burst(tmp_path / "serve"), rounds=1, iterations=1)

    jobs_per_sec = N_JOBS / wall
    p50 = latencies[len(latencies) // 2]
    p95 = latencies[min(len(latencies) - 1,
                        int(round(0.95 * (len(latencies) - 1))))]

    # Correctness spot-check: one served job against its solo run.
    job_id, (_, seed, _) = next(iter(submitted.items()))
    solo = MonteCarloShapley(n_permutations=N_PERMUTATIONS,
                             seed=seed).score(_utility())
    assert [float(v).hex() for v in results[job_id]] \
        == [float(v).hex() for v in solo]

    # Fair-share audit: everything dispatched, per-tenant counts match
    # the offered load (8 alice, 4 bob).
    assert len(log) == N_JOBS
    offered = {"alice": sum(1 for t, _, _ in submitted.values()
                            if t == "alice"),
               "bob": sum(1 for t, _, _ in submitted.values()
                          if t == "bob")}
    assert log.count("alice") == offered["alice"]
    assert log.count("bob") == offered["bob"]

    benchmark.extra_info.update({
        "jobs": N_JOBS, "workers": WORKERS,
        "jobs_per_sec": round(jobs_per_sec, 2),
        "latency_p50_ms": round(1e3 * p50, 2),
        "latency_p95_ms": round(1e3 * p95, 2),
    })
    write_result(results_dir, "t15_serve_throughput", [
        "T15  serving-tier throughput (shapley_mc jobs, "
        f"{N_PERMUTATIONS} permutations each)",
        f"jobs={N_JOBS}  workers={WORKERS}  tenants=alice:2 bob:1  "
        f"wall={wall:.3f}s",
        f"throughput: {jobs_per_sec:.2f} jobs/sec",
        f"latency: p50={1e3 * p50:.1f}ms  p95={1e3 * p95:.1f}ms  "
        f"max={1e3 * latencies[-1]:.1f}ms",
        f"dispatch log: {' '.join(log)}",
        "served scores bit-identical to solo serial run: yes",
    ])
    assert jobs_per_sec > 0.5  # sanity floor, not a perf gate
    assert np.isfinite(p95)
