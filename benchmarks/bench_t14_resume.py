"""Experiment T14 — checkpoint/resume: skipped work and write overhead.

Two claims behind ``repro.runtime.checkpoint``:

1. **Resume skips the completed prefix.** A TMC-Shapley sweep killed
   partway through and resumed from its newest durable record replays
   the stored marginals (no retraining) and only evaluates the
   remaining permutations — and the resumed scores are *hex-identical*
   to the uninterrupted run. Artifact: ``results/t14_resume.txt``.
2. **Checkpointing is cheap.** Publishing an atomic snapshot costs a
   bounded few milliseconds per record (mkstemp + fsync + rename), so
   at real workload sizes — seconds per permutation — the overhead is
   noise; the scores are bit-for-bit unchanged by the presence of a
   checkpoint.
"""

import time

from repro.datasets import make_blobs
from repro.importance import MonteCarloShapley, Utility
from repro.ml import LogisticRegression
from repro.observe import Observer
from repro.runtime.checkpoint import CheckpointStore

from .conftest import write_result

N_TRAIN = 72
N_PERMUTATIONS = 12
CHECKPOINT_EVERY = 2


def _utility():
    X, y = make_blobs(N_TRAIN + 24, n_features=3, centers=2, seed=5)
    return Utility(LogisticRegression(max_iter=40),
                   X[:N_TRAIN], y[:N_TRAIN], X[N_TRAIN:], y[N_TRAIN:])


def _simulate_kill(store_dir) -> int:
    """Delete all but the *oldest* retained record — the on-disk state a
    SIGKILL would have left a few flushes ago. Returns the completed
    count recorded in the surviving snapshot."""
    store = CheckpointStore(store_dir)
    for path in store.record_paths()[1:]:
        path.unlink()
    record = store.load_latest()
    return record.payload["completed"]


def test_t14_resume_skips_completed_work(benchmark, results_dir, tmp_path):
    store_dir = tmp_path / "ckpt"

    def full_run():
        return MonteCarloShapley(
            n_permutations=N_PERMUTATIONS, seed=9,
            checkpoint=store_dir,
            checkpoint_every=CHECKPOINT_EVERY).score(_utility())

    started = time.perf_counter()
    reference = benchmark.pedantic(full_run, rounds=1, iterations=1)
    full_seconds = time.perf_counter() - started

    completed = _simulate_kill(store_dir)
    obs = Observer(run_id="t14")
    started = time.perf_counter()
    resumed = MonteCarloShapley(
        n_permutations=N_PERMUTATIONS, seed=9,
        resume_from=store_dir, observer=obs).score(_utility())
    resumed_seconds = time.perf_counter() - started

    assert [v.hex() for v in resumed] == [v.hex() for v in reference]
    assert obs.metrics.snapshot()["checkpoint.restores"] == 1
    assert 0 < completed < N_PERMUTATIONS
    remaining = N_PERMUTATIONS - completed

    write_result(results_dir, "t14_resume", [
        f"permutations: {N_PERMUTATIONS}  (checkpoint every "
        f"{CHECKPOINT_EVERY})",
        f"surviving snapshot: {completed} permutations completed",
        f"full run:    {full_seconds:.3f}s",
        f"resumed run: {resumed_seconds:.3f}s "
        f"({remaining} permutations live, {completed} replayed)",
        "resumed scores hex-identical to the uninterrupted run",
    ])
    benchmark.extra_info["completed_at_kill"] = completed
    benchmark.extra_info["resume_seconds"] = resumed_seconds

    # The resumed run retrains only the remaining suffix; generous
    # CI-safe bound (exact fraction depends on replay + store I/O).
    assert resumed_seconds < full_seconds, (
        f"resume ({resumed_seconds:.3f}s) not faster than the full run "
        f"({full_seconds:.3f}s) despite skipping {completed} permutations")


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_t14_checkpoint_overhead(benchmark, results_dir, tmp_path):
    """Each durable record must cost a bounded few milliseconds, and
    the presence of a checkpoint must not perturb the scores."""
    perms, every = 60, 10
    n_records = perms // every

    def run(checkpoint=None):
        return MonteCarloShapley(
            n_permutations=perms, seed=9, checkpoint=checkpoint,
            checkpoint_every=every).score(_utility())

    benchmark.pedantic(run, rounds=1, iterations=1)

    plain = _best_of(lambda: run(), 3)
    store_dirs = iter(tmp_path / f"ckpt{i}" for i in range(3))
    checkpointed = _best_of(lambda: run(next(store_dirs)), 3)
    per_record = (checkpointed - plain) / n_records

    reference = run()
    resumable = run(tmp_path / "ckpt-final")
    assert [v.hex() for v in resumable] == [v.hex() for v in reference]

    write_result(results_dir, "t14_checkpoint_overhead", [
        f"sweep (no checkpoint, best of 3):   {plain:.4f}s",
        f"sweep (checkpointed, best of 3):    {checkpointed:.4f}s",
        f"per record: {per_record * 1e3:.2f}ms "
        f"({n_records} atomic records per sweep; fsync-bound)",
        "checkpointed scores hex-identical to the plain sweep",
        "",
        "at real workload sizes (seconds per permutation) the per-record",
        "cost is noise; pick checkpoint_every to taste",
    ])
    benchmark.extra_info["per_record_seconds"] = per_record

    # Generous CI-safe bound; typically a few ms per fsynced record.
    assert per_record < 0.1, (
        f"each checkpoint record cost {per_record * 1e3:.1f}ms")
