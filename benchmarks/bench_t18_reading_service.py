"""Experiment T18 — reading service: prefetch hides storage latency.

The claim behind ``repro.data.ShardReader``: with per-worker shard lanes
and bounded prefetch queues, shard fetches overlap, so a consumer
draining the stream in manifest order finishes in roughly
``latency * n_shards / workers`` instead of the single-threaded
``latency * n_shards`` — while the delivered bytes stay bit-identical
to a sequential pass. Storage latency is simulated (a fixed sleep per
shard load) so the measurement is stable on shared CI runners; the
speedup floor is deliberately conservative next to the ``workers``-fold
ideal. Artifact: ``results/t18_reading_service.txt``.
"""

import time

import numpy as np

from repro.data import ShardReader, write_shards
from repro.observe import Observer

from .conftest import write_result

N_SHARDS = 16
ROWS_PER_SHARD = 256
LATENCY = 0.02       # simulated per-shard storage fetch
WORKERS = 4
SPEEDUP_FLOOR = 2.0  # ideal is WORKERS-fold; stay conservative for CI


def _slow_load(dataset, index):
    time.sleep(LATENCY)
    return dataset.load_shard(index)


def test_t18_prefetch_throughput(benchmark, results_dir, tmp_path):
    rng = np.random.default_rng(18)
    X = rng.normal(size=(N_SHARDS * ROWS_PER_SHARD, 8))
    dataset = write_shards(tmp_path / "bench", {"X": X},
                           rows_per_shard=ROWS_PER_SHARD)

    def sequential_pass():
        return np.concatenate([_slow_load(dataset, index)["X"]
                               for index in range(dataset.n_shards)])

    observer = Observer(run_id="t18")

    def prefetch_pass():
        with ShardReader(dataset, workers=WORKERS, prefetch=2,
                         load_fn=_slow_load, observer=observer) as reader:
            return np.concatenate([batch["X"] for batch in reader])

    started = time.perf_counter()
    reference = sequential_pass()
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    streamed = benchmark.pedantic(prefetch_pass, rounds=1, iterations=1)
    prefetch_seconds = time.perf_counter() - started

    assert streamed.tobytes() == reference.tobytes()
    speedup = sequential_seconds / prefetch_seconds

    benchmark.extra_info["sequential_seconds"] = round(sequential_seconds, 4)
    benchmark.extra_info["prefetch_seconds"] = round(prefetch_seconds, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    write_result(results_dir, "t18_reading_service", [
        f"shards: {N_SHARDS} x {ROWS_PER_SHARD} rows "
        f"(simulated fetch latency {LATENCY * 1000:.0f}ms/shard)",
        f"single-threaded pass: {sequential_seconds:.3f}s",
        f"prefetch pass ({WORKERS} workers, depth 2): "
        f"{prefetch_seconds:.3f}s",
        f"speedup: {speedup:.2f}x  (floor {SPEEDUP_FLOOR:.1f}x, "
        f"ideal {WORKERS:.1f}x)",
        "streams bit-identical: yes",
    ])

    assert speedup >= SPEEDUP_FLOOR, (
        f"prefetch speedup {speedup:.2f}x under the {SPEEDUP_FLOOR}x floor")
