"""Experiment T5 — Section 2.3 claim: reasoning under uncertainty beats
naive imputation in the worst case (Zorro vs baseline; also the
interval-vs-sampling ablation DESIGN.md calls out).

For rising MNAR missingness, train (a) OLS on mean-imputed data and
(b) the robust Zorro model, then evaluate both on their *worst-case*
completion of the training data.

Shape to reproduce: the naive model's worst-case loss blows up with
missingness much faster than the robust model's; the sampled
possible-worlds range is always inside the certified interval range.
"""

import numpy as np

from repro.datasets import make_hiring_tables
from repro.errors import inject_missing
from repro.ml import LinearRegression
from repro.uncertain import ZorroLinearModel, encode_symbolic
from repro.uncertain.zorro import prediction_ranges_over_worlds

from .conftest import write_result

PERCENTAGES = (5, 15, 25)


def worst_case_mse_of(model_coef, model_intercept, table):
    """Exact worst-case MSE of any fixed linear model over the table's
    uncertainty set (per-row adversarial corner)."""
    from repro.uncertain import IntervalArray

    ranges = table.X.dot_vector(np.asarray(model_coef)) + \
        IntervalArray.point(np.full(table.X.shape[0], model_intercept))
    residual_lo = ranges.lo - table.y
    residual_hi = ranges.hi - table.y
    worst = np.maximum(residual_lo**2, residual_hi**2)
    return float(worst.mean())


def run_comparison(seed=9, n=300):
    letters, _, _ = make_hiring_tables(n, seed=seed)
    train = letters.with_column(
        "target", lambda r: 1.0 if r["sentiment"] == "positive" else 0.0)
    table_rows = []
    containment_checks = []
    for percentage in PERCENTAGES:
        dirty, _ = inject_missing(train, column="employer_rating",
                                  fraction=percentage / 100.0,
                                  mechanism="MNAR", seed=seed + 3)
        table = encode_symbolic(
            dirty, feature_columns=["employer_rating", "years_experience"],
            label_column="target")

        naive = LinearRegression()
        naive.fit(table.impute_midpoint(), table.y)
        naive_wc = worst_case_mse_of(naive.coef_, naive.intercept_, table)

        robust = ZorroLinearModel(n_iter=200).fit(table)
        robust_wc = robust.worst_case_mse(table)

        # Interval-vs-sampling ablation: certified range must contain the
        # sampled possible-worlds range for the robust model's inputs.
        certified = robust.predict_range(table.X)
        sampled = prediction_ranges_over_worlds(
            table, table.impute_midpoint(), n_worlds=15, seed=0)
        containment_checks.append(float(np.mean(
            (certified.lo - 0.5 <= sampled.lo) &
            (sampled.hi <= certified.hi + 0.5))))

        table_rows.append((percentage, naive_wc, robust_wc))
    return table_rows, containment_checks


def test_t5_zorro_vs_imputation(benchmark, results_dir):
    table_rows, containment = benchmark.pedantic(run_comparison, rounds=1,
                                                 iterations=1)

    rows = [f"{'missing%':<10}{'naive_worst_mse':>17}"
            f"{'zorro_worst_mse':>17}{'ratio':>8}", "-" * 52]
    for percentage, naive_wc, robust_wc in table_rows:
        rows.append(f"{percentage:<10}{naive_wc:>17.4f}{robust_wc:>17.4f}"
                    f"{naive_wc / robust_wc:>8.2f}")
    rows.append("")
    rows.append("claim: robust training keeps the certified worst case "
                "bounded while naive imputation's worst case grows")
    rows.append(f"sampled-worlds ranges inside certified ranges: "
                f"{np.mean(containment):.0%} of points")
    write_result(results_dir, "t5_zorro_vs_imputation", rows)

    # Robust never worse than naive in the worst case, at every level.
    for _, naive_wc, robust_wc in table_rows:
        assert robust_wc <= naive_wc + 1e-9
