"""Experiment T16 — columnar engine: vectorized kernels vs row-wise loops.

The dataframe layer executes filters, joins, group-bys and fuzzy-key
resolution as numpy kernels (``repro.dataframe.kernels``); the original
row-at-a-time implementations are retained in
``repro.dataframe.reference`` as fallbacks and differential-test oracles.
This bench times both paths on the same inputs and enforces the speedup
floors the rewrite promised; the differential suite
(``tests/dataframe/test_kernels_differential.py``) separately enforces
that the outputs are identical.

Shape to reproduce: kernel time grows roughly linearly while the
interpreted loops pay a large constant per row, so the gap widens with n.
"""

import time

import numpy as np

from repro.core.rng import ensure_rng
from repro.dataframe import DataFrame, col
from repro.dataframe import kernels, reference
from repro.dataframe.frame import _default_normalizer

from .conftest import write_result

N_FILTER = 200_000
N_LEFT, N_RIGHT = 50_000, 5_000
N_GROUP = 100_000
N_FUZZY_LEFT, N_FUZZY_RIGHT = 2_000, 400


def _best(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _filter_case(rng):
    frame = DataFrame({
        "a": rng.integers(0, 100, N_FILTER),
        "b": rng.normal(0, 1, N_FILTER),
    })
    expr = (col("a") > 30) & (col("b") < 0.5)
    fast, fast_out = _best(lambda: frame.filter(expr))
    slow, slow_out = _best(
        lambda: frame.filter(lambda r: r["a"] > 30 and r["b"] < 0.5), repeats=1)
    assert fast_out.row_ids.tolist() == slow_out.row_ids.tolist()
    return "filter (expr vs row UDF)", N_FILTER, fast, slow


def _join_case(rng):
    left = DataFrame({"k": rng.integers(0, N_RIGHT, N_LEFT)})
    right = DataFrame({"k": rng.permutation(N_RIGHT)})
    fast, fast_out = _best(
        lambda: kernels.join_positions(left["k"], right["k"], "inner"))
    slow, slow_out = _best(
        lambda: reference.join_positions_rowwise(left["k"], right["k"], "inner"),
        repeats=1)
    assert fast_out[0].tolist() == slow_out[0].tolist()
    assert fast_out[1].tolist() == slow_out[1].tolist()
    return "join (factorized vs dict probe)", N_LEFT, fast, slow


def _group_case(rng):
    cols = [
        DataFrame({"g": rng.integers(0, 50, N_GROUP)})["g"],
        DataFrame({"h": rng.integers(0, 20, N_GROUP)})["h"],
    ]
    fast, fast_out = _best(lambda: kernels.group_positions(cols))
    slow, slow_out = _best(
        lambda: reference.group_positions_rowwise(cols), repeats=1)
    assert fast_out[0].tolist() == slow_out[0].tolist()
    return "group_by (sort-split vs tuple dict)", N_GROUP, fast, slow


def _fuzzy_case(rng):
    words = ["".join(chr(97 + int(c)) for c in rng.integers(0, 26, size=8))
             for _ in range(N_FUZZY_RIGHT)]
    def typo(word):
        i = int(rng.integers(0, len(word)))
        return word[:i] + "#" + word[i + 1:]
    left = sorted({typo(words[int(rng.integers(0, len(words)))])
                   for _ in range(N_FUZZY_LEFT)})
    right = sorted(set(words))
    fast, fast_out = _best(
        lambda: kernels.resolve_fuzzy_keys(
            left, right, 1, reference.levenshtein_within))
    slow, slow_out = _best(
        lambda: reference.resolve_fuzzy_keys_rowwise(
            left, right, 1, reference.levenshtein_within), repeats=1)
    assert fast_out == slow_out
    return "fuzzy keys (banded vs all pairs)", len(left), fast, slow


def run_suite():
    rng = ensure_rng(7)
    return [_filter_case(rng), _join_case(rng), _group_case(rng),
            _fuzzy_case(rng)]


def test_t16_dataframe_kernels(benchmark, results_dir):
    cases = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    rows = [f"{'kernel':<36}{'rows':>9}{'vectorized':>12}{'row-wise':>12}"
            f"{'speedup':>9}", "-" * 78]
    speedups = {}
    for name, n, fast, slow in cases:
        speedups[name] = slow / fast
        rows.append(f"{name:<36}{n:>9}{fast * 1000:>10.2f}ms"
                    f"{slow * 1000:>10.2f}ms{slow / fast:>8.1f}x")
    rows.append("")
    rows.append("same inputs, outputs asserted identical in-run; the "
                "differential suite covers randomized null-heavy frames")
    write_result(results_dir, "t16_dataframe_kernels", rows)

    benchmark.extra_info.update(
        {name: round(s, 1) for name, s in speedups.items()})
    # Floors are deliberately well under the observed gaps (>=30x locally)
    # so CI noise cannot flake them, while still catching any regression
    # that reverts a kernel to the interpreted path.
    for name, n, fast, slow in cases:
        assert slow / fast >= 10.0, \
            f"{name}: vectorized path only {slow / fast:.1f}x faster"


def _fuzzy_frame_tables(n):
    rng = ensure_rng(11)
    cities = ["berlin", "tokyo", "boston", "madrid", "sydney",
              "lisbon", "warsaw", "denver", "nagoya", "quito"]
    keys = [str(c) for c in rng.choice(cities, size=n)]
    for i in rng.choice(n, size=n // 5, replace=False):
        word = keys[int(i)]
        j = int(rng.integers(1, len(word) - 1))
        keys[int(i)] = word[:j].upper() + "x" + word[j + 1:]
    left = DataFrame({"city": keys, "value": rng.normal(0, 1, n)})
    right = DataFrame({"city": cities, "region": [f"r{i}" for i in range(10)]})
    return left, right


def test_t16_fuzzy_join_scaling(benchmark, results_dir):
    """End-to-end fuzzy join through the DataFrame API at growing n:
    cost should scale ~linearly (normalization is per-distinct-key and
    candidate pruning is banded, so n dominates, not key comparisons)."""
    sizes = (2_000, 8_000)
    timings = {}
    for n in sizes:
        left, right = _fuzzy_frame_tables(n)
        timings[n], joined = _best(
            lambda: left.fuzzy_join(right, on="city", max_edit_distance=1))
        assert len(joined) == n  # every typo'd key recovers
    benchmark.pedantic(
        lambda: _fuzzy_frame_tables(sizes[0])[0].fuzzy_join(
            _fuzzy_frame_tables(sizes[0])[1], on="city", max_edit_distance=1),
        rounds=1, iterations=1)

    ratio = timings[sizes[1]] / timings[sizes[0]]
    rows = [f"{'rows':>8}{'fuzzy_join':>12}", "-" * 20]
    for n in sizes:
        rows.append(f"{n:>8}{timings[n] * 1000:>10.2f}ms")
    rows.append("")
    rows.append(f"4x rows -> {ratio:.1f}x time (sub-quadratic scaling)")
    write_result(results_dir, "t16_fuzzy_join_scaling", rows)
    benchmark.extra_info["scaling_ratio_4x_rows"] = round(ratio, 2)
    assert ratio < 10.0, f"fuzzy join scaling degraded: {ratio:.1f}x"
