"""Experiment T9 — Section 2.2 claim (mlinspect/ArgusEyes, refs [25, 72]):
automated inspections catch pipeline defects that silent execution hides.

Builds four pipelines — one healthy and three with seeded defects (lossy
join from key inconsistencies, aggressive filter, train/validation
leakage) — and checks that the inspection battery flags exactly the
defective ones.

Shape to reproduce: 0 false alarms on the healthy pipeline, each defect
caught by its matching inspection.
"""

import numpy as np

from repro.dataframe import DataFrame
from repro.datasets import make_hiring_tables
from repro.errors import inject_inconsistencies
from repro.ml import ColumnTransformer, StandardScaler
from repro.pipelines import (
    DataLeakageInspection,
    DataPipeline,
    FilterSelectivityInspection,
    JoinCoverageInspection,
    run_inspections,
    source,
)

from .conftest import write_result


def _make_frames(seed=31):
    rng = np.random.default_rng(seed)
    n = 200
    frame = DataFrame({
        "city": [str(c) for c in
                 rng.choice(["berlin", "tokyo", "boston"], size=n)],
        "x": rng.normal(0, 1, n),
        "keep": rng.choice([0, 1], size=n, p=[0.2, 0.8]).tolist(),
        "label": [str(v) for v in rng.choice(["p", "n"], size=n)],
    })
    lookup = DataFrame({"city": ["berlin", "tokyo", "boston"],
                        "region": ["eu", "asia", "us"]})
    valid = DataFrame({
        "city": [str(c) for c in
                 rng.choice(["berlin", "tokyo", "boston"], size=50)],
        "x": rng.normal(0, 1, 50),
        "keep": [1] * 50,
        "label": [str(v) for v in rng.choice(["p", "n"], size=50)],
    })
    return frame, lookup, valid


def _build(aggressive=False):
    encoder = ColumnTransformer([("n", StandardScaler(), ["x"])])
    plan = source("t").join(source("lookup"), on="city")
    if aggressive:
        # Keeps ~1% of rows — a typo'd threshold, the classic silent bug.
        plan = plan.filter(lambda r: r["x"] > 2.3)
    else:
        plan = plan.filter(("keep", 1))
    return DataPipeline(plan.encode(encoder, label="label"))


def run_screens():
    frame, lookup, valid = _make_frames()
    outcomes = {}

    def screen(name, pipe, sources, valid_frame):
        result = pipe.run(sources, provenance=True)
        inspections = run_inspections(pipe, sources, result, [
            JoinCoverageInspection(), FilterSelectivityInspection(),
            DataLeakageInspection(valid_frame, train_source="t")])
        outcomes[name] = {i.name: i.severity for i in inspections}

    # Healthy pipeline.
    screen("healthy", _build(), {"t": frame, "lookup": lookup}, valid)

    # Defect 1: inconsistent join keys -> lossy join.
    dirty_keys, _ = inject_inconsistencies(frame, column="city",
                                           fraction=0.5, seed=1)
    screen("lossy_join", _build(), {"t": dirty_keys, "lookup": lookup},
           valid)

    # Defect 2: filter that keeps almost nothing. The validation frame is
    # shifted so it survives the filter (the leak screen re-runs the plan
    # on it) — the defect only starves the *training* side.
    surviving_valid = valid.with_column("x", lambda r: abs(r["x"]) + 3.0)
    screen("aggressive_filter", _build(aggressive=True),
           {"t": frame, "lookup": lookup}, surviving_valid)

    # Defect 3: validation rows physically shared with training data.
    leaky_valid = frame.take(np.arange(25))
    screen("leakage", _build(), {"t": frame, "lookup": lookup}, leaky_valid)
    return outcomes


def test_t9_inspections(benchmark, results_dir):
    outcomes = benchmark.pedantic(run_screens, rounds=1, iterations=1)

    names = ["join_coverage", "filter_selectivity", "data_leakage"]
    rows = [f"{'pipeline':<20}" + "".join(f"{n:>20}" for n in names),
            "-" * 80]
    for pipeline_name, severities in outcomes.items():
        rows.append(f"{pipeline_name:<20}" +
                    "".join(f"{severities[n]:>20}" for n in names))
    rows.append("")
    rows.append("claim: the healthy pipeline raises no alarms; each seeded "
                "defect is caught by its matching inspection")
    write_result(results_dir, "t9_inspections", rows)

    assert all(sev == "ok" for sev in outcomes["healthy"].values())
    assert outcomes["lossy_join"]["join_coverage"] in ("warning", "error")
    assert outcomes["aggressive_filter"]["filter_selectivity"] == "warning"
    assert outcomes["leakage"]["data_leakage"] == "error"
