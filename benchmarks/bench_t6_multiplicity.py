"""Experiment T6 — Section 2.3 claim (dataset multiplicity, ref [55]):
prediction robustness degrades with the assumed label-error budget.

Sweep the error radius r and measure (a) the exactly-certified fraction
of k-NN predictions robust to any r flips, and (b) the Monte-Carlo
agreement rate of a logistic model across sampled r-flip worlds.

Shape to reproduce: both curves decrease in r; the exact certificate is
(necessarily) more conservative than the sampled agreement.
"""

import numpy as np

from repro.datasets import make_blobs
from repro.ml import LogisticRegression
from repro.uncertain import knn_label_robustness, multiplicity_prediction_range
from repro.uncertain.multiplicity import certified_fraction

from .conftest import write_result

RADII = (0, 1, 2, 4, 8)


def run_sweep(seed=7):
    X, y = make_blobs(150, n_features=3, centers=2, cluster_std=1.4,
                      seed=seed)
    X_train, y_train = X[:110], y[:110]
    X_test = X[110:]

    knn = knn_label_robustness(X_train, y_train, X_test, k=7)
    certified = {r: certified_fraction(knn["radii"], r) for r in RADII}

    sampled = {}
    for r in RADII:
        outcome = multiplicity_prediction_range(
            LogisticRegression(max_iter=60), X_train, y_train, X_test,
            radius=r, n_worlds=10, seed=0)
        sampled[r] = float(outcome["robust_mask"].mean())
    return certified, sampled


def test_t6_multiplicity(benchmark, results_dir):
    certified, sampled = benchmark.pedantic(run_sweep, rounds=1,
                                            iterations=1)

    rows = [f"{'radius':<9}{'knn_certified':>15}{'logreg_sampled':>16}",
            "-" * 40]
    for r in RADII:
        rows.append(f"{r:<9}{certified[r]:>15.2f}{sampled[r]:>16.2f}")
    rows.append("")
    rows.append("claim: robustness decreases with the label-error budget; "
                "exact certification (kNN) is sound, sampling (logreg) is "
                "an optimistic under-approximation")
    write_result(results_dir, "t6_multiplicity", rows)

    benchmark.extra_info.update({f"certified_r{r}": certified[r]
                                 for r in RADII})
    certified_series = [certified[r] for r in RADII]
    sampled_series = [sampled[r] for r in RADII]
    assert all(b <= a + 1e-9 for a, b in zip(certified_series,
                                             certified_series[1:]))
    assert sampled_series[-1] <= sampled_series[0] + 1e-9
    assert certified_series[0] == 1.0  # r=0 certifies everything
