"""Experiment T10 — §2.4 claim: debugging insights enable low-latency
forgetting (refs [17, 75]).

Compares three ways to delete the 10 most harmful training points (found
by KNN-Shapley, the debugging half of the story):

- full retraining from scratch (the baseline unlearning gives up on),
- SISA-style sharded retraining (exact, retrains only touched shards),
- influence-function Newton update (approximate, no retraining).

Shape to reproduce: sharded deletion is several times faster than a full
retrain and exact; the Newton update is near-instant with high fidelity.
"""

import time

import numpy as np

from repro.datasets import make_blobs
from repro.errors import inject_label_errors_array
from repro.importance import knn_shapley
from repro.ml import LogisticRegression
from repro.unlearning import InfluenceUnlearner, ShardedUnlearner

from .conftest import write_result

N_DELETE = 10


def run_unlearning(seed=6, n=3000, n_features=30):
    """Streaming deletion: N_DELETE requests arrive one at a time (the
    GDPR right-to-erasure setting of ref [75]); latency is the total time
    to honour them all, mechanism by mechanism."""
    X, y = make_blobs(n + 200, n_features=n_features, centers=2,
                      cluster_std=2.0, seed=seed)
    X_train, y_clean = X[:n], y[:n]
    X_test, y_test = X[n:], y[n:]
    y_train, _ = inject_label_errors_array(y_clean, fraction=0.1,
                                           seed=seed + 1)

    # Debugging half: find the points to forget.
    values = knn_shapley(X_train, y_train, X_test, y_test, k=5)
    victims = np.argsort(values)[:N_DELETE]

    out = {}

    # Full retraining baseline: retrain after every deletion request.
    started = time.perf_counter()
    alive = np.ones(n, dtype=bool)
    full = None
    for victim in victims:
        alive[victim] = False
        full = LogisticRegression(max_iter=100).fit(X_train[alive],
                                                    y_train[alive])
    out["full_retrain_s"] = time.perf_counter() - started
    out["full_retrain_acc"] = full.score(X_test, y_test)

    # Sharded exact unlearning: each request retrains only its shard.
    sharded = ShardedUnlearner(LogisticRegression(max_iter=100),
                               n_shards=10, seed=0).fit(X_train, y_train)
    started = time.perf_counter()
    for victim in victims:
        sharded.unlearn([victim])
    out["sharded_s"] = time.perf_counter() - started
    out["sharded_acc"] = sharded.score(X_test, y_test)

    # Approximate Newton unlearning: one Hessian solve per request.
    newton = InfluenceUnlearner().fit(X_train, y_train)
    started = time.perf_counter()
    for victim in victims:
        newton.unlearn([victim])
    out["newton_s"] = time.perf_counter() - started
    out["newton_acc"] = newton.score(X_test, y_test)
    out["newton_agreement"] = newton.fidelity(y_train)["prediction_agreement"]
    return out


def test_t10_unlearning(benchmark, results_dir):
    out = benchmark.pedantic(run_unlearning, rounds=1, iterations=1)

    rows = [f"{'mechanism':<18}{'latency_s':>11}{'test_acc':>10}",
            "-" * 39,
            f"{'full_retrain':<18}{out['full_retrain_s']:>11.4f}"
            f"{out['full_retrain_acc']:>10.3f}",
            f"{'sharded_exact':<18}{out['sharded_s']:>11.4f}"
            f"{out['sharded_acc']:>10.3f}",
            f"{'newton_approx':<18}{out['newton_s']:>11.4f}"
            f"{out['newton_acc']:>10.3f}",
            "",
            f"newton prediction agreement with exact retrain: "
            f"{out['newton_agreement']:.0%}",
            "claim (§2.4): debugging finds what to forget; sharding and "
            "influence updates forget it much faster than retraining"]
    write_result(results_dir, "t10_unlearning", rows)

    benchmark.extra_info.update(out)
    # Shape: both unlearning mechanisms beat a full retrain on latency,
    # and the approximation stays faithful.
    assert out["sharded_s"] < out["full_retrain_s"]
    assert out["newton_s"] < out["full_retrain_s"]
    assert out["newton_agreement"] >= 0.95
