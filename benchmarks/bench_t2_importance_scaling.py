"""Experiment T2 — Section 2.1 claim: computational cost of importance.

"The Shapley value involves a sum over exponentially many subsets, making
it intractable" / Monte-Carlo + KNN proxies make it practical. Sweep the
training-set size and time exact KNN-Shapley vs TMC-Shapley vs LOO.

Shape to reproduce: KNN-Shapley's cost is orders of magnitude below the
retraining-based estimators and grows near-linearly in n (it is
O(n log n) per validation point); TMC-Shapley is the most expensive.

A second experiment (``test_t2_runtime_backends``) times the same
retraining hot loop through the ``repro.runtime`` backends: with >= 2
cores the ``process`` backend must beat ``serial`` by >= 1.5x at the
largest size while producing bit-identical scores.

A third experiment (``test_t2_kernel_speedup``) times the incremental
coalition kernels (``repro.importance.kernels``) against the retrain
path for TMC-Shapley across the whole model-zoo registry: masked top-k
(KNN), sufficient statistics (GaussianNB), Sherman–Morrison
(LinearRegression), warm-start continuation (LogisticRegression /
LinearSVC), and the closed-form KNN-Shapley dispatch
(``MonteCarloShapley(exact=True)``). Every grid row must be
bit-identical to the retrain path (or flagged ``exact`` for the closed
form) and clear its per-model speedup floor — 50x for the KNN-Shapley
and linear kernels at n_train = 10000. The retrain baseline for the
exact rows is extrapolated from a measured prefix of the walk
(``retrain_estimated``): per-step retrain cost grows with the prefix
size, so scaling the cheapest steps' average underestimates the true
baseline and the reported speedup is conservative. It refreshes the
machine-readable ``BENCH_importance.json`` at the repo root.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.datasets import make_blobs
from repro.importance import (
    DataBanzhaf,
    MonteCarloShapley,
    Utility,
    knn_shapley,
    leave_one_out,
)
from repro.ml import (
    GaussianNB,
    KNeighborsClassifier,
    LinearRegression,
    LinearSVC,
    LogisticRegression,
)
from repro.runtime import Runtime

from .conftest import write_result

SIZES = (50, 100, 200, 400)
BACKEND_SIZES = (100, 200, 400)
BACKENDS_COMPARED = ("serial", "thread", "process")
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_importance.json"


def thresholded_accuracy(y_true, y_pred):
    """Label-quantized regression metric (agreement of thresholded
    predictions), under which the Sherman–Morrison kernel's certified
    incremental steps are bit-identical to the retrain path."""
    return float(np.mean((np.asarray(y_pred) > 0.5)
                         == (np.asarray(y_true) > 0.5)))


# The model-zoo speedup grid. `floor` is the wall-clock speedup the
# kernel path must clear at the model's largest size; `exact` rows use
# the closed-form Shapley dispatch with an extrapolated retrain
# baseline. The linear/warm games are deliberately hard optimization
# instances (many features / weak regularization) so the retrain
# baseline pays full per-coalition solve costs.
KERNEL_GRID = (
    {"model": "knn", "sizes": (500, 2000), "n_permutations": 2,
     "floor": 5.0},
    {"model": "gaussian_nb", "sizes": (500, 2000), "n_permutations": 2,
     "floor": 3.0},
    {"model": "linear", "sizes": (2000, 10000), "n_permutations": 1,
     "floor": 50.0},
    {"model": "logistic_warm", "sizes": (2000,), "n_permutations": 1,
     "floor": 10.0},
    {"model": "linear_svc_warm", "sizes": (2000,), "n_permutations": 1,
     "floor": 5.0},
    {"model": "knn_shapley", "sizes": (2000, 10000), "exact": True,
     "floor": 50.0},
)
# Steps of the retrain walk actually measured for the `exact` rows'
# extrapolated baseline.
EXACT_BASELINE_STEPS = 200


def _kernel_game(model_name: str, n: int, seed=0):
    """(X_train, y_train, X_valid, y_valid, metric, model) per grid row."""
    if model_name == "linear":
        X, y = make_blobs(n + 40, n_features=64, centers=2, seed=seed)
        return (X[:n], y[:n].astype(float), X[n:], y[n:].astype(float),
                thresholded_accuracy, LinearRegression(alpha=1e-3))
    if model_name in ("logistic_warm", "linear_svc_warm"):
        # Separable blobs: the cold solver still pays full iteration
        # counts per prefix, while rows added inside the carried
        # solution's margin leave its certificate intact for long
        # certified stretches.
        X, y = make_blobs(n + 20, n_features=5, centers=2, seed=seed)
        model = (LogisticRegression(C=5.0, max_iter=500)
                 if model_name == "logistic_warm"
                 else LinearSVC(C=50.0, max_iter=500))
        return X[:n], y[:n], X[n:], y[n:], None, model
    X, y = make_blobs(n + 40, n_features=4, centers=2, seed=seed)
    model = (KNeighborsClassifier(5) if model_name in ("knn", "knn_shapley")
             else GaussianNB())
    return X[:n], y[:n], X[n:], y[n:], None, model


def _kernel_utility(model_name: str, n: int, *, kernel, seed=0):
    X_train, y_train, X_valid, y_valid, metric, model = _kernel_game(
        model_name, n, seed)
    kwargs = {"cache": False, "kernel": kernel}
    if metric is not None:
        kwargs["metric"] = metric
    return Utility(model, X_train, y_train, X_valid, y_valid, **kwargs)


def time_methods(n: int, seed=0):
    X, y = make_blobs(n + 40, n_features=4, centers=2, seed=seed)
    X_train, y_train = X[:n], y[:n]
    X_valid, y_valid = X[n:], y[n:]

    timings = {}
    started = time.perf_counter()
    knn_shapley(X_train, y_train, X_valid, y_valid, k=5)
    timings["knn_shapley"] = time.perf_counter() - started

    started = time.perf_counter()
    leave_one_out(Utility(KNeighborsClassifier(5), X_train, y_train,
                          X_valid, y_valid))
    timings["leave_one_out"] = time.perf_counter() - started

    started = time.perf_counter()
    # Full permutation walks (no truncation) for an honest per-permutation
    # cost; truncation's speedup is part of experiment T1's story instead.
    MonteCarloShapley(n_permutations=2, truncation_tol=0.0, seed=0).score(
        Utility(KNeighborsClassifier(5), X_train, y_train, X_valid, y_valid))
    timings["tmc_shapley_2perm"] = time.perf_counter() - started
    return timings


def test_t2_importance_scaling(benchmark, results_dir):
    benchmark.pedantic(time_methods, args=(100,), rounds=1, iterations=1)

    table = {n: time_methods(n) for n in SIZES}
    rows = [f"{'n':<7}{'knn_shapley':>13}{'leave_one_out':>15}"
            f"{'tmc_2perm':>12}", "-" * 47]
    for n in SIZES:
        t = table[n]
        rows.append(f"{n:<7}{t['knn_shapley']:>13.4f}"
                    f"{t['leave_one_out']:>15.4f}"
                    f"{t['tmc_shapley_2perm']:>12.4f}")
    rows.append("")
    rows.append("survey claim: exact KNN-Shapley is orders of magnitude "
                "cheaper than retraining-based estimators")
    largest = table[SIZES[-1]]
    rows.append(f"at n={SIZES[-1]}: knn is "
                f"{largest['leave_one_out'] / largest['knn_shapley']:.0f}x "
                f"faster than LOO and "
                f"{largest['tmc_shapley_2perm'] / largest['knn_shapley']:.0f}x "
                f"faster than TMC(2)")
    write_result(results_dir, "t2_importance_scaling", rows)

    # Who-wins shape: at the largest size, exact KNN-Shapley is at least
    # 10x cheaper than either retraining-based method.
    assert largest["knn_shapley"] * 10 < largest["leave_one_out"]
    assert largest["knn_shapley"] * 10 < largest["tmc_shapley_2perm"]


def time_backend(backend: str, n: int, *, n_samples: int = 30, seed=0):
    """Time Banzhaf MSR — the pure retraining hot loop — on one backend.

    Caching is disabled so every sampled coalition costs one training and
    the comparison isolates executor overhead/speedup.
    """
    X, y = make_blobs(n + 40, n_features=4, centers=2, seed=seed)
    with Runtime(backend=backend, chunk_size=max(1, n_samples // 16)) as rt:
        utility = Utility(KNeighborsClassifier(5), X[:n], y[:n],
                          X[n:], y[n:], cache=False, runtime=rt)
        started = time.perf_counter()
        scores = DataBanzhaf(n_samples=n_samples, seed=0).score(utility)
        elapsed = time.perf_counter() - started
    return elapsed, scores


def run_backend_comparison():
    table = {}
    scores = {}
    for n in BACKEND_SIZES:
        table[n] = {}
        for backend in BACKENDS_COMPARED:
            table[n][backend], scores[(n, backend)] = time_backend(backend, n)
    return table, scores


def test_t2_runtime_backends(benchmark, results_dir):
    """Serial vs thread vs process for the retraining loop (30-second
    smoke test; also run standalone in CI)."""
    benchmark.pedantic(time_backend, args=("process", BACKEND_SIZES[0]),
                       rounds=1, iterations=1)
    table, scores = run_backend_comparison()

    cores = os.cpu_count() or 1
    largest = BACKEND_SIZES[-1]
    speedup = table[largest]["serial"] / table[largest]["process"]
    rows = [f"banzhaf MSR (30 samples), {cores} cores",
            f"{'n':<7}" + "".join(f"{b:>10}" for b in BACKENDS_COMPARED)
            + f"{'speedup':>10}", "-" * 57]
    for n in BACKEND_SIZES:
        rows.append(f"{n:<7}"
                    + "".join(f"{table[n][b]:>10.3f}"
                              for b in BACKENDS_COMPARED)
                    + f"{table[n]['serial'] / table[n]['process']:>10.2f}")
    rows.append("")
    rows.append(f"process-vs-serial speedup at n={largest}: {speedup:.2f}x")
    write_result(results_dir, "t2_runtime_backends", rows)
    benchmark.extra_info["speedup_at_largest"] = speedup

    # All backends must agree bit-for-bit on the scores.
    for n in BACKEND_SIZES:
        for backend in BACKENDS_COMPARED[1:]:
            np.testing.assert_array_equal(scores[(n, "serial")],
                                          scores[(n, backend)])
    # Speedup is only claimable with real parallel hardware.
    if cores >= 2:
        assert speedup >= 1.5, (
            f"process backend speedup {speedup:.2f}x < 1.5x "
            f"at n={largest} on {cores} cores")


def time_kernel_vs_retrain(model_name: str, n: int, n_permutations: int,
                           seed=0):
    """TMC-Shapley wall time with and without the incremental kernel.

    Full permutation walks (no truncation), no caching: every prefix is
    paid for, so the comparison isolates evaluation cost — retrain
    clone+fit+predict vs the kernel's O(update) step.
    """
    def run(kernel):
        utility = _kernel_utility(model_name, n, kernel=kernel, seed=seed)
        started = time.perf_counter()
        scores = MonteCarloShapley(n_permutations=n_permutations,
                                   truncation_tol=0.0, seed=0).score(utility)
        return time.perf_counter() - started, scores

    retrain_seconds, retrain_scores = run("off")
    kernel_seconds, kernel_scores = run("auto")
    return {
        "model": model_name,
        "n_train": n,
        "n_permutations": n_permutations,
        "retrain_seconds": retrain_seconds,
        "retrain_estimated": False,
        "kernel_seconds": kernel_seconds,
        "speedup": retrain_seconds / kernel_seconds,
        "bit_identical": bool(np.array_equal(retrain_scores, kernel_scores)),
        "exact": False,
        "scores": retrain_scores,
    }


def time_exact_vs_retrain(model_name: str, n: int, seed=0):
    """Closed-form KNN-Shapley dispatch vs an extrapolated retrain walk.

    The kernel side times the whole exact path — utility construction
    (the validation-to-training distance matrix) plus
    ``MonteCarloShapley(exact=True)``. A full retrain permutation at
    n = 10000 is hours of wall clock, so the baseline walks the first
    ``EXACT_BASELINE_STEPS`` prefixes of one permutation on the retrain
    path and scales their mean cost to all n steps. Per-step retrain cost
    grows with prefix size, so the cheapest-steps average underestimates
    the true baseline: the reported speedup is a lower bound — and the
    true gap is larger again because one permutation is the minimal
    retrain unit while a converged TMC run needs hundreds.
    """
    started = time.perf_counter()
    utility = _kernel_utility(model_name, n, kernel="auto", seed=seed)
    exact_scores = MonteCarloShapley(n_permutations=1, truncation_tol=0.0,
                                     seed=0, exact=True).score(utility)
    kernel_seconds = time.perf_counter() - started

    # Cross-check the dispatched values against the standalone closed
    # form (shifted so the walk prices u(empty) at the majority baseline).
    X_train, y_train, X_valid, y_valid, _, model = _kernel_game(
        model_name, n, seed)
    direct = knn_shapley(X_train, y_train, X_valid, y_valid,
                         k=model.n_neighbors)
    expected = direct - utility.null_value() / n
    exact = bool(np.array_equal(exact_scores, expected))

    off = _kernel_utility(model_name, n, kernel="off", seed=seed)
    permutation = np.random.default_rng(seed).permutation(n)
    steps = min(EXACT_BASELINE_STEPS, n)
    started = time.perf_counter()
    off.walk_permutations([permutation[:steps]])
    sampled = time.perf_counter() - started
    retrain_seconds = sampled * (n / steps)
    return {
        "model": model_name,
        "n_train": n,
        "n_permutations": 1,
        "retrain_seconds": retrain_seconds,
        "retrain_estimated": True,
        "kernel_seconds": kernel_seconds,
        "speedup": retrain_seconds / kernel_seconds,
        "bit_identical": exact,
        "exact": exact,
        "scores": exact_scores,
    }


def _kernel_backend_scores(model_name: str, n: int, n_permutations: int,
                           seed=0):
    """Kernel-path TMC scores per backend (must all match serial retrain)."""
    X_train, y_train, X_valid, y_valid, metric, _ = _kernel_game(
        model_name, n, seed)
    outputs = {}
    for backend in BACKENDS_COMPARED:
        with Runtime(backend=backend, max_workers=2) as rt:
            model = _kernel_game(model_name, n, seed)[5]
            kwargs = {"cache": False, "runtime": rt}
            if metric is not None:
                kwargs["metric"] = metric
            utility = Utility(model, X_train, y_train, X_valid, y_valid,
                              **kwargs)
            outputs[backend] = MonteCarloShapley(
                n_permutations=n_permutations, truncation_tol=0.0,
                seed=0).score(utility)
    return outputs


# Models whose kernel path is re-run on every runtime backend during the
# smoke gate (the warm/linear kernels' backend invariance is covered by
# tests/importance/test_model_zoo_kernels.py on smaller games).
BACKEND_CHECKED = ("knn", "gaussian_nb")


def test_t2_kernel_speedup(benchmark, results_dir):
    """Model-zoo incremental kernels vs retrain path — the headline grid.

    Also the CI benchmark-smoke gate: fails whenever any kernel misses
    its speedup floor at its largest size, any grid row is neither
    bit-identical nor exact, or scores diverge by a single bit on any
    backend.
    """
    first = KERNEL_GRID[0]
    benchmark.pedantic(
        time_kernel_vs_retrain,
        args=(first["model"], first["sizes"][0], first["n_permutations"]),
        rounds=1, iterations=1)

    grid = []
    for spec in KERNEL_GRID:
        for n in spec["sizes"]:
            if spec.get("exact"):
                grid.append(time_exact_vs_retrain(spec["model"], n))
            else:
                grid.append(time_kernel_vs_retrain(
                    spec["model"], n, spec["n_permutations"]))

    rows = [f"TMC-Shapley (no truncation), {os.cpu_count() or 1} cores",
            f"{'model':<16}{'n':>7}{'perms':>6}{'retrain':>10}{'kernel':>10}"
            f"{'speedup':>10}{'identical':>11}{'exact':>7}", "-" * 77]
    for entry in grid:
        retrain = f"{entry['retrain_seconds']:.3f}"
        if entry["retrain_estimated"]:
            retrain = f"~{retrain}"
        rows.append(f"{entry['model']:<16}{entry['n_train']:>7}"
                    f"{entry['n_permutations']:>6}{retrain:>10}"
                    f"{entry['kernel_seconds']:>10.3f}"
                    f"{entry['speedup']:>9.1f}x"
                    f"{str(entry['bit_identical']):>11}"
                    f"{str(entry['exact']):>7}")
    rows.append("")
    largest = {}
    floors = {}
    for spec in KERNEL_GRID:
        name, top = spec["model"], spec["sizes"][-1]
        floors[name] = spec["floor"]
        largest[name] = next(e for e in grid if e["model"] == name
                             and e["n_train"] == top)
        rows.append(f"{name} at n={top}: {largest[name]['speedup']:.1f}x "
                    f"(floor {spec['floor']:.0f}x)")
    write_result(results_dir, "t2_kernel_speedup", rows)

    # Machine-readable perf trajectory at the repo root.
    BENCH_JSON.write_text(json.dumps({
        "experiment": "tmc_shapley_kernel_vs_retrain",
        "estimator": {"method": "shapley_mc", "truncation_tol": 0.0,
                      "seed": 0},
        "cpu_count": os.cpu_count() or 1,
        "thresholds": floors,
        "grid": [{k: v for k, v in entry.items() if k != "scores"}
                 for entry in grid],
    }, indent=2) + "\n", encoding="utf-8")

    for entry in grid:
        assert entry["bit_identical"] or entry["exact"], (
            f"kernel scores diverged from retrain for {entry['model']} "
            f"at n={entry['n_train']}")
        assert entry["speedup"] > 1.0, (
            f"kernel path slower than retrain for {entry['model']} "
            f"at n={entry['n_train']}: {entry['speedup']:.2f}x")
    for name, floor in floors.items():
        assert largest[name]["speedup"] >= floor, (
            f"{name} kernel speedup {largest[name]['speedup']:.2f}x "
            f"< {floor:.0f}x at n={largest[name]['n_train']}")

    # Bit-identical across every backend, kernel vs serial retrain.
    for spec in KERNEL_GRID:
        name = spec["model"]
        benchmark.extra_info[f"speedup_{name}"] = largest[name]["speedup"]
        if name not in BACKEND_CHECKED:
            continue
        n = spec["sizes"][0]
        baseline = next(e for e in grid if e["model"] == name
                        and e["n_train"] == n)
        per_backend = _kernel_backend_scores(name, n,
                                             spec["n_permutations"])
        for backend, scores in per_backend.items():
            np.testing.assert_array_equal(
                baseline["scores"], scores,
                err_msg=f"{name} kernel on {backend} diverged from "
                        f"serial retrain")
