"""Experiment T2 — Section 2.1 claim: computational cost of importance.

"The Shapley value involves a sum over exponentially many subsets, making
it intractable" / Monte-Carlo + KNN proxies make it practical. Sweep the
training-set size and time exact KNN-Shapley vs TMC-Shapley vs LOO.

Shape to reproduce: KNN-Shapley's cost is orders of magnitude below the
retraining-based estimators and grows near-linearly in n (it is
O(n log n) per validation point); TMC-Shapley is the most expensive.

A second experiment (``test_t2_runtime_backends``) times the same
retraining hot loop through the ``repro.runtime`` backends: with >= 2
cores the ``process`` backend must beat ``serial`` by >= 1.5x at the
largest size while producing bit-identical scores.
"""

import os
import time

import numpy as np

from repro.datasets import make_blobs
from repro.importance import (
    DataBanzhaf,
    MonteCarloShapley,
    Utility,
    knn_shapley,
    leave_one_out,
)
from repro.ml import KNeighborsClassifier
from repro.runtime import Runtime

from .conftest import write_result

SIZES = (50, 100, 200, 400)
BACKEND_SIZES = (100, 200, 400)
BACKENDS_COMPARED = ("serial", "thread", "process")


def time_methods(n: int, seed=0):
    X, y = make_blobs(n + 40, n_features=4, centers=2, seed=seed)
    X_train, y_train = X[:n], y[:n]
    X_valid, y_valid = X[n:], y[n:]

    timings = {}
    started = time.perf_counter()
    knn_shapley(X_train, y_train, X_valid, y_valid, k=5)
    timings["knn_shapley"] = time.perf_counter() - started

    started = time.perf_counter()
    leave_one_out(Utility(KNeighborsClassifier(5), X_train, y_train,
                          X_valid, y_valid))
    timings["leave_one_out"] = time.perf_counter() - started

    started = time.perf_counter()
    # Full permutation walks (no truncation) for an honest per-permutation
    # cost; truncation's speedup is part of experiment T1's story instead.
    MonteCarloShapley(n_permutations=2, truncation_tol=0.0, seed=0).score(
        Utility(KNeighborsClassifier(5), X_train, y_train, X_valid, y_valid))
    timings["tmc_shapley_2perm"] = time.perf_counter() - started
    return timings


def test_t2_importance_scaling(benchmark, results_dir):
    benchmark.pedantic(time_methods, args=(100,), rounds=1, iterations=1)

    table = {n: time_methods(n) for n in SIZES}
    rows = [f"{'n':<7}{'knn_shapley':>13}{'leave_one_out':>15}"
            f"{'tmc_2perm':>12}", "-" * 47]
    for n in SIZES:
        t = table[n]
        rows.append(f"{n:<7}{t['knn_shapley']:>13.4f}"
                    f"{t['leave_one_out']:>15.4f}"
                    f"{t['tmc_shapley_2perm']:>12.4f}")
    rows.append("")
    rows.append("survey claim: exact KNN-Shapley is orders of magnitude "
                "cheaper than retraining-based estimators")
    largest = table[SIZES[-1]]
    rows.append(f"at n={SIZES[-1]}: knn is "
                f"{largest['leave_one_out'] / largest['knn_shapley']:.0f}x "
                f"faster than LOO and "
                f"{largest['tmc_shapley_2perm'] / largest['knn_shapley']:.0f}x "
                f"faster than TMC(2)")
    write_result(results_dir, "t2_importance_scaling", rows)

    # Who-wins shape: at the largest size, exact KNN-Shapley is at least
    # 10x cheaper than either retraining-based method.
    assert largest["knn_shapley"] * 10 < largest["leave_one_out"]
    assert largest["knn_shapley"] * 10 < largest["tmc_shapley_2perm"]


def time_backend(backend: str, n: int, *, n_samples: int = 30, seed=0):
    """Time Banzhaf MSR — the pure retraining hot loop — on one backend.

    Caching is disabled so every sampled coalition costs one training and
    the comparison isolates executor overhead/speedup.
    """
    X, y = make_blobs(n + 40, n_features=4, centers=2, seed=seed)
    with Runtime(backend=backend, chunk_size=max(1, n_samples // 16)) as rt:
        utility = Utility(KNeighborsClassifier(5), X[:n], y[:n],
                          X[n:], y[n:], cache=False, runtime=rt)
        started = time.perf_counter()
        scores = DataBanzhaf(n_samples=n_samples, seed=0).score(utility)
        elapsed = time.perf_counter() - started
    return elapsed, scores


def run_backend_comparison():
    table = {}
    scores = {}
    for n in BACKEND_SIZES:
        table[n] = {}
        for backend in BACKENDS_COMPARED:
            table[n][backend], scores[(n, backend)] = time_backend(backend, n)
    return table, scores


def test_t2_runtime_backends(benchmark, results_dir):
    """Serial vs thread vs process for the retraining loop (30-second
    smoke test; also run standalone in CI)."""
    benchmark.pedantic(time_backend, args=("process", BACKEND_SIZES[0]),
                       rounds=1, iterations=1)
    table, scores = run_backend_comparison()

    cores = os.cpu_count() or 1
    largest = BACKEND_SIZES[-1]
    speedup = table[largest]["serial"] / table[largest]["process"]
    rows = [f"banzhaf MSR (30 samples), {cores} cores",
            f"{'n':<7}" + "".join(f"{b:>10}" for b in BACKENDS_COMPARED)
            + f"{'speedup':>10}", "-" * 57]
    for n in BACKEND_SIZES:
        rows.append(f"{n:<7}"
                    + "".join(f"{table[n][b]:>10.3f}"
                              for b in BACKENDS_COMPARED)
                    + f"{table[n]['serial'] / table[n]['process']:>10.2f}")
    rows.append("")
    rows.append(f"process-vs-serial speedup at n={largest}: {speedup:.2f}x")
    write_result(results_dir, "t2_runtime_backends", rows)
    benchmark.extra_info["speedup_at_largest"] = speedup

    # All backends must agree bit-for-bit on the scores.
    for n in BACKEND_SIZES:
        for backend in BACKENDS_COMPARED[1:]:
            np.testing.assert_array_equal(scores[(n, "serial")],
                                          scores[(n, backend)])
    # Speedup is only claimable with real parallel hardware.
    if cores >= 2:
        assert speedup >= 1.5, (
            f"process backend speedup {speedup:.2f}x < 1.5x "
            f"at n={largest} on {cores} cores")
