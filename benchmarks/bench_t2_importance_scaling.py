"""Experiment T2 — Section 2.1 claim: computational cost of importance.

"The Shapley value involves a sum over exponentially many subsets, making
it intractable" / Monte-Carlo + KNN proxies make it practical. Sweep the
training-set size and time exact KNN-Shapley vs TMC-Shapley vs LOO.

Shape to reproduce: KNN-Shapley's cost is orders of magnitude below the
retraining-based estimators and grows near-linearly in n (it is
O(n log n) per validation point); TMC-Shapley is the most expensive.

A second experiment (``test_t2_runtime_backends``) times the same
retraining hot loop through the ``repro.runtime`` backends: with >= 2
cores the ``process`` backend must beat ``serial`` by >= 1.5x at the
largest size while producing bit-identical scores.

A third experiment (``test_t2_kernel_speedup``) times the incremental
coalition kernels (``repro.importance.kernels``) against the retrain
path for TMC-Shapley: the kernel must be >= 5x faster for a KNN utility
and >= 3x for GaussianNB at n_train >= 500, with bit-identical score
arrays on every backend. It refreshes the machine-readable
``BENCH_importance.json`` at the repo root.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.datasets import make_blobs
from repro.importance import (
    DataBanzhaf,
    MonteCarloShapley,
    Utility,
    knn_shapley,
    leave_one_out,
)
from repro.ml import GaussianNB, KNeighborsClassifier
from repro.runtime import Runtime

from .conftest import write_result

SIZES = (50, 100, 200, 400)
BACKEND_SIZES = (100, 200, 400)
BACKENDS_COMPARED = ("serial", "thread", "process")
KERNEL_SIZES = (200, 500)
KERNEL_MODELS = {
    "knn": lambda: KNeighborsClassifier(5),
    "gaussian_nb": lambda: GaussianNB(),
}
# Wall-clock floors the kernel path must clear at the largest size.
KERNEL_THRESHOLDS = {"knn": 5.0, "gaussian_nb": 3.0}
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_importance.json"


def time_methods(n: int, seed=0):
    X, y = make_blobs(n + 40, n_features=4, centers=2, seed=seed)
    X_train, y_train = X[:n], y[:n]
    X_valid, y_valid = X[n:], y[n:]

    timings = {}
    started = time.perf_counter()
    knn_shapley(X_train, y_train, X_valid, y_valid, k=5)
    timings["knn_shapley"] = time.perf_counter() - started

    started = time.perf_counter()
    leave_one_out(Utility(KNeighborsClassifier(5), X_train, y_train,
                          X_valid, y_valid))
    timings["leave_one_out"] = time.perf_counter() - started

    started = time.perf_counter()
    # Full permutation walks (no truncation) for an honest per-permutation
    # cost; truncation's speedup is part of experiment T1's story instead.
    MonteCarloShapley(n_permutations=2, truncation_tol=0.0, seed=0).score(
        Utility(KNeighborsClassifier(5), X_train, y_train, X_valid, y_valid))
    timings["tmc_shapley_2perm"] = time.perf_counter() - started
    return timings


def test_t2_importance_scaling(benchmark, results_dir):
    benchmark.pedantic(time_methods, args=(100,), rounds=1, iterations=1)

    table = {n: time_methods(n) for n in SIZES}
    rows = [f"{'n':<7}{'knn_shapley':>13}{'leave_one_out':>15}"
            f"{'tmc_2perm':>12}", "-" * 47]
    for n in SIZES:
        t = table[n]
        rows.append(f"{n:<7}{t['knn_shapley']:>13.4f}"
                    f"{t['leave_one_out']:>15.4f}"
                    f"{t['tmc_shapley_2perm']:>12.4f}")
    rows.append("")
    rows.append("survey claim: exact KNN-Shapley is orders of magnitude "
                "cheaper than retraining-based estimators")
    largest = table[SIZES[-1]]
    rows.append(f"at n={SIZES[-1]}: knn is "
                f"{largest['leave_one_out'] / largest['knn_shapley']:.0f}x "
                f"faster than LOO and "
                f"{largest['tmc_shapley_2perm'] / largest['knn_shapley']:.0f}x "
                f"faster than TMC(2)")
    write_result(results_dir, "t2_importance_scaling", rows)

    # Who-wins shape: at the largest size, exact KNN-Shapley is at least
    # 10x cheaper than either retraining-based method.
    assert largest["knn_shapley"] * 10 < largest["leave_one_out"]
    assert largest["knn_shapley"] * 10 < largest["tmc_shapley_2perm"]


def time_backend(backend: str, n: int, *, n_samples: int = 30, seed=0):
    """Time Banzhaf MSR — the pure retraining hot loop — on one backend.

    Caching is disabled so every sampled coalition costs one training and
    the comparison isolates executor overhead/speedup.
    """
    X, y = make_blobs(n + 40, n_features=4, centers=2, seed=seed)
    with Runtime(backend=backend, chunk_size=max(1, n_samples // 16)) as rt:
        utility = Utility(KNeighborsClassifier(5), X[:n], y[:n],
                          X[n:], y[n:], cache=False, runtime=rt)
        started = time.perf_counter()
        scores = DataBanzhaf(n_samples=n_samples, seed=0).score(utility)
        elapsed = time.perf_counter() - started
    return elapsed, scores


def run_backend_comparison():
    table = {}
    scores = {}
    for n in BACKEND_SIZES:
        table[n] = {}
        for backend in BACKENDS_COMPARED:
            table[n][backend], scores[(n, backend)] = time_backend(backend, n)
    return table, scores


def test_t2_runtime_backends(benchmark, results_dir):
    """Serial vs thread vs process for the retraining loop (30-second
    smoke test; also run standalone in CI)."""
    benchmark.pedantic(time_backend, args=("process", BACKEND_SIZES[0]),
                       rounds=1, iterations=1)
    table, scores = run_backend_comparison()

    cores = os.cpu_count() or 1
    largest = BACKEND_SIZES[-1]
    speedup = table[largest]["serial"] / table[largest]["process"]
    rows = [f"banzhaf MSR (30 samples), {cores} cores",
            f"{'n':<7}" + "".join(f"{b:>10}" for b in BACKENDS_COMPARED)
            + f"{'speedup':>10}", "-" * 57]
    for n in BACKEND_SIZES:
        rows.append(f"{n:<7}"
                    + "".join(f"{table[n][b]:>10.3f}"
                              for b in BACKENDS_COMPARED)
                    + f"{table[n]['serial'] / table[n]['process']:>10.2f}")
    rows.append("")
    rows.append(f"process-vs-serial speedup at n={largest}: {speedup:.2f}x")
    write_result(results_dir, "t2_runtime_backends", rows)
    benchmark.extra_info["speedup_at_largest"] = speedup

    # All backends must agree bit-for-bit on the scores.
    for n in BACKEND_SIZES:
        for backend in BACKENDS_COMPARED[1:]:
            np.testing.assert_array_equal(scores[(n, "serial")],
                                          scores[(n, backend)])
    # Speedup is only claimable with real parallel hardware.
    if cores >= 2:
        assert speedup >= 1.5, (
            f"process backend speedup {speedup:.2f}x < 1.5x "
            f"at n={largest} on {cores} cores")


def time_kernel_vs_retrain(model_name: str, n: int, seed=0):
    """TMC-Shapley wall time with and without the incremental kernel.

    Full permutation walks (no truncation), no caching: every prefix is
    paid for, so the comparison isolates evaluation cost — retrain
    clone+fit+predict vs the kernel's O(update) step.
    """
    X, y = make_blobs(n + 40, n_features=4, centers=2, seed=seed)
    X_train, y_train, X_valid, y_valid = X[:n], y[:n], X[n:], y[n:]

    def run(kernel):
        utility = Utility(KERNEL_MODELS[model_name](), X_train, y_train,
                          X_valid, y_valid, cache=False, kernel=kernel)
        started = time.perf_counter()
        scores = MonteCarloShapley(n_permutations=2, truncation_tol=0.0,
                                   seed=0).score(utility)
        return time.perf_counter() - started, scores

    retrain_seconds, retrain_scores = run("off")
    kernel_seconds, kernel_scores = run("auto")
    return {
        "model": model_name,
        "n_train": n,
        "retrain_seconds": retrain_seconds,
        "kernel_seconds": kernel_seconds,
        "speedup": retrain_seconds / kernel_seconds,
        "bit_identical": bool(np.array_equal(retrain_scores, kernel_scores)),
        "scores": retrain_scores,
    }


def _kernel_backend_scores(model_name: str, n: int, seed=0):
    """Kernel-path TMC scores per backend (must all match serial retrain)."""
    X, y = make_blobs(n + 40, n_features=4, centers=2, seed=seed)
    outputs = {}
    for backend in BACKENDS_COMPARED:
        with Runtime(backend=backend, max_workers=2) as rt:
            utility = Utility(KERNEL_MODELS[model_name](), X[:n], y[:n],
                              X[n:], y[n:], cache=False, runtime=rt)
            outputs[backend] = MonteCarloShapley(
                n_permutations=2, truncation_tol=0.0, seed=0).score(utility)
    return outputs


def test_t2_kernel_speedup(benchmark, results_dir):
    """Incremental kernels vs retrain path — the PR's headline numbers.

    Also the CI benchmark-smoke gate: fails whenever the kernel path is
    slower than retraining on the KNN utility, or scores diverge by a
    single bit on any backend.
    """
    benchmark.pedantic(time_kernel_vs_retrain, args=("knn", KERNEL_SIZES[0]),
                       rounds=1, iterations=1)

    grid = [time_kernel_vs_retrain(name, n)
            for name in KERNEL_MODELS for n in KERNEL_SIZES]
    rows = [f"TMC-Shapley (2 permutations, no truncation), "
            f"{os.cpu_count() or 1} cores",
            f"{'model':<14}{'n':>6}{'retrain':>10}{'kernel':>10}"
            f"{'speedup':>10}{'identical':>11}", "-" * 61]
    for entry in grid:
        rows.append(f"{entry['model']:<14}{entry['n_train']:>6}"
                    f"{entry['retrain_seconds']:>10.3f}"
                    f"{entry['kernel_seconds']:>10.3f}"
                    f"{entry['speedup']:>9.1f}x"
                    f"{str(entry['bit_identical']):>11}")
    rows.append("")
    largest = {name: next(e for e in grid if e["model"] == name
                          and e["n_train"] == KERNEL_SIZES[-1])
               for name in KERNEL_MODELS}
    for name, threshold in KERNEL_THRESHOLDS.items():
        rows.append(f"{name} at n={KERNEL_SIZES[-1]}: "
                    f"{largest[name]['speedup']:.1f}x "
                    f"(threshold {threshold:.0f}x)")
    write_result(results_dir, "t2_kernel_speedup", rows)

    # Machine-readable perf trajectory at the repo root.
    BENCH_JSON.write_text(json.dumps({
        "experiment": "tmc_shapley_kernel_vs_retrain",
        "estimator": {"method": "shapley_mc", "n_permutations": 2,
                      "truncation_tol": 0.0, "seed": 0},
        "cpu_count": os.cpu_count() or 1,
        "thresholds": KERNEL_THRESHOLDS,
        "grid": [{k: v for k, v in entry.items() if k != "scores"}
                 for entry in grid],
    }, indent=2) + "\n", encoding="utf-8")

    for entry in grid:
        assert entry["bit_identical"], (
            f"kernel scores diverged from retrain for {entry['model']} "
            f"at n={entry['n_train']}")
        assert entry["speedup"] > 1.0, (
            f"kernel path slower than retrain for {entry['model']} "
            f"at n={entry['n_train']}: {entry['speedup']:.2f}x")
    for name, threshold in KERNEL_THRESHOLDS.items():
        assert largest[name]["speedup"] >= threshold, (
            f"{name} kernel speedup {largest[name]['speedup']:.2f}x "
            f"< {threshold:.0f}x at n={KERNEL_SIZES[-1]}")

    # Bit-identical across every backend, kernel vs serial retrain.
    for name in KERNEL_MODELS:
        per_backend = _kernel_backend_scores(name, KERNEL_SIZES[-1])
        for backend, scores in per_backend.items():
            np.testing.assert_array_equal(
                largest[name]["scores"], scores,
                err_msg=f"{name} kernel on {backend} diverged from "
                        f"serial retrain")
        benchmark.extra_info[f"speedup_{name}"] = largest[name]["speedup"]
