"""Experiment T11 — §2.3 claim (consistent range approximation, ref [94]):
certify fairness despite biases in training data.

Sweep the admitted selection-bias budget (unobserved rows of the
disadvantaged group) and report the certified demographic-parity range
and the verdict at a fixed fairness threshold.

Shape to reproduce: with no bias budget the verdict matches the point
estimate; growing budgets widen the range until the verdict degrades to
"unknown" — the moment a cleaning/acquisition intervention becomes
necessary, which is CRA's decision value.
"""

import numpy as np

from repro.datasets import make_census
from repro.fairness import certify, demographic_parity_range
from repro.ml import ColumnTransformer, LogisticRegression

from .conftest import write_result

BUDGETS = (0, 10, 30, 60, 120)
THRESHOLD = 0.15


def run_cra(seed=21, n=500):
    df, _ = make_census(n, bias_fraction=0.1, seed=seed)
    encoder = ColumnTransformer([
        ("num", "passthrough", ["age", "education_years", "hours_per_week"]),
    ])
    X = encoder.fit_transform(df)
    y = np.array(df["income"].to_list())
    groups = np.array(df["group"].to_list())
    model = LogisticRegression(max_iter=80).fit(X, y)
    predictions = model.predict(X)

    sweep = {}
    for budget in BUDGETS:
        result = demographic_parity_range(predictions, groups,
                                          max_missing={"groupB": budget})
        sweep[budget] = {
            "gap_lo": result["gap_lo"], "gap_hi": result["gap_hi"],
            "verdict": certify(result, THRESHOLD),
            "observed": result["observed_gap"],
        }
    return sweep


def test_t11_cra_fairness(benchmark, results_dir):
    sweep = benchmark.pedantic(run_cra, rounds=1, iterations=1)

    rows = [f"{'bias_budget':<13}{'gap_range':<20}{'verdict':<10}",
            "-" * 43]
    for budget in BUDGETS:
        entry = sweep[budget]
        gap = f"[{entry['gap_lo']:.3f}, {entry['gap_hi']:.3f}]"
        rows.append(f"{budget:<13}{gap:<20}{entry['verdict']:<10}")
    rows.append("")
    rows.append(f"threshold: {THRESHOLD}; observed point gap: "
                f"{sweep[0]['observed']:.3f}")
    rows.append("claim [94]: point-fair datasets cannot be *certified* "
                "fair once plausible selection bias is admitted; the range "
                "tells you when more data (not more modeling) is needed")
    write_result(results_dir, "t11_cra_fairness", rows)

    benchmark.extra_info.update(
        {f"verdict_at_{b}": sweep[b]["verdict"] for b in BUDGETS})
    # Ranges widen monotonically with the budget.
    widths = [sweep[b]["gap_hi"] - sweep[b]["gap_lo"] for b in BUDGETS]
    assert all(b >= a - 1e-12 for a, b in zip(widths, widths[1:]))
    # Zero budget gives the point estimate back.
    assert sweep[0]["gap_lo"] == sweep[0]["gap_hi"] == \
        sweep[0]["observed"]
    # A large enough budget must destroy certifiability.
    assert sweep[BUDGETS[-1]]["verdict"] == "unknown"