"""Experiment T17 — pipeline-configuration debugging vs exhaustive sweep.

The BugDoc/Maro claim behind ``repro.pipelines.debugger``: a pairwise
covering-array screen plus delta-debugging isolation finds the true
root-cause configuration set while evaluating a small fraction of the
exhaustive configuration grid.

Measured here over the full seeded corpus (16 broken pipelines spanning
leakage, encoders, step order, degenerate hyperparameters, and broken
relational plans):

1. **Budget.** Per entry, configs evaluated by the debugger vs the
   exhaustive grid — the CI floor asserts the corpus-wide ratio stays
   <= 30% and every entry stays <= 35%.
2. **Accuracy.** Every minimized root cause must be a subset of the
   entry's ground-truth culprit assignment, with >= 15/16 culprits
   detected outright.
3. **Wall-clock.** Debugger wall time vs exhaustively scoring the grid
   serially (same evaluator, same process), expected well under 1x.

Artifact: ``results/t17_pipeline_debugger.txt``.
"""

import time

from repro.pipelines.debugger import load_corpus
from repro.runtime import Runtime

from .conftest import write_result

#: CI floors: corpus-wide evaluated/grid ratio and per-entry worst case.
MAX_TOTAL_FRACTION = 0.30
MAX_ENTRY_FRACTION = 0.35
MIN_DETECTED = 15


def debug_corpus():
    """Run the debugger over every corpus entry; collect budget rows."""
    rows = []
    for entry in load_corpus():
        started = time.perf_counter()
        with Runtime(backend="serial", cache=True) as runtime:
            report = entry.debugger(runtime=runtime).run()
        debug_seconds = time.perf_counter() - started

        started = time.perf_counter()
        exhaustive = [entry.evaluator(entry.shared, config)
                      for config in entry.space.enumerate()]
        sweep_seconds = time.perf_counter() - started

        causes_valid = all(entry.cause_is_valid(cause.assignment)
                           for cause in report.root_causes)
        detected = any(
            set(cause.assignment.items()) <= set(culprit.items())
            for culprit in entry.culprits
            for cause in report.root_causes)
        rows.append({
            "name": entry.name,
            "bug_kind": entry.bug_kind,
            "grid": report.grid_size,
            "evaluated": report.configs_evaluated,
            "fraction": report.fraction_of_grid,
            "rounds": report.rounds,
            "n_failing_grid": sum(1 for score in exhaustive
                                  if score < entry.threshold),
            "causes_valid": causes_valid,
            "detected": detected,
            "debug_seconds": debug_seconds,
            "sweep_seconds": sweep_seconds,
        })
    return rows


def test_t17_pipeline_debugger(benchmark, results_dir):
    rows = benchmark.pedantic(debug_corpus, rounds=1, iterations=1)

    total_grid = sum(row["grid"] for row in rows)
    total_evaluated = sum(row["evaluated"] for row in rows)
    total_fraction = total_evaluated / total_grid
    n_detected = sum(row["detected"] for row in rows)
    debug_time = sum(row["debug_seconds"] for row in rows)
    sweep_time = sum(row["sweep_seconds"] for row in rows)

    lines = [
        "T17: pipeline-configuration debugger vs exhaustive sweep",
        f"{'entry':<26} {'kind':<14} {'grid':>5} {'eval':>5} "
        f"{'frac':>5} {'rounds':>6} {'valid':>5} {'found':>5}",
        "-" * 78,
    ]
    for row in rows:
        lines.append(
            f"{row['name']:<26} {row['bug_kind']:<14} {row['grid']:>5} "
            f"{row['evaluated']:>5} {row['fraction']:>5.2f} "
            f"{row['rounds']:>6} {str(row['causes_valid']):>5} "
            f"{str(row['detected']):>5}")
    lines += [
        "-" * 78,
        f"total: {total_evaluated}/{total_grid} configs "
        f"({total_fraction:.1%} of exhaustive), "
        f"{n_detected}/{len(rows)} culprits detected",
        f"wall-clock: debugger {debug_time:.2f}s vs "
        f"exhaustive sweep {sweep_time:.2f}s "
        f"({debug_time / sweep_time:.2f}x)",
    ]
    write_result(results_dir, "t17_pipeline_debugger", lines)

    benchmark.extra_info["total_fraction"] = round(total_fraction, 4)
    benchmark.extra_info["detected"] = n_detected
    benchmark.extra_info["entries"] = len(rows)

    # CI floors (the acceptance criteria from the issue)
    assert all(row["causes_valid"] for row in rows), \
        [row["name"] for row in rows if not row["causes_valid"]]
    assert n_detected >= MIN_DETECTED
    assert total_fraction <= MAX_TOTAL_FRACTION
    for row in rows:
        assert row["fraction"] <= MAX_ENTRY_FRACTION, row["name"]
        assert row["n_failing_grid"] > 0
