"""Benchmark infrastructure: results directory and reporting helper.

Every bench regenerates one paper artifact (figure or survey claim — see
the experiment index in DESIGN.md), times it through pytest-benchmark,
writes the regenerated table/series to ``benchmarks/results/<exp>.txt``
and records headline numbers in ``benchmark.extra_info``. EXPERIMENTS.md
summarizes paper-vs-measured for every experiment.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, lines) -> None:
    """Persist a regenerated table so it survives pytest's capture."""
    text = "\n".join(lines) if not isinstance(lines, str) else lines
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
