"""Benchmark infrastructure: results directory and reporting helper.

Every bench regenerates one paper artifact (figure or survey claim — see
the experiment index in DESIGN.md), times it through pytest-benchmark,
writes the regenerated table/series to ``benchmarks/results/<exp>.txt``
and records headline numbers in ``benchmark.extra_info``. EXPERIMENTS.md
summarizes paper-vs-measured for every experiment.

At the end of a session the runtime's global counters — fingerprint-cache
hits/misses/evictions, executor fault/recovery totals, and wall-time per
execution stage — are printed so every benchmark run shows where its
budget went.
"""

from pathlib import Path

import pytest

from repro.runtime import (
    aggregate_cache_stats,
    aggregate_fault_stats,
    aggregate_stage_timings,
)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def pytest_terminal_summary(terminalreporter):
    """Print aggregated runtime/cache introspection after the benches."""
    cache = aggregate_cache_stats()
    stages = aggregate_stage_timings()
    if not cache["puts"] and not stages:
        return
    write = terminalreporter.write_line
    terminalreporter.section("repro.runtime summary")
    write(f"fingerprint cache: {cache['memory_hits']} memory hits, "
          f"{cache['disk_hits']} disk hits, {cache['misses']} misses, "
          f"{cache['evictions']} evictions "
          f"(hit rate {cache['hit_rate']:.1%})")
    faults = aggregate_fault_stats()
    if any(faults.values()):
        write(f"faults: {faults['retries']} retries, "
              f"{faults['worker_crashes']} worker crashes, "
              f"{faults['timeouts']} timeouts, "
              f"{faults['degraded_runs']} degraded runs")
    for stage, entry in sorted(stages.items(),
                               key=lambda kv: -kv[1]["seconds"]):
        write(f"stage {stage:<28} {entry['seconds']:>9.3f}s "
              f"{entry['tasks']:>8} tasks")


def write_result(results_dir: Path, name: str, lines) -> None:
    """Persist a regenerated table so it survives pytest's capture."""
    text = "\n".join(lines) if not isinstance(lines, str) else lines
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
