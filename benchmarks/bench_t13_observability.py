"""Experiment T13 — observability: reports, provenance, and overhead.

Two claims behind ``repro.observe``:

1. **An observed run explains itself.** Attaching one ``Observer`` to
   the runtime and the estimators yields a text report with per-stage
   spans (estimator spans with the ``runtime.*`` stages nested inside),
   fingerprint-cache hit rates attributed to exactly the span that
   incurred them, and total utility-evaluation counts — plus a JSONL
   provenance log that reloads bit-for-bit (``diff_runs == []``).
   Artifacts: ``results/t13_observability.txt`` (report) and
   ``results/t13_observability.jsonl`` (runlog).
2. **Observation is near-free.** The same workload with a fully
   *enabled* observer stays within a small factor of the default
   null-observer path (events are emitted per batch, never per task);
   the no-op path itself is bounded at microseconds per call by
   ``tests/observe/test_observer.py::test_noop_overhead_bound``.
"""

import time

from repro.datasets import make_blobs
from repro.importance import DataBanzhaf, MonteCarloShapley, Utility
from repro.ml import KNeighborsClassifier
from repro.observe import Observer, RunLog, diff_runs, render_text
from repro.runtime import FingerprintCache, Runtime
from repro.unlearning import ShardedUnlearner

from .conftest import write_result

N_TRAIN = 120
N_SAMPLES = 24


def observed_session(observer=None, *, cache=True, seed=0):
    """A small end-to-end session: two Banzhaf sweeps over the same game
    (the second hits the fingerprint cache), one TMC-Shapley sweep, and
    a sharded-unlearning fit + deletion."""
    X, y = make_blobs(N_TRAIN + 40, n_features=4, centers=2, seed=seed)
    X_train, y_train = X[:N_TRAIN], y[:N_TRAIN]
    X_valid, y_valid = X[N_TRAIN:], y[N_TRAIN:]

    fp_cache = FingerprintCache() if cache else False
    with Runtime(backend="serial", cache=fp_cache,
                 observer=observer) as runtime:
        for sweep in range(2):
            utility = Utility(KNeighborsClassifier(5), X_train, y_train,
                              X_valid, y_valid, runtime=runtime)
            DataBanzhaf(n_samples=N_SAMPLES, seed=seed,
                        observer=observer).score(utility)
        utility = Utility(KNeighborsClassifier(5), X_train, y_train,
                          X_valid, y_valid, runtime=runtime)
        MonteCarloShapley(n_permutations=4, seed=seed,
                          observer=observer).score(utility)

    unlearner = ShardedUnlearner(KNeighborsClassifier(5), n_shards=4,
                                 seed=seed, observer=observer)
    unlearner.fit(X_train, y_train)
    unlearner.unlearn([0, 1, 2])


def test_t13_observed_run(benchmark, results_dir):
    log_path = results_dir / "t13_observability.jsonl"
    obs = Observer(run_id="t13", log_path=log_path)
    benchmark.pedantic(observed_session, args=(obs,), rounds=1, iterations=1)

    report = render_text(obs, title="experiment t13 observed session")
    write_result(results_dir, "t13_observability", report)

    # Per-stage spans: estimator spans with runtime stages nested inside.
    spans = obs.tracer.snapshot()
    names = [s["name"] for s in spans]
    assert names == ["banzhaf", "banzhaf", "shapley_mc",
                     "sharded.fit", "sharded.unlearn"]
    assert spans[0]["children"][0]["name"] == "runtime.banzhaf"
    assert "runtime.banzhaf" in report

    # Cache attribution: the second Banzhaf sweep ran fully from cache.
    assert spans[0]["cache"]["hit_rate"] == 0.0
    assert spans[1]["cache"]["hit_rate"] == 1.0
    assert "100.0%" in report

    # Metrics: total utility evaluations and per-layer counters.
    metrics = obs.metrics.snapshot()
    assert metrics["utility.evaluations"] > 0
    assert metrics["importance.coalitions"] == 2 * N_SAMPLES
    assert metrics["unlearning.rows_deleted"] == 3
    assert "utility.evaluations" in report

    # Provenance: the JSONL on disk reloads to the in-memory log.
    events = list(obs.runlog.iter_events("importance.run"))
    assert [e["method"] for e in events] == ["banzhaf", "banzhaf",
                                             "shapley_mc"]
    assert diff_runs(obs.runlog, RunLog.load(log_path)) == []

    benchmark.extra_info["events"] = len(obs.runlog)
    benchmark.extra_info["utility_evaluations"] = \
        metrics["utility.evaluations"]


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_t13_observer_overhead(benchmark, results_dir):
    """A fully-enabled observer must stay close to the null-observer
    default on a retraining workload (caching off for honest timing)."""
    benchmark.pedantic(observed_session, kwargs={"cache": False},
                       rounds=1, iterations=1)

    baseline = _best_of(lambda: observed_session(None, cache=False), 3)
    observed = _best_of(lambda: observed_session(Observer(), cache=False), 3)
    overhead = observed / baseline - 1.0

    write_result(results_dir, "t13_observer_overhead", [
        f"session (null observer, best of 3):    {baseline:.4f}s",
        f"session (enabled observer, best of 3): {observed:.4f}s",
        f"overhead: {overhead:+.2%}",
        "",
        "no-op path bound: tests/observe/test_observer.py"
        "::test_noop_overhead_bound (<50us per span+count)",
    ])
    benchmark.extra_info["overhead_fraction"] = overhead

    # Generous CI-safe bound; typical observed overhead is ~1%.
    assert overhead < 0.20, (
        f"enabled observer added {overhead:.1%} to the session")
