"""Experiment T3 — Section 2.2 claim: fine-grained provenance enables
source-level debugging at modest runtime overhead.

Times the hiring pipeline with and without provenance tracking across
input sizes.

Shape to reproduce: provenance costs a constant factor (not an
asymptotic blow-up) — the overhead ratio stays bounded as n grows.
"""

import time

from repro.datasets import make_hiring_tables
from repro.ml import (
    ColumnTransformer,
    OneHotEncoder,
    Pipeline,
    SimpleImputer,
    StandardScaler,
)
from repro.pipelines import DataPipeline, source
from repro.text import SentenceEmbedder

from .conftest import write_result

SIZES = (100, 200, 400)


def build_pipeline():
    encoder = ColumnTransformer([
        ("text", SentenceEmbedder(dim=16), "letter_text"),
        ("num", Pipeline([("imp", SimpleImputer()),
                          ("sc", StandardScaler())]),
         ["years_experience", "employer_rating"]),
        ("deg", OneHotEncoder(), "degree"),
    ])
    plan = (source("train_df")
            .join(source("jobdetail_df"), on="job_id")
            .join(source("social_df"), on="person_id")
            .drop(["person_id", "job_id", "twitter", "sector", "seniority",
                   "salary_band", "followers", "linkedin_connections"])
            .encode(encoder, label="sentiment"))
    return DataPipeline(plan)


def time_pipeline(n: int, provenance: bool, repeats: int = 3) -> float:
    letters, jobs, social = make_hiring_tables(n, seed=1)
    pipeline = build_pipeline()
    sources = {"train_df": letters, "jobdetail_df": jobs,
               "social_df": social}
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        pipeline.run(sources, provenance=provenance)
        best = min(best, time.perf_counter() - started)
    return best


def test_t3_provenance_overhead(benchmark, results_dir):
    benchmark.pedantic(time_pipeline, args=(200, True), rounds=1,
                       iterations=1)

    rows = [f"{'n':<7}{'plain_s':>10}{'provenance_s':>14}{'overhead':>10}",
            "-" * 41]
    ratios = []
    for n in SIZES:
        plain = time_pipeline(n, provenance=False)
        tracked = time_pipeline(n, provenance=True)
        ratio = tracked / plain
        ratios.append(ratio)
        rows.append(f"{n:<7}{plain:>10.4f}{tracked:>14.4f}{ratio:>9.2f}x")
    rows.append("")
    rows.append("survey claim: provenance is a constant-factor overhead, "
                "not an asymptotic one")
    write_result(results_dir, "t3_provenance_overhead", rows)

    # Bounded constant-factor overhead at every size.
    assert all(ratio < 5.0 for ratio in ratios)
