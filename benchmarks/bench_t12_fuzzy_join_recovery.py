"""Experiment T12 — §2.2 claim: fuzzy joins recover rows that exact joins
silently drop when keys carry representational inconsistencies.

Figure 3's pipeline description explicitly says "(fuzzy) joins". Inject
casing/whitespace inconsistencies plus character typos into join keys and
compare the join coverage (and downstream accuracy) of exact, normalized,
and edit-distance-tolerant joins.

Shape to reproduce: exact < normalized < typo-tolerant coverage; the
downstream model trained on the recovered rows is at least as good.
"""

import numpy as np

from repro.core.rng import ensure_rng
from repro.dataframe import DataFrame
from repro.errors import inject_inconsistencies

from .conftest import write_result


def _typo(word: str, rng) -> str:
    if len(word) < 3:
        return word
    position = int(rng.integers(1, len(word) - 1))
    return word[:position] + "x" + word[position + 1:]


def build_tables(n=300, typo_fraction=0.15, seed=9):
    rng = ensure_rng(seed)
    cities = ["berlin", "tokyo", "boston", "madrid", "sydney"]
    frame = DataFrame({
        "city": [str(c) for c in rng.choice(cities, size=n)],
        "value": rng.normal(0, 1, n),
    })
    # Casing/whitespace inconsistencies on 30% of keys...
    dirty, _ = inject_inconsistencies(frame, column="city", fraction=0.3,
                                      seed=seed + 1)
    # ...plus character typos on another slice.
    keys = dirty["city"].to_list()
    for i in rng.choice(n, size=int(typo_fraction * n), replace=False):
        keys[int(i)] = _typo(keys[int(i)], rng)
    dirty["city"] = keys
    lookup = DataFrame({"city": cities,
                        "region": ["eu", "asia", "us", "eu", "oceania"]})
    return dirty, lookup, n


def run_comparison():
    dirty, lookup, n = build_tables()
    exact = dirty.join(lookup, on="city")
    normalized = dirty.fuzzy_join(lookup, on="city")
    tolerant = dirty.fuzzy_join(lookup, on="city", max_edit_distance=1)
    return {
        "exact": len(exact) / n,
        "normalized": len(normalized) / n,
        "typo_tolerant": len(tolerant) / n,
    }


def test_t12_fuzzy_join_recovery(benchmark, results_dir):
    coverage = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    rows = [f"{'join variant':<18}{'coverage':>10}", "-" * 28]
    for name in ("exact", "normalized", "typo_tolerant"):
        rows.append(f"{name:<18}{coverage[name]:>10.2f}")
    rows.append("")
    rows.append("claim (§2.2 / Figure 3): '(fuzzy) joins' exist because "
                "exact joins silently drop inconsistent keys; each level "
                "of tolerance recovers more source rows")
    write_result(results_dir, "t12_fuzzy_join_recovery", rows)

    benchmark.extra_info.update(coverage)
    assert coverage["exact"] < coverage["normalized"] < \
        coverage["typo_tolerant"]
    assert coverage["typo_tolerant"] >= 0.95