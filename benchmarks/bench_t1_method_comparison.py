"""Experiment T1 — Section 2.1 claim: importance methods rank injected
errors above clean data, with a quality/cost trade-off.

Regenerated table: detection recall@k (k = number of injected errors) and
model trainings consumed, per method, on blobs with 15% label flips.

Shape to reproduce: every method beats random (recall 0.15); the exact
KNN-Shapley and training-dynamics methods dominate; the general
permutation methods pay for generality with many utility evaluations.
"""

import time

import numpy as np

from repro.datasets import make_blobs
from repro.errors import inject_label_errors_array
from repro.importance import (
    BetaShapley,
    DataBanzhaf,
    MonteCarloShapley,
    Utility,
    aum_scores,
    confident_learning_scores,
    detection_recall_at_k,
    influence_scores,
    knn_shapley,
    leave_one_out,
)
from repro.ml import KNeighborsClassifier, LogisticRegression
from repro.runtime import FingerprintCache, Runtime

from .conftest import write_result


def make_setting(seed=3):
    X, y = make_blobs(150, n_features=3, centers=2, cluster_std=1.2,
                      seed=seed)
    X_train, y_train = X[:100], y[:100]
    X_valid, y_valid = X[100:], y[100:]
    y_dirty, flipped = inject_label_errors_array(y_train, fraction=0.15,
                                                 seed=seed + 7)
    return X_train, y_dirty, X_valid, y_valid, flipped


def run_all_methods(seed=3, runtime=None):
    X, y, Xv, yv, flipped = make_setting(seed)
    k = len(flipped)
    results = {}

    def timed(name, fn, trainings=None):
        started = time.perf_counter()
        scores, calls = fn()
        results[name] = (detection_recall_at_k(scores, flipped, k),
                         calls if trainings is None else trainings,
                         time.perf_counter() - started)

    timed("knn_shapley", lambda: (knn_shapley(X, y, Xv, yv, k=5), 0))

    model = LogisticRegression().fit(X, y)
    timed("influence", lambda: (influence_scores(model, X, y, Xv, yv), 1))

    from repro.importance import gradient_similarity_scores

    timed("gradient_similarity",
          lambda: (gradient_similarity_scores(model, X, y, Xv, yv), 1))

    timed("confident_learning",
          lambda: (confident_learning_scores(LogisticRegression(max_iter=60),
                                             X, y, cv=4, seed=0)[0], 4))

    timed("aum", lambda: (aum_scores(X, y, n_epochs=20, seed=0), 1))

    # The retraining-based estimators share one runtime: the fingerprint
    # cache deduplicates repeated coalitions (e.g. the grand coalition)
    # across methods, and stage timings land in the session summary.
    def game():
        return Utility(KNeighborsClassifier(5), X, y, Xv, yv,
                       runtime=runtime)

    def with_calls(estimator_run):
        utility = game()
        scores = estimator_run(utility)
        return scores, utility.calls

    timed("leave_one_out", lambda: with_calls(leave_one_out))
    timed("tmc_shapley", lambda: with_calls(
        MonteCarloShapley(n_permutations=20, truncation_tol=0.02,
                          seed=0).score))
    timed("banzhaf_msr", lambda: with_calls(
        DataBanzhaf(n_samples=150, seed=0).score))
    timed("beta_shapley_16_1", lambda: with_calls(
        BetaShapley(alpha=16, beta=1, n_permutations=12, seed=0).score))
    return results


def test_t1_method_comparison(benchmark, results_dir):
    with Runtime(backend="serial", cache=FingerprintCache()) as runtime:
        results = benchmark.pedantic(run_all_methods, kwargs={
            "runtime": runtime}, rounds=1, iterations=1)
        cache_stats = runtime.cache.stats.as_dict()

    rows = [f"{'method':<22}{'recall@k':>10}{'trainings':>12}{'wall_s':>10}",
            "-" * 54]
    for name, (recall, calls, wall) in sorted(results.items(),
                                              key=lambda kv: -kv[1][0]):
        rows.append(f"{name:<22}{recall:>10.2f}{calls:>12}{wall:>10.2f}")
    rows.append("")
    rows.append(f"shared fingerprint cache: "
                f"{cache_stats['memory_hits']} hits / "
                f"{cache_stats['misses']} misses "
                f"(hit rate {cache_stats['hit_rate']:.1%})")
    rows.append("random flagging baseline: recall 0.15")
    rows.append("survey claim: importance methods beat random; exact "
                "proxy-model and training-dynamics methods are cheapest")
    write_result(results_dir, "t1_method_comparison", rows)

    benchmark.extra_info.update(
        {name: recall for name, (recall, _, _) in results.items()})
    # Every method except LOO must beat the random base rate; LOO's
    # weakness (one removal rarely moves a k-NN vote, so most values tie
    # at zero) is exactly why the survey motivates Shapley-style values.
    for name, (recall, _, _) in results.items():
        if name == "leave_one_out":
            continue
        assert recall > 0.15, f"{name} did not beat random flagging"
    assert results["leave_one_out"][0] <= results["knn_shapley"][0]
    # The zero-training exact method is at least as good as sampled ones.
    assert results["knn_shapley"][0] >= results["tmc_shapley"][0] - 0.1
