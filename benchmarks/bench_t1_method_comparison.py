"""Experiment T1 — Section 2.1 claim: importance methods rank injected
errors above clean data, with a quality/cost trade-off.

Regenerated table: detection recall@k (k = number of injected errors) and
model trainings consumed, per method, on blobs with 15% label flips.

Shape to reproduce: every method beats random (recall 0.15); the exact
KNN-Shapley and training-dynamics methods dominate; the general
permutation methods pay for generality with many utility evaluations.
"""

import numpy as np

from repro.datasets import make_blobs
from repro.errors import inject_label_errors_array
from repro.importance import (
    BetaShapley,
    DataBanzhaf,
    MonteCarloShapley,
    Utility,
    aum_scores,
    confident_learning_scores,
    detection_recall_at_k,
    influence_scores,
    knn_shapley,
    leave_one_out,
)
from repro.ml import KNeighborsClassifier, LogisticRegression

from .conftest import write_result


def make_setting(seed=3):
    X, y = make_blobs(150, n_features=3, centers=2, cluster_std=1.2,
                      seed=seed)
    X_train, y_train = X[:100], y[:100]
    X_valid, y_valid = X[100:], y[100:]
    y_dirty, flipped = inject_label_errors_array(y_train, fraction=0.15,
                                                 seed=seed + 7)
    return X_train, y_dirty, X_valid, y_valid, flipped


def run_all_methods(seed=3):
    X, y, Xv, yv, flipped = make_setting(seed)
    k = len(flipped)
    results = {}

    results["knn_shapley"] = (
        detection_recall_at_k(knn_shapley(X, y, Xv, yv, k=5), flipped, k), 0)

    model = LogisticRegression().fit(X, y)
    results["influence"] = (
        detection_recall_at_k(influence_scores(model, X, y, Xv, yv),
                              flipped, k), 1)

    from repro.importance import gradient_similarity_scores

    results["gradient_similarity"] = (
        detection_recall_at_k(
            gradient_similarity_scores(model, X, y, Xv, yv), flipped, k), 1)

    cl, _ = confident_learning_scores(LogisticRegression(max_iter=60), X, y,
                                      cv=4, seed=0)
    results["confident_learning"] = (
        detection_recall_at_k(cl, flipped, k), 4)

    results["aum"] = (
        detection_recall_at_k(aum_scores(X, y, n_epochs=20, seed=0),
                              flipped, k), 1)

    utility = Utility(KNeighborsClassifier(5), X, y, Xv, yv)
    results["leave_one_out"] = (
        detection_recall_at_k(leave_one_out(utility), flipped, k),
        utility.calls)

    utility = Utility(KNeighborsClassifier(5), X, y, Xv, yv)
    scores = MonteCarloShapley(n_permutations=20, truncation_tol=0.02,
                               seed=0).score(utility)
    results["tmc_shapley"] = (
        detection_recall_at_k(scores, flipped, k), utility.calls)

    utility = Utility(KNeighborsClassifier(5), X, y, Xv, yv)
    scores = DataBanzhaf(n_samples=150, seed=0).score(utility)
    results["banzhaf_msr"] = (
        detection_recall_at_k(scores, flipped, k), utility.calls)

    utility = Utility(KNeighborsClassifier(5), X, y, Xv, yv)
    scores = BetaShapley(alpha=16, beta=1, n_permutations=12,
                         seed=0).score(utility)
    results["beta_shapley_16_1"] = (
        detection_recall_at_k(scores, flipped, k), utility.calls)
    return results


def test_t1_method_comparison(benchmark, results_dir):
    results = benchmark.pedantic(run_all_methods, rounds=1, iterations=1)

    rows = [f"{'method':<22}{'recall@k':>10}{'trainings':>12}", "-" * 44]
    for name, (recall, calls) in sorted(results.items(),
                                        key=lambda kv: -kv[1][0]):
        rows.append(f"{name:<22}{recall:>10.2f}{calls:>12}")
    rows.append("")
    rows.append("random flagging baseline: recall 0.15")
    rows.append("survey claim: importance methods beat random; exact "
                "proxy-model and training-dynamics methods are cheapest")
    write_result(results_dir, "t1_method_comparison", rows)

    benchmark.extra_info.update(
        {name: recall for name, (recall, _) in results.items()})
    # Every method except LOO must beat the random base rate; LOO's
    # weakness (one removal rarely moves a k-NN vote, so most values tie
    # at zero) is exactly why the survey motivates Shapley-style values.
    for name, (recall, _) in results.items():
        if name == "leave_one_out":
            continue
        assert recall > 0.15, f"{name} did not beat random flagging"
    assert results["leave_one_out"][0] <= results["knn_shapley"][0]
    # The zero-training exact method is at least as good as sampled ones.
    assert results["knn_shapley"][0] >= results["tmc_shapley"][0] - 0.1
