"""Scenario: debugging an end-to-end ML pipeline (Figure 3).

Builds the tutorial's multi-table pipeline — letters joined with job
details and social-media side data, filtered to one sector, encoded with
text embeddings — runs it with fine-grained provenance, screens it with
mlinspect-style inspections, and uses Datascope to trace importance back
to *source* rows that a practitioner could actually fix.

Run:  python examples/pipeline_debugging.py
"""

import numpy as np

from repro.datasets import make_hiring_tables
from repro.errors import inject_label_errors
from repro.ml import (
    ColumnTransformer,
    LogisticRegression,
    OneHotEncoder,
    Pipeline,
    SimpleImputer,
    StandardScaler,
)
from repro.pipelines import (
    DataLeakageInspection,
    DataPipeline,
    JoinCoverageInspection,
    LabelDistributionInspection,
    MissingnessInspection,
    WhatIfAnalysis,
    datascope_importance,
    remove_and_evaluate,
    run_inspections,
    show_query_plan,
    source,
)
from repro.pipelines.datascope import rank_source_rows
from repro.text import SentenceEmbedder


def build_pipeline():
    """def pipeline(train_df, jobdetail_df, social_df): ...  (Figure 3)"""
    feature_encoder = ColumnTransformer([
        ("letter", SentenceEmbedder(dim=32), "letter_text"),
        ("numeric", Pipeline([("imputer", SimpleImputer()),
                              ("scaler", StandardScaler())]),
         ["years_experience", "employer_rating"]),
        ("degree", OneHotEncoder(), "degree"),
        ("social", "passthrough", "has_twitter"),
    ])
    plan = (source("train_df")
            .join(source("jobdetail_df"), on="job_id")
            .join(source("social_df"), on="person_id")
            .map_column("has_twitter",
                        lambda r: 1.0 if r["twitter"] is not None else 0.0)
            .drop(["person_id", "job_id", "twitter", "sector", "seniority",
                   "salary_band", "followers", "linkedin_connections"])
            .encode(feature_encoder, label="sentiment"))
    return DataPipeline(plan)


def main() -> None:
    letters, jobdetail_df, social_df = make_hiring_tables(320, seed=5)
    train_df, valid_df = letters.split([0.75, 0.25], seed=6)
    train_df_err, report = inject_label_errors(train_df, column="sentiment",
                                               fraction=0.15, seed=7)

    pipeline = build_pipeline()
    print("Pipeline query plan:\n")
    print(show_query_plan(pipeline.plan))

    sources = {"train_df": train_df_err, "jobdetail_df": jobdetail_df,
               "social_df": social_df}
    result = pipeline.run(sources, provenance=True)
    print(f"\nEncoded training data: X {result.X.shape}, "
          f"{len(result.provenance)} provenance witnesses.")

    # Screen the pipeline for structural issues.
    print("\nPipeline inspections:")
    for inspection in run_inspections(
            pipeline, sources, result,
            [JoinCoverageInspection(), LabelDistributionInspection(),
             MissingnessInspection(warn_above=0.05),
             DataLeakageInspection(valid_df, train_source="train_df")]):
        status = "PASS" if inspection.passed else inspection.severity.upper()
        detail = f" — {inspection.findings[0]}" if inspection.findings else ""
        print(f"  [{status:7}] {inspection.name}{detail}")

    # Datascope: importance of *source* rows through provenance.
    X_valid, y_valid = result.apply(dict(sources, train_df=valid_df))
    importances = datascope_importance(result, source="train_df",
                                       X_valid=X_valid, y_valid=y_valid,
                                       k=20)
    lowest = rank_source_rows(importances, 25)
    flipped = report.row_ids()
    print(f"\nOf the 25 worst source rows, "
          f"{len(set(lowest) & flipped)} carry injected label errors "
          f"(base rate would find ~{round(25 * 0.15)}).")

    outcome = remove_and_evaluate(pipeline, sources, source="train_df",
                                  row_ids=lowest,
                                  model=LogisticRegression(max_iter=100),
                                  valid_frame=valid_df)
    print(f"Removal changed accuracy by {outcome['delta']:+.3f} "
          f"({outcome['before']:.3f} -> {outcome['after']:.3f}).")

    # What-if analysis with operator caching.
    analysis = WhatIfAnalysis(pipeline, sources,
                              LogisticRegression(max_iter=100), valid_df,
                              train_source="train_df")
    scenario = analysis.drop_rows_scenario(
        "jobdetail_df", jobdetail_df.row_ids[:5])
    print(f"\nWhat-if: dropping 5 jobdetail rows shifts accuracy by "
          f"{scenario['delta']:+.3f} "
          f"(cache reused {analysis.cache_hits} operator outputs).")


if __name__ == "__main__":
    main()
