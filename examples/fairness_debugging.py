"""Scenario: data-based fairness debugging with Gopher.

A census-like dataset carries discriminatory label corruption against one
group. Gopher searches for compact, interpretable training subsets whose
removal most reduces the equalized-odds gap — pointing at the *data*
responsible for unfairness instead of patching the model.

Run:  python examples/fairness_debugging.py
"""

import numpy as np

from repro.datasets import make_census
from repro.fairness import (
    GopherExplainer,
    demographic_parity_difference,
    equalized_odds_difference,
    group_rates,
    reweigh_for_parity,
)
from repro.ml import ColumnTransformer, LogisticRegression, OneHotEncoder


def main() -> None:
    df, biased_ids = make_census(600, bias_fraction=0.5,
                                 biased_group="groupB", seed=3)
    train_df, valid_df = df.split([0.7, 0.3], seed=4)
    print(f"{len(train_df)} training rows; {len(biased_ids)} rows carry "
          "discriminatory label flips against groupB (unknown to the "
          "debugger).\n")

    encoder = ColumnTransformer([
        ("numeric", "passthrough",
         ["age", "education_years", "hours_per_week"]),
        ("group", OneHotEncoder(), "group"),
    ])
    X_train = encoder.fit_transform(train_df)
    X_valid = encoder.transform(valid_df)
    y_valid = np.array(valid_df["income"].to_list())
    groups_valid = np.array(valid_df["group"].to_list())

    model = LogisticRegression(max_iter=100)
    model.fit(X_train, np.array(train_df["income"].to_list()))
    predictions = model.predict(X_valid)

    print("Fairness report of the naive model:")
    print(f"  equalized odds gap:   "
          f"{equalized_odds_difference(y_valid, predictions, groups_valid):.3f}")
    print(f"  demographic parity:   "
          f"{demographic_parity_difference(predictions, groups_valid):.3f}")
    for group, rates in group_rates(y_valid, predictions,
                                    groups_valid).items():
        print(f"  {group}: selection {rates['selection_rate']:.2f}, "
              f"TPR {rates['tpr']:.2f}, FPR {rates['fpr']:.2f}")

    # Gopher: which training subsets are responsible?
    explainer = GopherExplainer(LogisticRegression(max_iter=60),
                                equalized_odds_difference,
                                max_depth=2, min_support=0.02, n_bins=2)
    explanations = explainer.explain(
        train_df, feature_matrix=X_train, label_column="income",
        group_column="group", X_valid=X_valid, y_valid=y_valid,
        groups_valid=groups_valid, top_k=3)

    print("\nTop Gopher explanations (remove subset -> retrain):")
    for rank, explanation in enumerate(explanations, start=1):
        print(f"  {rank}. {explanation.describe()}")
        print(f"     responsibility: {explanation.responsibility:.0%}")

    # Alternative: keep all data, reweigh instead.
    outcome = reweigh_for_parity(
        LogisticRegression(max_iter=60), X_train,
        np.array(train_df["income"].to_list()),
        np.array(train_df["group"].to_list()), n_rounds=8, step=2.0)
    reweighed_predictions = outcome["model"].predict(X_valid)
    print("\nLabel-bias reweighting (keeps every row):")
    print(f"  parity violation: {outcome['violations'][0]:.3f} -> "
          f"{outcome['violations'][-1]:.3f}")
    print(f"  equalized odds gap after reweighting: "
          f"{equalized_odds_difference(y_valid, reweighed_predictions, groups_valid):.3f}")


if __name__ == "__main__":
    main()
