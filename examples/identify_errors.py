"""Scenario: comparing data-importance methods as error detectors.

Injects label errors into the hiring data and pits every importance
method of Section 2.1 against each other on detection recall and
runtime — the practitioner's method-selection question the tutorial's
first take-away addresses.

Run:  python examples/identify_errors.py
"""

import time

import numpy as np

import repro as nde
from repro.core.api import default_letter_encoder
from repro.importance import (
    DataBanzhaf,
    BetaShapley,
    MonteCarloShapley,
    Utility,
    aum_scores,
    confident_learning_scores,
    detection_recall_at_k,
    influence_scores,
    knn_shapley,
    leave_one_out,
)
from repro.ml import KNeighborsClassifier, LogisticRegression
from repro.ml.base import clone


def main() -> None:
    train_df, valid_df, _ = nde.load_recommendation_letters(300, seed=1)
    dirty, report = nde.inject_labelerrors(train_df, fraction=0.15, seed=2)

    encoder = clone(default_letter_encoder())
    features = [c for c in dirty.columns if c != "sentiment"]
    X = encoder.fit_transform(dirty.select(features))
    y = np.array(dirty["sentiment"].to_list())
    X_valid = encoder.transform(valid_df.select(features))
    y_valid = np.array(valid_df["sentiment"].to_list())

    flipped_positions = dirty.positions_of(sorted(report.row_ids()))
    k = len(flipped_positions)
    print(f"{len(dirty)} training letters, {k} with flipped labels.\n")
    print(f"{'method':<22}{'recall@k':>10}{'seconds':>10}")
    print("-" * 42)

    def report_method(name, scores, elapsed):
        recall = detection_recall_at_k(scores, flipped_positions, k)
        print(f"{name:<22}{recall:>10.2f}{elapsed:>10.2f}")

    started = time.perf_counter()
    scores = knn_shapley(X, y, X_valid, y_valid, k=10)
    report_method("knn_shapley (exact)", scores, time.perf_counter() - started)

    started = time.perf_counter()
    model = LogisticRegression(max_iter=100).fit(X, y)
    scores = influence_scores(model, X, y, X_valid, y_valid)
    report_method("influence functions", scores, time.perf_counter() - started)

    started = time.perf_counter()
    scores, _ = confident_learning_scores(LogisticRegression(max_iter=60),
                                          X, y, cv=4, seed=0)
    report_method("confident learning", scores, time.perf_counter() - started)

    started = time.perf_counter()
    scores = aum_scores(X, y, n_epochs=20, seed=0)
    report_method("AUM", scores, time.perf_counter() - started)

    knn_utility = Utility(KNeighborsClassifier(5), X, y, X_valid, y_valid)
    started = time.perf_counter()
    scores = leave_one_out(knn_utility)
    report_method("leave-one-out", scores, time.perf_counter() - started)

    started = time.perf_counter()
    scores = MonteCarloShapley(n_permutations=15, truncation_tol=0.02,
                               seed=0).score(knn_utility)
    report_method("TMC-Shapley (15 perm)", scores,
                  time.perf_counter() - started)

    started = time.perf_counter()
    scores = DataBanzhaf(n_samples=120, seed=0).score(knn_utility)
    report_method("Data Banzhaf (MSR)", scores, time.perf_counter() - started)

    started = time.perf_counter()
    scores = BetaShapley(alpha=16, beta=1, n_permutations=10,
                         seed=0).score(knn_utility)
    report_method("Beta(16,1) Shapley", scores, time.perf_counter() - started)

    print("\nTake-away: the exact KNN-Shapley and the training-dynamics "
          "methods find most errors in seconds; permutation-sampling "
          "methods trade accuracy for generality (any model, any metric).")


if __name__ == "__main__":
    main()
