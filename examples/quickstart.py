"""Quickstart: identify, debug, and learn in 60 lines.

Walks the three acts of the tutorial on the hiring dataset:
1. IDENTIFY  — inject label errors, find them with KNN-Shapley.
2. DEBUG     — clean the worst tuples through the oracle and recover.
3. LEARN     — when cleaning is impossible, bound the damage with
               certain-prediction analysis.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro as nde
from repro.cleaning import CleaningOracle
from repro.errors import inject_missing_array
from repro.uncertain import CertainPredictionKNN


def main() -> None:
    # ------------------------------------------------------------------
    # Act 1: identify data errors (Figure 2 of the paper).
    # ------------------------------------------------------------------
    train_df, valid_df, test_df = nde.load_recommendation_letters(400, seed=0)
    train_df_err, report = nde.inject_labelerrors(train_df, fraction=0.1,
                                                  seed=100)

    acc_dirty = nde.evaluate_model(train_df_err, validation=valid_df)
    print(f"Accuracy with data errors: {acc_dirty:.3f}.")

    importances = nde.knn_shapley_values(train_df_err, validation=valid_df,
                                         k=10)
    lowest = np.argsort(importances)[:25]
    print("\nMost harmful tuples (lowest importance first):")
    nde.pretty_print(train_df_err.take(lowest).select(
        ["letter_text", "sentiment"]), max_rows=5)

    detection = report.detection_scores(train_df_err.row_ids[lowest])
    print(f"\nOf the 25 flagged tuples, {detection['hits']} are truly "
          f"corrupted (recall {detection['recall']:.0%}).")

    # ------------------------------------------------------------------
    # Act 2: debug — prioritized cleaning through the oracle.
    # ------------------------------------------------------------------
    oracle = CleaningOracle(train_df)
    cleaned = oracle.clean(train_df_err, train_df_err.row_ids[lowest])
    acc_cleaned = nde.evaluate_model(cleaned, validation=valid_df)
    print(f"\nCleaning some records changed accuracy "
          f"from {acc_dirty:.3f} to {acc_cleaned:.3f}.")

    # ------------------------------------------------------------------
    # Act 3: learn from imperfect data — do we even need to clean?
    # ------------------------------------------------------------------
    features = ["years_experience", "employer_rating"]
    X = cleaned.select(features).to_numpy()
    y = np.array(cleaned["sentiment"].to_list())
    X_missing, _ = inject_missing_array(X, fraction=0.1, seed=7)

    checker = CertainPredictionKNN(k=3).fit(X_missing, y)
    X_test = test_df.select(features).to_numpy()
    certain = checker.certain_fraction(X_test)
    print(f"\nWith 10% of numeric cells missing, {certain:.0%} of test "
          "predictions are CERTAIN — identical in every possible "
          "completion. Those queries need no cleaning at all.")


if __name__ == "__main__":
    main()
