"""Scenario: the data-debugging challenge (Section 3.2).

Simulates the tutorial's closing competition: a dirty training set with
hidden errors, a budgeted cleaning oracle scoring on a hidden test set,
and a leaderboard. Three bots compete — random cleaning, loss-based
self-diagnosis, and KNN-Shapley prioritization.

Run:  python examples/challenge_demo.py
"""

import numpy as np

import repro as nde
from repro.challenge import Leaderboard, make_challenge
from repro.core.api import default_letter_encoder
from repro.ml import LogisticRegression
from repro.ml.base import clone


def shapley_bot(challenge, budget):
    values = nde.knn_shapley_values(challenge.train_df,
                                    validation=challenge.valid_df, k=10)
    return challenge.train_df.row_ids[np.argsort(values)[:budget]]


def loss_bot(challenge, budget):
    encoder = clone(default_letter_encoder())
    features = [c for c in challenge.train_df.columns if c != "sentiment"]
    X = encoder.fit_transform(challenge.train_df.select(features))
    y = np.array(challenge.train_df["sentiment"].to_list())
    model = LogisticRegression(max_iter=80).fit(X, y)
    proba = model.predict_proba(X)
    index = {c: i for i, c in enumerate(model.classes_.tolist())}
    own = proba[np.arange(len(y)), [index[v] for v in y.tolist()]]
    return challenge.train_df.row_ids[np.argsort(own)[:budget]]


def random_bot(challenge, budget, seed=0):
    rng = np.random.default_rng(seed)
    return rng.choice(challenge.train_df.row_ids, size=budget, replace=False)


def main() -> None:
    budget = 40
    bots = {"shapley": shapley_bot, "loss": loss_bot,
            "random": lambda c, b: random_bot(c, b)}

    board = None
    for name, bot in bots.items():
        # Each participant gets an identical fresh challenge instance.
        challenge = make_challenge(n=300, budget=budget, seed=77)
        if board is None:
            board = Leaderboard(baseline=challenge.oracle.baseline_score)
            print(f"Challenge: {len(challenge.train_df)} training letters, "
                  f"{challenge.n_errors} hidden errors, budget {budget}.")
            print(f"Baseline accuracy (no cleaning): "
                  f"{challenge.oracle.baseline_score:.3f}\n")
        row_ids = bot(challenge, budget)
        score = challenge.oracle.submit(row_ids, participant=name)
        board.record(name, score, challenge.oracle.cleaned_count)
        print(f"{name:>8} cleaned {challenge.oracle.cleaned_count} rows "
              f"-> hidden test accuracy {score:.3f}")

    print("\nFinal leaderboard:\n")
    print(board.render())


if __name__ == "__main__":
    main()
