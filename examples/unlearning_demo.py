"""Scenario: debug, then forget — data debugging meets machine unlearning.

The survey's open-challenges section (§2.4) connects the two: debugging
techniques find the harmful points; unlearning removes their influence at
interactive latency, without a full retrain. This demo runs the loop:
KNN-Shapley identifies poisoned training labels, then three deletion
mechanisms race to forget them — full retraining, SISA-style sharded
retraining (exact), and a one-step Newton influence update (approximate,
with a fidelity certificate).

Run:  python examples/unlearning_demo.py
"""

import time

import numpy as np

from repro.datasets import make_blobs
from repro.errors import inject_label_errors_array
from repro.importance import knn_shapley
from repro.ml import LogisticRegression
from repro.unlearning import InfluenceUnlearner, ShardedUnlearner


def main() -> None:
    X, y_clean = make_blobs(2200, n_features=20, centers=2,
                            cluster_std=2.2, seed=11)
    X_train, y_train_clean = X[:2000], y_clean[:2000]
    X_test, y_test = X[2000:], y_clean[2000:]
    y_train, poisoned = inject_label_errors_array(y_train_clean,
                                                  fraction=0.05, seed=12)
    print(f"Training set: {len(X_train)} points, "
          f"{len(poisoned)} with poisoned labels.\n")

    # Debug: rank by importance, flag the bottom 100.
    values = knn_shapley(X_train, y_train, X_test, y_test, k=5)
    flagged = np.argsort(values)[:100]
    hits = len(set(flagged.tolist()) & set(poisoned.tolist()))
    print(f"KNN-Shapley flags 100 suspects; {hits} of the "
          f"{len(poisoned)} poisoned points are among them.")

    dirty_accuracy = LogisticRegression(max_iter=100).fit(
        X_train, y_train).score(X_test, y_test)
    print(f"Accuracy before forgetting: {dirty_accuracy:.3f}\n")

    print(f"{'mechanism':<22}{'latency':>10}{'accuracy':>10}")
    print("-" * 42)

    # Mechanism 1: retrain from scratch after each deletion request.
    started = time.perf_counter()
    alive = np.ones(len(X_train), dtype=bool)
    for victim in flagged:
        alive[victim] = False
        model = LogisticRegression(max_iter=100).fit(X_train[alive],
                                                     y_train[alive])
    elapsed = time.perf_counter() - started
    print(f"{'full retraining':<22}{elapsed:>9.3f}s"
          f"{model.score(X_test, y_test):>10.3f}")

    # Mechanism 2: sharded exact unlearning.
    sharded = ShardedUnlearner(LogisticRegression(max_iter=100),
                               n_shards=10, seed=0).fit(X_train, y_train)
    started = time.perf_counter()
    for victim in flagged:
        sharded.unlearn([victim])
    elapsed = time.perf_counter() - started
    print(f"{'sharded (exact)':<22}{elapsed:>9.3f}s"
          f"{sharded.score(X_test, y_test):>10.3f}")

    # Mechanism 3: Newton influence update.
    newton = InfluenceUnlearner().fit(X_train, y_train)
    started = time.perf_counter()
    for victim in flagged:
        newton.unlearn([victim])
    elapsed = time.perf_counter() - started
    fidelity = newton.fidelity(y_train)
    print(f"{'newton (approximate)':<22}{elapsed:>9.3f}s"
          f"{newton.score(X_test, y_test):>10.3f}")

    print(f"\nNewton fidelity vs exact retrain: "
          f"{fidelity['prediction_agreement']:.1%} prediction agreement, "
          f"parameter distance {fidelity['parameter_distance']:.4f}.")
    print("\nTake-away: once debugging has named the harmful points, "
          "forgetting them need not cost a retrain — sharding gives exact "
          "deletion at a fraction of the latency, and the influence "
          "update is near-free with a measurable fidelity certificate.")


if __name__ == "__main__":
    main()
