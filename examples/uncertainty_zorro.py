"""Scenario: learning from imperfect data with Zorro (Figure 4).

Injects rising levels of MNAR missingness into ``employer_rating``,
encodes the data symbolically, and reports the certified maximum
worst-case loss per level — plus the comparison between the
uncertainty-aware model and a naively imputed baseline that the tutorial
assigns as an attendee task.

Run:  python examples/uncertainty_zorro.py
"""

import numpy as np

from repro.datasets import make_hiring_tables
from repro.errors import inject_missing
from repro.ml import LinearRegression
from repro.uncertain import (
    PossibleWorldsEnsemble,
    ZorroLinearModel,
    encode_symbolic,
    estimate_worst_case_loss,
)


def ascii_bar_chart(values: dict, width: int = 40) -> str:
    peak = max(values.values())
    lines = []
    for key, value in values.items():
        bar = "#" * max(1, int(width * value / peak))
        lines.append(f"{key:>4}%  {bar} {value:.3f}")
    return "\n".join(lines)


def main() -> None:
    letters, _, _ = make_hiring_tables(300, seed=9)
    train_df, test_df = letters.split([0.8, 0.2], seed=10)
    feature = "employer_rating"

    def with_target(frame):
        return frame.with_column(
            "target", lambda r: 1.0 if r["sentiment"] == "positive" else 0.0)

    train_df = with_target(train_df)
    test_df = with_target(test_df)
    X_test = test_df.select([feature, "years_experience"]).to_numpy()
    y_test = test_df["target"].cast(float).to_numpy()

    max_losses = {}
    for percentage in (5, 10, 15, 20, 25):
        train_symb, _ = inject_missing(
            train_df, column=feature, fraction=percentage / 100.0,
            mechanism="MNAR", seed=11)
        table = encode_symbolic(
            train_symb, feature_columns=[feature, "years_experience"],
            label_column="target")
        print(f"Evaluating {percentage}% of missing values in {feature}...")
        outcome = estimate_worst_case_loss(table, X_test, y_test)
        max_losses[percentage] = outcome["train_worst_case_mse"]

    print("\nMaximum worst-case loss (certified upper bound):\n")
    print(ascii_bar_chart(max_losses))

    # Attendee task: Zorro ranges vs a simple-imputation baseline.
    train_symb, _ = inject_missing(train_df, column=feature, fraction=0.2,
                                   mechanism="MNAR", seed=12)
    table = encode_symbolic(train_symb,
                            feature_columns=[feature, "years_experience"],
                            label_column="target")

    zorro = ZorroLinearModel(n_iter=200).fit(table)
    ranges = zorro.predict_range(table.X)

    baseline = LinearRegression()
    baseline.fit(table.impute_midpoint(), table.y)

    ensemble = PossibleWorldsEnsemble(LinearRegression(), n_worlds=25,
                                      sampler="uniform", seed=0)
    # The ensemble works on NaN-holed matrices:
    X_holes = table.impute_midpoint()
    X_holes[table.missing_mask] = np.nan
    ensemble.fit(X_holes, table.y)
    lo, hi = ensemble.prediction_interval(table.impute_midpoint()[:5])

    print("\nPrediction variability for the first 5 training points:")
    print(f"{'point':<7}{'zorro range':<24}{'worlds range':<24}{'imputed':<8}")
    imputed_preds = baseline.predict(table.impute_midpoint()[:5])
    for i in range(5):
        zorro_range = f"[{ranges.lo[i]:+.2f}, {ranges.hi[i]:+.2f}]"
        worlds_range = f"[{lo[i]:+.2f}, {hi[i]:+.2f}]"
        print(f"{i:<7}{zorro_range:<24}{worlds_range:<24}"
              f"{imputed_preds[i]:+.2f}")

    print("\nTake-away: the imputed model gives one number per point; the "
          "uncertainty-aware analyses expose how much that number could "
          "move under other, equally plausible completions — narrow ranges "
          "mean imputation is safe, wide ranges mean the missing cells "
          "actually matter.")


if __name__ == "__main__":
    main()
