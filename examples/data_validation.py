"""Scenario: rule-based screening before any model gets involved.

The Figure-1 oncology registry carries the classic error taxonomy —
missing cells, wrong codes, invalid values, biased coverage. This example
shows the model-free first line of defence: schema validation against a
trusted reference batch, rule-based detectors for each error type, and
consistent-range fairness certification that accounts for the coverage
bias the detectors cannot repair.

Run:  python examples/data_validation.py
"""

import numpy as np

from repro.datasets import make_cancer_registry
from repro.errors import (
    detect_invalid_categories,
    detect_missing,
    detect_out_of_range,
)
from repro.fairness import certify, demographic_parity_range
from repro.pipelines import infer_schema, validate_frame


def main() -> None:
    reference, _ = make_cancer_registry(400, error_fraction=0.0, seed=1)
    batch, error_log = make_cancer_registry(400, error_fraction=0.12, seed=2)
    seeded = {kind for _, _, kind in error_log}
    print(f"Fresh registry batch: {len(batch)} rows; seeded error kinds: "
          f"{sorted(seeded)}.\n")

    # 1. Schema validation against the trusted reference.
    schema = infer_schema(reference, range_slack=0.0)
    anomalies = validate_frame(batch, schema)
    print("Schema validation:")
    for anomaly in anomalies:
        print(f"  [{anomaly.kind:>16}] {anomaly.column}: {anomaly.detail}")

    # 2. Rule-based detectors pin down the exact rows.
    missing_sex = detect_missing(batch, ["sex"])
    invalid_ages = detect_out_of_range(batch, column="age", low=0, high=120)
    wrong_codes = detect_invalid_categories(
        batch, column="diagnosis", domain={"SKCM", "BRCA", "CRC", "LUAD"})
    print(f"\nDetectors flagged {len(missing_sex)} missing-sex rows, "
          f"{len(invalid_ages)} invalid ages, {len(wrong_codes)} unknown "
          "diagnosis codes.")

    truth = {
        "missing": {r for r, _, k in error_log if k == "missing"},
        "invalid_age": {r for r, _, k in error_log if k == "invalid_age"},
        "wrong_code": {r for r, _, k in error_log if k == "wrong_code"},
    }
    print("Detector recall vs ground truth: "
          f"missing {len(missing_sex & truth['missing'])}/"
          f"{len(truth['missing'])}, "
          f"ages {len(invalid_ages & truth['invalid_age'])}/"
          f"{len(truth['invalid_age'])}, "
          f"codes {len(wrong_codes & truth['wrong_code'])}/"
          f"{len(truth['wrong_code'])}.")

    # 3. The bias detectors cannot fix: race coverage. CRA quantifies how
    # much the under-coverage could hide.
    survived = np.array([1 if s == "yes" else 0
                         for s in batch["survived"].to_list()])
    race = np.array(["black" if r == "black" else "non-black"
                     for r in batch["race"].to_list()])
    n_black = int(np.sum(race == "black"))
    print(f"\nCoverage bias: only {n_black} of {len(batch)} records are "
          "from black patients.")
    for budget in (0, n_black, 4 * n_black):
        result = demographic_parity_range(survived, race,
                                          max_missing={"black": budget})
        verdict = certify(result, threshold=0.1)
        print(f"  admitting up to {budget:>3} unobserved black patients: "
              f"survival-rate gap in [{result['gap_lo']:.3f}, "
              f"{result['gap_hi']:.3f}] -> {verdict}")

    print("\nTake-away: rules catch the cell-level errors exactly; the "
          "representation bias needs range reasoning — a dataset that "
          "looks fair point-wise may be impossible to certify once "
          "plausible under-coverage is admitted.")


if __name__ == "__main__":
    main()
